"""Stable public API facade of the reproduction.

Everything a front end needs lives here, exactly once: the ``python -m
repro`` CLI and the HTTP service (:mod:`repro.service`) are both thin
renderers over these functions, so parameter validation, config
canonicalisation and the error taxonomy cannot diverge between entry
points.

Functions
---------
:func:`list_experiments`
    Registry listing with each driver's ``PARAMS`` schema.
:func:`run` / :func:`run_all`
    Cache-aware execution of one / several experiments.
:func:`sweep`
    Cartesian grid over one experiment's parameters.
:func:`serve`
    The blocking HTTP server behind ``python -m repro serve``.

Errors
------
All failures raise :class:`ReproError` subclasses with stable ``code``
fields: :class:`ParamError` (and its :class:`UnknownParamError` /
:class:`ParamTypeError` / :class:`ParamValueError` refinements),
:class:`UnknownExperimentError` and :class:`ExecutionError`.  The CLI maps
them to exit codes (validation 3, execution 4); the HTTP layer maps them
to status codes (400/404/500) with the ``code`` echoed in the JSON error
body.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from .analysis.sweep import SweepResult, sweep_grid
from .runner.cache import ResultCache
from .runner.errors import (
    ExecutionError,
    ParamError,
    ParamTypeError,
    ParamValueError,
    ReproError,
    UnitTimeoutError,
    UnknownExperimentError,
    UnknownParamError,
    WorkerCrashError,
)
from .runner.executor import DEFAULT_POLICY, ExecutionPolicy
from .runner.registry import ExperimentSpec
from .runner.service import ExperimentRunner, Observer, RunReport

__all__ = [
    "DEFAULT_POLICY",
    "ExecutionError",
    "ExecutionPolicy",
    "ExperimentRunner",
    "ParamError",
    "ParamTypeError",
    "ParamValueError",
    "ReproError",
    "RunReport",
    "SweepReport",
    "UnitTimeoutError",
    "UnknownExperimentError",
    "UnknownParamError",
    "WorkerCrashError",
    "list_experiments",
    "make_runner",
    "parse_param",
    "run",
    "run_all",
    "serve",
    "sweep",
    "validate_grid",
    "validate_params",
]


def make_runner(
    *,
    cache_dir: str | None = None,
    use_cache: bool = True,
    cache_max_bytes: int | None = None,
    store_url: str | None = None,
    runner: ExperimentRunner | None = None,
) -> ExperimentRunner:
    """The runner a facade call should use (an explicit one wins).

    ``cache_max_bytes`` bounds the result cache with LRU eviction
    (default ``$REPRO_CACHE_MAX_BYTES``, else unbounded).  ``store_url``
    (default ``$REPRO_STORE_URL``) tiers both stores onto a shared
    networked store server: writes go through the local disk first, reads
    fall back to the remote, and the runner degrades to local-only while
    the server is unreachable.  The networked backend is imported lazily
    so local-only runners never construct (or fingerprint) it.
    """
    if runner is not None:
        return runner
    if store_url is None:
        store_url = os.environ.get("REPRO_STORE_URL") or None
    if store_url is None:
        cache = ResultCache(cache_dir, max_bytes=cache_max_bytes)
        return ExperimentRunner(cache=cache, use_cache=use_cache)
    from .runner.artifacts import ArtifactStore
    from .runner.cache import default_cache_root
    from .runner.netstore import ARTIFACT_SUBROOT, make_store_backend

    root = Path(cache_dir) if cache_dir is not None else default_cache_root()
    cache = ResultCache(
        backend=make_store_backend(root, store_url), max_bytes=cache_max_bytes
    )
    artifacts = ArtifactStore(
        backend=make_store_backend(root / "artifacts", store_url, subroot=ARTIFACT_SUBROOT)
    )
    return ExperimentRunner(cache=cache, use_cache=use_cache, artifacts=artifacts)


def list_experiments(*, runner: ExperimentRunner | None = None) -> list[dict[str, object]]:
    """Schema listing of every registered experiment, registry order.

    Each entry is :meth:`repro.runner.registry.ExperimentSpec.schema`:
    ``{"name", "params": {name: {"type", "default"}}, "object_params",
    "artifacts"}``.
    """
    runner = runner if runner is not None else make_runner(use_cache=False)
    return [spec.schema() for spec in runner.registry.values()]


def validate_params(
    name: str, params: Mapping[str, object] | None, *, runner: ExperimentRunner | None = None
) -> dict[str, object]:
    """Validate/coerce overrides against ``name``'s schema; canonical config.

    Raises :class:`UnknownExperimentError` or a :class:`ParamError`
    subclass.  This is the one validation path; the CLI and every HTTP
    endpoint call it (directly or through :func:`run`/:func:`sweep`).
    """
    runner = runner if runner is not None else make_runner(use_cache=False)
    return runner.spec(name).canonical_config(params or {})


def parse_param(spec: ExperimentSpec, key: str, text: str) -> object:
    """One textual (CLI/query-string) parameter value, schema-typed.

    Raises :class:`UnknownParamError` for undeclared names and
    :class:`ParamValueError` for unparsable text.
    """
    if key not in spec.params:
        raise UnknownParamError(
            f"{spec.name} has no parameter {key!r}; known: {', '.join(sorted(spec.params)) or '(none)'}",
            param=key,
            expected=f"one of: {', '.join(sorted(spec.params)) or '(none)'}",
        )
    return spec.params[key].parse(text)


def validate_grid(
    name: str, grid: Mapping[str, Sequence[object]], *, runner: ExperimentRunner | None = None
) -> dict[str, list[object]]:
    """Validate/coerce a sweep grid against ``name``'s schema.

    Tuple-typed parameters cannot be swept (a grid axis of sequences is
    ambiguous with the sequence-of-values encoding); empty axes are
    rejected.  Values are coerced item-wise through the same ``ParamSpec``
    the single-run path uses.
    """
    runner = runner if runner is not None else make_runner(use_cache=False)
    spec = runner.spec(name)
    validated: dict[str, list[object]] = {}
    for key, values in grid.items():
        if key not in spec.params:
            raise UnknownParamError(
                f"{name} has no parameter {key!r}; known: {', '.join(sorted(spec.params)) or '(none)'}",
                param=key,
                expected=f"one of: {', '.join(sorted(spec.params)) or '(none)'}",
            )
        if spec.params[key].type is tuple:
            raise ParamTypeError(
                f"tuple-typed parameter {key!r} cannot be grid-swept",
                param=key,
                expected="a scalar-typed parameter",
            )
        if isinstance(values, (str, bytes)) or not isinstance(values, Iterable):
            raise ParamTypeError(
                f"grid axis {key!r} must be a list of values, got {values!r}",
                param=key,
                expected="list of values",
            )
        coerced = [spec.params[key].coerce(value) for value in values]
        if not coerced:
            raise ParamValueError(
                f"grid axis {key!r} names no values", param=key, expected="at least one value"
            )
        validated[key] = coerced
    return validated


def _policy(
    timeout: float | None, retries: int | None, policy: ExecutionPolicy | None
) -> ExecutionPolicy | None:
    """The execution policy a facade call resolves to (an explicit one wins)."""
    if policy is not None:
        return policy
    if timeout is None and retries is None:
        return None
    return DEFAULT_POLICY.with_overrides(timeout=timeout, retries=retries)


def _execute(
    runner: ExperimentRunner,
    requests,
    *,
    jobs: int,
    observer: Observer | None,
    policy: ExecutionPolicy | None = None,
):
    """One guarded execution path: driver failures become ``ExecutionError``."""
    try:
        return runner.run_many(requests, jobs=jobs, observer=observer, policy=policy)
    except ReproError:
        raise
    except Exception as error:
        names = ", ".join(sorted({name for name, _config in requests}))
        raise ExecutionError(f"experiment execution failed ({names}): {error}") from error


def run(
    name: str,
    params: Mapping[str, object] | None = None,
    *,
    runner: ExperimentRunner | None = None,
    cache_dir: str | None = None,
    use_cache: bool = True,
    jobs: int = 1,
    observer: Observer | None = None,
    timeout: float | None = None,
    retries: int | None = None,
    policy: ExecutionPolicy | None = None,
) -> RunReport:
    """Run one experiment (cache-aware); the report's rows are JSON-ready.

    ``timeout`` / ``retries`` tune the parallel executor's per-unit
    wall-clock budget and retry count (an explicit ``policy`` wins); both
    only apply when ``jobs > 1`` spawns worker processes.
    """
    runner = make_runner(cache_dir=cache_dir, use_cache=use_cache, runner=runner)
    validate_params(name, params, runner=runner)
    return _execute(
        runner,
        [(name, dict(params or {}))],
        jobs=jobs,
        observer=observer,
        policy=_policy(timeout, retries, policy),
    )[0]


def run_all(
    names: Sequence[str] | None = None,
    params: Mapping[str, object] | None = None,
    *,
    runner: ExperimentRunner | None = None,
    cache_dir: str | None = None,
    use_cache: bool = True,
    jobs: int = 1,
    observer: Observer | None = None,
    timeout: float | None = None,
    retries: int | None = None,
    policy: ExecutionPolicy | None = None,
) -> list[RunReport]:
    """Run several experiments (default: every registered one), request order.

    ``params`` (when given) applies to every named experiment, so it is
    only accepted together with an explicit single-name list -- the CLI
    enforces the same rule for ``--param``.
    """
    runner = make_runner(cache_dir=cache_dir, use_cache=use_cache, runner=runner)
    targets = list(names) if names is not None else list(runner.registry)
    if params and len(targets) != 1:
        raise ParamError(
            "shared params require exactly one experiment target",
            expected="a single experiment name",
        )
    for target in targets:
        validate_params(target, params, runner=runner)
    requests = [(target, dict(params or {})) for target in targets]
    return _execute(
        runner, requests, jobs=jobs, observer=observer, policy=_policy(timeout, retries, policy)
    )


@dataclass
class SweepReport:
    """Outcome of a parameter sweep run through the facade.

    ``records`` are the grid-order rows, each tagged with its grid
    assignment (assignment keys win nothing -- row values win on
    collisions, matching ``parameter_sweep``).
    """

    experiment: str
    grid: dict[str, list[object]]
    fixed: dict[str, object]
    assignments: list[dict[str, object]] = field(default_factory=list)
    reports: list[RunReport] = field(default_factory=list)

    @property
    def records(self) -> list[dict[str, object]]:
        return [
            {**assignment, **row}
            for assignment, report in zip(self.assignments, self.reports)
            for row in report.rows
        ]

    @property
    def result(self) -> SweepResult:
        return SweepResult(records=self.records)

    @property
    def cached_cells(self) -> int:
        return sum(1 for report in self.reports if report.cached)

    def to_jsonable(self) -> dict[str, object]:
        return {
            "experiment": self.experiment,
            "grid": self.grid,
            "fixed": self.fixed,
            "cells": len(self.assignments),
            "cached_cells": self.cached_cells,
            "records": self.records,
        }


def sweep(
    name: str,
    grid: Mapping[str, Sequence[object]],
    params: Mapping[str, object] | None = None,
    *,
    runner: ExperimentRunner | None = None,
    cache_dir: str | None = None,
    use_cache: bool = True,
    jobs: int = 1,
    observer: Observer | None = None,
    timeout: float | None = None,
    retries: int | None = None,
    policy: ExecutionPolicy | None = None,
) -> SweepReport:
    """Cartesian grid over one experiment's parameters, each cell cache-aware."""
    runner = make_runner(cache_dir=cache_dir, use_cache=use_cache, runner=runner)
    validated_grid = validate_grid(name, grid, runner=runner)
    fixed = dict(params or {})
    overlap = set(validated_grid) & set(fixed)
    if overlap:
        raise ParamError(
            f"parameter(s) {sorted(overlap)} appear in both the grid and the fixed params",
            param=sorted(overlap)[0],
            expected="each parameter either swept or fixed, not both",
        )
    validate_params(name, fixed, runner=runner)
    assignments = sweep_grid(validated_grid)
    reports = _execute(
        runner,
        [(name, {**fixed, **assignment}) for assignment in assignments],
        jobs=jobs,
        observer=observer,
        policy=_policy(timeout, retries, policy),
    )
    return SweepReport(
        experiment=name,
        grid=validated_grid,
        fixed=fixed,
        assignments=assignments,
        reports=reports,
    )


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    jobs: int = 1,
    cache_dir: str | None = None,
    cache_max_bytes: int | None = None,
    rate_limit: float = 0.0,
    rate_burst: int | None = None,
    max_queue: int = 64,
    drain_seconds: float = 10.0,
    state_dir: str | None = None,
    store_url: str | None = None,
) -> int:
    """Serve the reproduction over HTTP (blocks until interrupted).

    ``rate_limit`` is requests/second per client (0 disables limiting);
    ``rate_burst`` the token-bucket capacity (defaults to ``2 * rate``).
    ``max_queue`` bounds queued + running jobs (excess submissions are shed
    with 503/``overloaded``), ``drain_seconds`` is how long shutdown waits
    for in-flight jobs, and ``state_dir`` is where job records are
    journaled so they survive a restart (default ``<cache root>/jobs``).
    ``store_url`` (default ``$REPRO_STORE_URL``) tiers the service's
    stores onto a shared networked store server.  The service layer is
    imported lazily so library users never pay for it.
    """
    from .service import build_app, serve_forever

    runner = make_runner(
        cache_dir=cache_dir, cache_max_bytes=cache_max_bytes, store_url=store_url
    )
    app = build_app(
        runner=runner,
        jobs=jobs,
        rate_limit=rate_limit,
        rate_burst=rate_burst,
        max_queue=max_queue,
        drain_seconds=drain_seconds,
        state_dir=state_dir if state_dir is not None else str(runner.cache.root / "jobs"),
    )
    return serve_forever(app, host=host, port=port)
