"""Banked data memory of the SIMD processor.

The processor has one memory bank per SIMD lane (``SW`` banks); a vector
load/store accesses the same address in every bank simultaneously.  The banks
sit in their own power domain at a fixed retention-safe supply (1.1 V in the
paper), and their access energy scales with the number of *active bits* read
or written -- which is why the 1 x 4 b DAS/DVAS modes of Table II spend so
much less memory energy than the full-precision mode while the subword modes
(which use the full word width for N subwords) do not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arithmetic.fixed_point import signed_range


@dataclass
class MemoryAccessCounters:
    """Access statistics of the banked memory."""

    reads: int = 0
    writes: int = 0
    read_bits: int = 0
    write_bits: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses (reads + writes)."""
        return self.reads + self.writes

    @property
    def total_bits(self) -> int:
        """Total bits moved."""
        return self.read_bits + self.write_bits


class BankedMemory:
    """``banks`` independent word-addressable memory banks.

    Parameters
    ----------
    banks:
        Number of banks (= SIMD width SW).
    words_per_bank:
        Capacity of each bank in words.
    word_bits:
        Word width in bits (16 in the paper's processor).
    """

    def __init__(self, banks: int, words_per_bank: int = 4096, *, word_bits: int = 16):
        if banks < 1:
            raise ValueError("banks must be at least 1")
        if words_per_bank < 1:
            raise ValueError("words_per_bank must be at least 1")
        if word_bits < 2:
            raise ValueError("word_bits must be at least 2")
        self.banks = banks
        self.words_per_bank = words_per_bank
        self.word_bits = word_bits
        self._storage = np.zeros((banks, words_per_bank), dtype=np.int64)
        self.counters = MemoryAccessCounters()

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.words_per_bank:
            raise IndexError(
                f"address {address} out of range [0, {self.words_per_bank})"
            )

    def _check_values(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        if values.shape != (self.banks,):
            raise ValueError(f"expected one value per bank ({self.banks})")
        lo, hi = signed_range(self.word_bits)
        if np.any(values < lo) or np.any(values > hi):
            raise ValueError(f"values must fit in {self.word_bits} signed bits")
        return values

    def read_vector(self, address: int, *, active_bits: int | None = None) -> np.ndarray:
        """Read ``address`` from every bank (one word per lane)."""
        self._check_address(address)
        active = self.word_bits if active_bits is None else active_bits
        self.counters.reads += self.banks
        self.counters.read_bits += self.banks * active
        return self._storage[:, address].copy()

    def write_vector(
        self, address: int, values: np.ndarray, *, active_bits: int | None = None
    ) -> None:
        """Write one word per bank at ``address``."""
        self._check_address(address)
        values = self._check_values(values)
        active = self.word_bits if active_bits is None else active_bits
        self.counters.writes += self.banks
        self.counters.write_bits += self.banks * active
        self._storage[:, address] = values

    def load_bank(self, bank: int, address: int, values: np.ndarray) -> None:
        """Bulk-initialise a bank starting at ``address`` (no energy counted).

        This models the DMA/preload step that fills the scratchpads before a
        kernel runs; it is not part of the measured kernel energy.
        """
        if not 0 <= bank < self.banks:
            raise IndexError(f"bank {bank} out of range")
        values = np.asarray(values, dtype=np.int64)
        if address + values.size > self.words_per_bank:
            raise IndexError("bank initialisation exceeds bank capacity")
        lo, hi = signed_range(self.word_bits)
        if np.any(values < lo) or np.any(values > hi):
            raise ValueError(f"values must fit in {self.word_bits} signed bits")
        self._storage[bank, address : address + values.size] = values

    def dump_bank(self, bank: int, address: int, count: int) -> np.ndarray:
        """Read back ``count`` words of a bank without counting energy."""
        if not 0 <= bank < self.banks:
            raise IndexError(f"bank {bank} out of range")
        if address + count > self.words_per_bank:
            raise IndexError("dump exceeds bank capacity")
        return self._storage[bank, address : address + count].copy()

    def reset_counters(self) -> None:
        """Clear the access counters."""
        self.counters = MemoryAccessCounters()
