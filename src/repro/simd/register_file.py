"""Scalar and vector register files of the SIMD processor."""

from __future__ import annotations

import numpy as np

from ..arithmetic.fixed_point import wrap_signed
from .isa import SCALAR_REGISTERS, VECTOR_REGISTERS


class ScalarRegisterFile:
    """Sixteen general-purpose scalar registers; ``r0`` is hard-wired to zero."""

    def __init__(self, width_bits: int = 32):
        if width_bits < 8:
            raise ValueError("width_bits must be at least 8")
        self.width_bits = width_bits
        self._registers = [0] * SCALAR_REGISTERS
        self.reads = 0
        self.writes = 0

    def read(self, index: int) -> int:
        """Read register ``index`` (r0 always returns 0)."""
        if not 0 <= index < SCALAR_REGISTERS:
            raise IndexError(f"scalar register {index} out of range")
        self.reads += 1
        return self._registers[index]

    def write(self, index: int, value: int) -> None:
        """Write register ``index``; writes to r0 are silently dropped."""
        if not 0 <= index < SCALAR_REGISTERS:
            raise IndexError(f"scalar register {index} out of range")
        self.writes += 1
        if index == 0:
            return
        self._registers[index] = wrap_signed(int(value), self.width_bits)

    def dump(self) -> list[int]:
        """Snapshot of all register values."""
        return list(self._registers)


class VectorRegisterFile:
    """Eight vector registers of ``lanes`` elements plus per-lane accumulators.

    Vector elements are ``element_bits`` wide (16 in the paper's processor);
    accumulators are wider (``accumulator_bits``) so convolution sums do not
    overflow, exactly like a hardware MAC accumulator.
    """

    def __init__(self, lanes: int, *, element_bits: int = 16, accumulator_bits: int = 48):
        if lanes < 1:
            raise ValueError("lanes must be at least 1")
        if element_bits < 2:
            raise ValueError("element_bits must be at least 2")
        if accumulator_bits < 2 * element_bits:
            raise ValueError("accumulator_bits must be at least twice element_bits")
        self.lanes = lanes
        self.element_bits = element_bits
        self.accumulator_bits = accumulator_bits
        self._registers = np.zeros((VECTOR_REGISTERS, lanes), dtype=np.int64)
        self._accumulators = np.zeros(lanes, dtype=np.int64)
        self.reads = 0
        self.writes = 0

    def read(self, index: int) -> np.ndarray:
        """Read vector register ``index`` (a copy)."""
        if not 0 <= index < VECTOR_REGISTERS:
            raise IndexError(f"vector register {index} out of range")
        self.reads += 1
        return self._registers[index].copy()

    def write(self, index: int, values: np.ndarray) -> None:
        """Write vector register ``index``, wrapping each lane to element width."""
        if not 0 <= index < VECTOR_REGISTERS:
            raise IndexError(f"vector register {index} out of range")
        values = np.asarray(values, dtype=np.int64)
        if values.shape != (self.lanes,):
            raise ValueError(f"expected {self.lanes} lanes, got shape {values.shape}")
        self.writes += 1
        self._registers[index] = _wrap_array(values, self.element_bits)

    @property
    def accumulators(self) -> np.ndarray:
        """Copy of the per-lane accumulators."""
        return self._accumulators.copy()

    def clear_accumulators(self) -> None:
        """Zero every lane accumulator."""
        self._accumulators[:] = 0

    def accumulate(self, values: np.ndarray) -> None:
        """Add ``values`` into the accumulators (wrapping at accumulator width)."""
        values = np.asarray(values, dtype=np.int64)
        if values.shape != (self.lanes,):
            raise ValueError(f"expected {self.lanes} lanes, got shape {values.shape}")
        self._accumulators = _wrap_array(self._accumulators + values, self.accumulator_bits)

    def saturate_accumulators(self) -> np.ndarray:
        """Accumulators clamped to the element range (the VSTACC behaviour)."""
        return saturate_to_element_range(self._accumulators, self.element_bits)


def saturate_to_element_range(values: np.ndarray, element_bits: int) -> np.ndarray:
    """Clamp accumulator values to the signed element range (VSTACC semantics).

    Single source of the saturation formula, shared by the per-cycle
    interpreter (via :meth:`VectorRegisterFile.saturate_accumulators`) and the
    trace engine's whole-loop VSTACC evaluation.
    """
    lo = -(1 << (element_bits - 1))
    hi = (1 << (element_bits - 1)) - 1
    return np.clip(values, lo, hi).astype(np.int64)


def _wrap_array(values: np.ndarray, bits: int) -> np.ndarray:
    """Vectorised two's-complement wrap of ``values`` to ``bits`` bits."""
    modulus = np.int64(1) << bits if bits < 63 else None
    if modulus is None:
        return values.astype(np.int64)
    wrapped = np.mod(values, modulus)
    sign_bit = np.int64(1) << (bits - 1)
    wrapped = np.where(wrapped >= sign_bit, wrapped - modulus, wrapped)
    return wrapped.astype(np.int64)
