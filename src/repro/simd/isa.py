"""Instruction set of the DVAFS-compatible SIMD RISC vector processor.

The paper's system-level study (Section III-B) uses an ASIP: a small RISC
core with an ``SW``-lane vector datapath whose precision can be scaled across
``1 x 1-16b``, ``2 x 1-8b`` and ``4 x 1-4b`` DVAFS modes.  This module defines
the instruction set of our re-implementation; the semantics live in
:mod:`repro.simd.processor` and :mod:`repro.simd.vector_unit`.

Scalar instructions operate on 16 general-purpose registers (``r0`` is
hard-wired to zero); vector instructions operate on 8 vector registers of
``SW`` lanes plus a per-lane accumulator file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique


@unique
class Opcode(Enum):
    """Opcodes of the SIMD processor."""

    # Scalar ALU / control.
    LI = "li"          # li rd, imm
    ADD = "add"        # add rd, rs, rt
    ADDI = "addi"      # addi rd, rs, imm
    SUB = "sub"        # sub rd, rs, rt
    MUL = "mul"        # mul rd, rs, rt
    BNE = "bne"        # bne rs, rt, label
    BLT = "blt"        # blt rs, rt, label
    JMP = "jmp"        # jmp label
    NOP = "nop"        # nop
    HALT = "halt"      # halt

    # Vector memory.
    VLOAD = "vload"    # vload vd, rs, imm    (lane l reads bank l at rs+imm)
    VSTORE = "vstore"  # vstore vs, rs, imm   (lane l writes bank l at rs+imm)
    VBCAST = "vbcast"  # vbcast vd, rs        (broadcast scalar to all lanes)

    # Vector arithmetic.
    VMAC = "vmac"      # vmac va, vb          (acc[l] += va[l] * vb[l])
    VMUL = "vmul"      # vmul vd, va, vb
    VADD = "vadd"      # vadd vd, va, vb
    VRELU = "vrelu"    # vrelu vd, va
    VCLR = "vclr"      # vclr                 (acc[l] = 0)
    VSTACC = "vstacc"  # vstacc vd            (vd[l] = saturate(acc[l]))

    # Power management.
    SETPREC = "setprec"  # setprec imm        (precision in bits: 16, 8 or 4)


#: Scalar register count (r0 is hard-wired to zero).
SCALAR_REGISTERS = 16
#: Vector register count.
VECTOR_REGISTERS = 8

#: Operand signature per opcode: ``r`` scalar register, ``v`` vector register,
#: ``i`` immediate, ``l`` label.  Used by the assembler and by instruction
#: validation.
OPERAND_SIGNATURES: dict[Opcode, str] = {
    Opcode.LI: "ri",
    Opcode.ADD: "rrr",
    Opcode.ADDI: "rri",
    Opcode.SUB: "rrr",
    Opcode.MUL: "rrr",
    Opcode.BNE: "rrl",
    Opcode.BLT: "rrl",
    Opcode.JMP: "l",
    Opcode.NOP: "",
    Opcode.HALT: "",
    Opcode.VLOAD: "vri",
    Opcode.VSTORE: "vri",
    Opcode.VBCAST: "vr",
    Opcode.VMAC: "vv",
    Opcode.VMUL: "vvv",
    Opcode.VADD: "vvv",
    Opcode.VRELU: "vv",
    Opcode.VCLR: "",
    Opcode.VSTACC: "v",
    Opcode.SETPREC: "i",
}

#: Opcodes handled by the (non-accuracy-scalable) scalar pipeline.
SCALAR_OPCODES = {
    Opcode.LI,
    Opcode.ADD,
    Opcode.ADDI,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.BNE,
    Opcode.BLT,
    Opcode.JMP,
    Opcode.NOP,
    Opcode.HALT,
    Opcode.SETPREC,
}

#: Opcodes that access the vector memory banks.
VECTOR_MEMORY_OPCODES = {Opcode.VLOAD, Opcode.VSTORE}

#: Opcodes executed by the (accuracy-scalable) vector datapath.
VECTOR_ALU_OPCODES = {
    Opcode.VMAC,
    Opcode.VMUL,
    Opcode.VADD,
    Opcode.VRELU,
    Opcode.VCLR,
    Opcode.VSTACC,
    Opcode.VBCAST,
}


@dataclass(frozen=True)
class Instruction:
    """One assembled instruction.

    Attributes
    ----------
    opcode:
        The operation.
    operands:
        Register indices / immediates / resolved branch targets, in the order
        of the opcode's signature.
    source:
        Original assembly text (for diagnostics and disassembly).
    """

    opcode: Opcode
    operands: tuple[int, ...] = ()
    source: str = ""

    def __post_init__(self) -> None:
        signature = OPERAND_SIGNATURES[self.opcode]
        if len(self.operands) != len(signature):
            raise ValueError(
                f"{self.opcode.value} expects {len(signature)} operands, "
                f"got {len(self.operands)}"
            )
        for kind, operand in zip(signature, self.operands):
            if kind == "r" and not 0 <= operand < SCALAR_REGISTERS:
                raise ValueError(f"scalar register index {operand} out of range")
            if kind == "v" and not 0 <= operand < VECTOR_REGISTERS:
                raise ValueError(f"vector register index {operand} out of range")
            if kind == "l" and operand < 0:
                raise ValueError("branch target must be non-negative")

    def __str__(self) -> str:
        if self.source:
            return self.source
        operands = ", ".join(str(op) for op in self.operands)
        return f"{self.opcode.value} {operands}".strip()


@dataclass
class Program:
    """An assembled program: instructions plus the label table."""

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def disassemble(self) -> str:
        """Human-readable listing with label annotations."""
        by_address: dict[int, list[str]] = {}
        for label, address in self.labels.items():
            by_address.setdefault(address, []).append(label)
        lines = []
        for address, instruction in enumerate(self.instructions):
            for label in by_address.get(address, []):
                lines.append(f"{label}:")
            lines.append(f"  {address:4d}: {instruction}")
        return "\n".join(lines) + "\n"
