"""Energy model of the SIMD processor (Fig. 4 and Table II).

The model is event-based: the cycle-level simulator reports how many
instructions were fetched/decoded, how many scalar operations, vector MAC
operations and vector memory accesses a kernel performed, and this module
converts those events into energy per power domain:

* ``as``  -- the vector arithmetic (accuracy-scalable, supply ``V_as``),
* ``nas`` -- instruction fetch/decode, scalar pipeline, address generation
  and other control (supply ``V_nas``),
* ``mem`` -- the SRAM banks (fixed retention supply).

The per-event energies at the ``1 x 16b`` reference point are calibrated so
the domain split matches the first row of Table II (31 % mem / 46 % nas /
23 % as for SW = 8, 36 mW total at 500 MHz).  Precision scaling then follows
the DVAFS power equations: arithmetic activity scales with the Table-I
``k`` factors, memory energy scales with the active bits per access, and the
supplies/frequency follow the selected technique.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.power_model import PAPER_TABLE_I, ScalingParameters
from .processor import ExecutionResult


@dataclass(frozen=True)
class SimdEnergyParameters:
    """Per-event energies of the SIMD processor at nominal voltage (pJ).

    Attributes
    ----------
    mac_energy_pj:
        Energy of one 16-bit MAC in the vector datapath.
    vector_alu_energy_pj:
        Energy of one non-MAC vector ALU lane operation.
    instruction_energy_pj:
        Fetch + decode + issue energy per instruction (nas).
    control_energy_per_lane_pj:
        Per-lane control / address-generation energy per vector instruction
        (nas); grows with SW, which is why wide processors have a larger nas
        share in absolute terms but a smaller relative one.
    memory_bit_energy_pj:
        Energy per memory bit accessed (mem domain).
    nominal_voltage:
        Supply at which the above energies are characterised.
    mem_voltage:
        Fixed supply of the memory banks.
    """

    mac_energy_pj: float = 1.35
    vector_alu_energy_pj: float = 0.45
    instruction_energy_pj: float = 12.0
    control_energy_per_lane_pj: float = 0.9
    memory_bit_energy_pj: float = 0.115
    nominal_voltage: float = 1.1
    mem_voltage: float = 1.1

    def scaled(self, **overrides: float) -> "SimdEnergyParameters":
        """Copy with selected fields replaced."""
        values = self.__dict__ | overrides
        return SimdEnergyParameters(**values)


@dataclass(frozen=True)
class SimdPowerReport:
    """Energy / power of one kernel execution at one operating point.

    All energies are in picojoules, powers in milliwatts.
    """

    technique: str
    precision: int
    parallelism: int
    simd_width: int
    frequency_mhz: float
    as_voltage: float
    nas_voltage: float
    mem_voltage: float
    as_energy_pj: float
    nas_energy_pj: float
    mem_energy_pj: float
    cycles: int
    words: int

    @property
    def total_energy_pj(self) -> float:
        """Total kernel energy (pJ)."""
        return self.as_energy_pj + self.nas_energy_pj + self.mem_energy_pj

    @property
    def energy_per_word_pj(self) -> float:
        """Energy per processed word (pJ)."""
        if self.words <= 0:
            raise ValueError("no words processed")
        return self.total_energy_pj / self.words

    @property
    def power_mw(self) -> float:
        """Average power during the kernel (mW)."""
        if self.cycles <= 0:
            raise ValueError("no cycles executed")
        duration_us = self.cycles / self.frequency_mhz
        return self.total_energy_pj / duration_us * 1e-3

    def domain_fractions(self) -> dict[str, float]:
        """Fractional mem / nas / as energy split (the Table II percentages)."""
        total = self.total_energy_pj
        if total <= 0:
            return {"mem": 0.0, "nas": 0.0, "as": 0.0}
        return {
            "mem": self.mem_energy_pj / total,
            "nas": self.nas_energy_pj / total,
            "as": self.as_energy_pj / total,
        }

    @property
    def mode_label(self) -> str:
        """Mode in the paper's notation (``"4x4b"``)."""
        return f"{self.parallelism}x{self.precision}b"


class SimdPowerModel:
    """Converts execution counters into per-domain energy for any mode.

    Parameters
    ----------
    simd_width:
        SIMD width of the processor being modelled.
    parameters:
        Per-event energies; the defaults are calibrated against Table II.
    scaling_table:
        Per-precision scaling parameters (Table I); defaults to the paper's
        values, but a table extracted from the structural multiplier via
        :func:`repro.core.scaling.characterize_multiplier` can be used
        instead.
    base_frequency_mhz:
        Full-precision clock (500 MHz in the paper).
    word_bits:
        Element width of the datapath (16).
    """

    def __init__(
        self,
        simd_width: int,
        *,
        parameters: SimdEnergyParameters | None = None,
        scaling_table: dict[int, ScalingParameters] | None = None,
        base_frequency_mhz: float = 500.0,
        word_bits: int = 16,
    ):
        if simd_width < 1:
            raise ValueError("simd_width must be at least 1")
        self.simd_width = simd_width
        self.parameters = parameters or SimdEnergyParameters()
        self.scaling_table = dict(scaling_table or PAPER_TABLE_I)
        self.base_frequency_mhz = base_frequency_mhz
        self.word_bits = word_bits

    # -- calibration ----------------------------------------------------------

    @staticmethod
    def reference_power_mw(simd_width: int) -> float:
        """Published full-precision power of the SW-lane processor (Table II).

        Table II reports 36 mW for SW = 8 and 289 mW for SW = 64 at the
        ``1 x 16b`` / 500 MHz point; other widths are interpolated linearly
        in SW (power is dominated by per-lane datapath, control and memory).
        """
        if simd_width < 1:
            raise ValueError("simd_width must be at least 1")
        return 36.0 * simd_width / 8.0

    @staticmethod
    def reference_fractions(simd_width: int) -> dict[str, float]:
        """Published mem/nas/as split at full precision (Table II).

        31 % / 46 % / 23 % at SW = 8 and 31 % / 32 % / 37 % at SW = 64; the
        as-share grows logarithmically with SW because the scalar front-end
        is amortised over more lanes.
        """
        import math

        if simd_width < 1:
            raise ValueError("simd_width must be at least 1")
        position = (math.log2(max(simd_width, 1)) - 3.0) / 3.0
        position = min(max(position, 0.0), 1.5)
        as_fraction = 0.23 + (0.37 - 0.23) * position
        mem_fraction = 0.31
        nas_fraction = 1.0 - as_fraction - mem_fraction
        return {"mem": mem_fraction, "nas": nas_fraction, "as": as_fraction}

    def calibrate(
        self,
        execution: ExecutionResult,
        *,
        total_power_mw: float | None = None,
        fractions: dict[str, float] | None = None,
    ) -> SimdEnergyParameters:
        """Fit the per-event energies to a published full-precision anchor.

        The relative weights *within* each domain (MAC vs. ALU, instruction
        vs. per-lane control) keep their default ratios; only the per-domain
        scales are solved so that the given execution, interpreted as a
        ``1 x 16b`` run at the base frequency, reproduces the target total
        power and mem/nas/as split.  Returns (and installs) the new
        parameters.
        """
        total_power_mw = (
            self.reference_power_mw(self.simd_width) if total_power_mw is None else total_power_mw
        )
        fractions = fractions or self.reference_fractions(self.simd_width)
        for key in ("mem", "nas", "as"):
            if key not in fractions:
                raise ValueError(f"fractions must contain {key!r}")
        counters = execution.counters
        if counters.cycles <= 0:
            raise ValueError("execution has no cycles")

        duration_us = counters.cycles / self.base_frequency_mhz
        total_energy_pj = total_power_mw * duration_us * 1e3
        targets = {key: total_energy_pj * fractions[key] for key in ("mem", "nas", "as")}

        baseline = self.report(execution, technique="DAS", precision=self.word_bits)
        parameters = self.parameters
        scale_as = targets["as"] / baseline.as_energy_pj if baseline.as_energy_pj > 0 else 1.0
        scale_nas = targets["nas"] / baseline.nas_energy_pj if baseline.nas_energy_pj > 0 else 1.0
        scale_mem = targets["mem"] / baseline.mem_energy_pj if baseline.mem_energy_pj > 0 else 1.0
        self.parameters = parameters.scaled(
            mac_energy_pj=parameters.mac_energy_pj * scale_as,
            vector_alu_energy_pj=parameters.vector_alu_energy_pj * scale_as,
            instruction_energy_pj=parameters.instruction_energy_pj * scale_nas,
            control_energy_per_lane_pj=parameters.control_energy_per_lane_pj * scale_nas,
            memory_bit_energy_pj=parameters.memory_bit_energy_pj * scale_mem,
        )
        return self.parameters

    def scaling_for(self, precision: int) -> ScalingParameters:
        """Scaling-parameter row for ``precision`` (must be in the table)."""
        try:
            return self.scaling_table[precision]
        except KeyError as exc:
            known = sorted(self.scaling_table)
            raise KeyError(
                f"no scaling parameters for {precision} bits; known: {known}"
            ) from exc

    def report(
        self,
        execution: ExecutionResult,
        *,
        technique: str = "DVAFS",
        precision: int | None = None,
    ) -> SimdPowerReport:
        """Energy report of an execution under a given technique and precision.

        ``precision`` defaults to the precision the program itself selected
        (via SETPREC); the technique decides which knobs scale:

        * ``"DAS"``   -- activity only,
        * ``"DVAS"``  -- activity + as-domain voltage,
        * ``"DVAFS"`` -- activity + frequency + both voltages (subword mode).
        """
        technique = technique.upper()
        if technique not in ("DAS", "DVAS", "DVAFS"):
            raise ValueError(f"unknown technique {technique!r}")
        precision = execution.precision_bits if precision is None else precision
        scaling = self.scaling_for(precision)
        parameters = self.parameters
        nominal = parameters.nominal_voltage
        counters = execution.counters

        if technique == "DVAFS":
            parallelism = scaling.parallelism
            as_voltage = nominal / scaling.k4
            nas_voltage = nominal / scaling.k5
            frequency = self.base_frequency_mhz / parallelism
            activity_factor = 1.0 / (scaling.k3 * parallelism)
            memory_bits = self.word_bits
        elif technique == "DVAS":
            parallelism = 1
            as_voltage = nominal / scaling.k2
            nas_voltage = nominal
            frequency = self.base_frequency_mhz
            activity_factor = 1.0 / scaling.k1
            memory_bits = precision
        else:  # DAS
            parallelism = 1
            as_voltage = nominal
            nas_voltage = nominal
            frequency = self.base_frequency_mhz
            activity_factor = 1.0 / scaling.k0
            memory_bits = precision

        as_scale = (as_voltage / nominal) ** 2
        nas_scale = (nas_voltage / nominal) ** 2
        mem_scale = (parameters.mem_voltage / nominal) ** 2

        # Accuracy-scalable domain: the vector MAC array and vector ALU.  In
        # subword mode each MAC instruction performs `parallelism` MACs per
        # lane on the same hardware; the per-word activity factor captures
        # that sharing.
        mac_words = counters.vector_alu_instructions * self.simd_width * parallelism
        as_energy = (
            mac_words * parameters.mac_energy_pj * activity_factor
            + counters.vector_alu_instructions
            * self.simd_width
            * parameters.vector_alu_energy_pj
            * activity_factor
        ) * as_scale

        # Non-accuracy-scalable domain: instruction fetch/decode, the scalar
        # pipeline and per-lane control.  Its activity does not change with
        # precision; only its supply (DVAFS) does.
        vector_instructions = (
            counters.vector_alu_instructions
            + counters.vector_memory_reads
            + counters.vector_memory_writes
        )
        nas_energy = (
            counters.instructions * parameters.instruction_energy_pj
            + vector_instructions * self.simd_width * parameters.control_energy_per_lane_pj
        ) * nas_scale

        # Memory domain: energy per active bit moved; the supply is fixed.
        memory_accesses = counters.vector_memory_reads + counters.vector_memory_writes
        mem_energy = (
            memory_accesses
            * self.simd_width
            * memory_bits
            * parameters.memory_bit_energy_pj
            * mem_scale
        )

        words = mac_words if mac_words else counters.instructions
        return SimdPowerReport(
            technique=technique,
            precision=precision,
            parallelism=parallelism,
            simd_width=self.simd_width,
            frequency_mhz=frequency,
            as_voltage=as_voltage,
            nas_voltage=nas_voltage,
            mem_voltage=parameters.mem_voltage,
            as_energy_pj=as_energy,
            nas_energy_pj=nas_energy,
            mem_energy_pj=mem_energy,
            cycles=counters.cycles,
            words=words,
        )

    def mode_table(
        self,
        execution: ExecutionResult,
        *,
        modes: list[tuple[str, int]] | None = None,
    ) -> list[SimdPowerReport]:
        """Reports for a list of (technique, precision) modes (Table II rows)."""
        if modes is None:
            modes = [
                ("DAS", 16),
                ("DVAS", 8),
                ("DVAS", 4),
                ("DVAFS", 8),
                ("DVAFS", 4),
            ]
        return [
            self.report(execution, technique=technique, precision=precision)
            for technique, precision in modes
        ]
