"""Precision-scalable vector datapath of the SIMD processor.

Each of the ``SW`` lanes contains a subword-parallel MAC: in the ``1 x 16b``
mode a lane performs one 16-bit MAC per cycle, in ``2 x 8b`` two 8-bit MACs
on packed operands, and in ``4 x 4b`` four 4-bit MACs.  The unit keeps event
counters (MAC operations, ALU operations, guarded operations) that the power
model converts into energy per mode.

For speed the lane arithmetic is vectorised with numpy; the per-operation
switching activity of the datapath is taken from the structural multiplier
characterisation rather than re-simulated per lane, which keeps the
system-level simulation fast while staying anchored to the gate-level model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arithmetic.fixed_point import signed_range
from ..arithmetic.subword import SubwordMode


@dataclass
class VectorUnitCounters:
    """Event counters of the vector datapath."""

    mac_operations: int = 0
    guarded_macs: int = 0
    alu_operations: int = 0
    mac_cycles: int = 0

    @property
    def executed_macs(self) -> int:
        """MAC operations that actually exercised the multipliers."""
        return self.mac_operations - self.guarded_macs


class VectorUnit:
    """``lanes``-wide precision-scalable vector ALU/MAC array.

    Parameters
    ----------
    lanes:
        SIMD width SW.
    word_bits:
        Physical element width (16).
    guard_zero_operands:
        Skip multiplier activity when an operand is zero (sparsity guarding).
    """

    def __init__(self, lanes: int, *, word_bits: int = 16, guard_zero_operands: bool = True):
        if lanes < 1:
            raise ValueError("lanes must be at least 1")
        if word_bits < 4 or word_bits % 2:
            raise ValueError("word_bits must be an even number >= 4")
        self.lanes = lanes
        self.word_bits = word_bits
        self.guard_zero_operands = guard_zero_operands
        self._mode = SubwordMode(parallelism=1, subword_bits=word_bits)
        self.counters = VectorUnitCounters()

    # -- configuration ------------------------------------------------------

    @property
    def mode(self) -> SubwordMode:
        """Current subword mode."""
        return self._mode

    def set_precision(self, bits: int) -> SubwordMode:
        """Configure the DVAFS mode for ``bits`` of precision."""
        if not 2 <= bits <= self.word_bits:
            raise ValueError(f"precision must be in [2, {self.word_bits}]")
        if self.word_bits % bits == 0:
            self._mode = SubwordMode(parallelism=self.word_bits // bits, subword_bits=bits)
        else:
            self._mode = SubwordMode(parallelism=1, subword_bits=self.word_bits)
        return self._mode

    def reset_counters(self) -> None:
        """Clear the event counters."""
        self.counters = VectorUnitCounters()

    # -- packed-subword helpers ---------------------------------------------

    def unpack(self, packed: np.ndarray) -> np.ndarray:
        """Unpack ``(..., lanes)`` packed words into ``(..., lanes, N)`` signed
        subwords.

        Accepts any leading batch dimensions: the per-cycle interpreter passes
        ``(lanes,)`` vectors, the trace engine whole ``(iterations, lanes)``
        traces; both decode through this single implementation.
        """
        packed = np.asarray(packed, dtype=np.int64)
        mode = self._mode
        bits = mode.subword_bits
        mask = (1 << bits) - 1
        unsigned = packed.astype(np.int64) & ((1 << self.word_bits) - 1)
        lanes = []
        for index in range(mode.parallelism):
            chunk = (unsigned >> (index * bits)) & mask
            chunk = np.where(chunk >= (1 << (bits - 1)), chunk - (1 << bits), chunk)
            lanes.append(chunk)
        return np.stack(lanes, axis=-1)

    def pack(self, subwords: np.ndarray) -> np.ndarray:
        """Pack ``(lanes, N)`` signed subwords into ``(lanes,)`` words."""
        subwords = np.asarray(subwords, dtype=np.int64)
        mode = self._mode
        if subwords.shape != (self.lanes, mode.parallelism):
            raise ValueError(
                f"expected shape ({self.lanes}, {mode.parallelism}), got {subwords.shape}"
            )
        bits = mode.subword_bits
        lo, hi = signed_range(bits)
        if np.any(subwords < lo) or np.any(subwords > hi):
            raise ValueError(f"subwords must fit in {bits} signed bits")
        packed = np.zeros(self.lanes, dtype=np.int64)
        for index in range(mode.parallelism):
            packed |= (subwords[:, index] & ((1 << bits) - 1)) << (index * bits)
        sign_bit = 1 << (self.word_bits - 1)
        packed = np.where(packed >= sign_bit, packed - (1 << self.word_bits), packed)
        return packed

    # -- arithmetic ----------------------------------------------------------

    def multiply_accumulate(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Per-lane subword MAC: returns ``(lanes,)`` sums of subword products.

        In ``1 x 16b`` mode this is a plain element-wise product; in the
        subword modes the packed subwords of each lane are multiplied
        pairwise and their products *summed* per lane, which is exactly the
        dot-product-style reduction the convolution kernel needs (N taps are
        consumed per cycle).
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.shape != (self.lanes,) or b.shape != (self.lanes,):
            raise ValueError(f"operands must have shape ({self.lanes},)")
        mode = self._mode
        sub_a = self.unpack(a)
        sub_b = self.unpack(b)
        products = sub_a * sub_b

        operations = self.lanes * mode.parallelism
        self.counters.mac_operations += operations
        self.counters.mac_cycles += 1
        if self.guard_zero_operands:
            guarded = int(np.sum((sub_a == 0) | (sub_b == 0)))
            self.counters.guarded_macs += guarded
        return products.sum(axis=1)

    def elementwise(self, operation: str, a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
        """Element-wise vector ALU operation (``add``, ``mul``, ``relu``)."""
        a = np.asarray(a, dtype=np.int64)
        if a.shape != (self.lanes,):
            raise ValueError(f"operands must have shape ({self.lanes},)")
        self.counters.alu_operations += self.lanes
        if operation == "relu":
            return np.maximum(a, 0)
        if b is None:
            raise ValueError(f"operation {operation!r} needs two operands")
        b = np.asarray(b, dtype=np.int64)
        if b.shape != (self.lanes,):
            raise ValueError(f"operands must have shape ({self.lanes},)")
        if operation == "add":
            return a + b
        if operation == "mul":
            return a * b
        raise ValueError(f"unknown vector operation {operation!r}")
