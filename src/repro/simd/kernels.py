"""Benchmark kernels for the SIMD processor.

The paper's system-level benchmark is "a large convolution kernel" run on the
SIMD processor.  :func:`convolution_kernel` builds the assembly program for a
1-D convolution where every memory bank holds one independent input row
(so all SW lanes work in parallel), together with the preload data and a
numpy reference for correctness checking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .assembler import assemble
from .isa import Program
from .processor import SimdProcessor


@dataclass
class ConvolutionWorkload:
    """A generated convolution workload.

    Attributes
    ----------
    program:
        Assembled SIMD program.
    inputs:
        ``(banks, input_length)`` input rows, one per lane.
    weights:
        ``(taps,)`` filter weights (broadcast to all lanes).
    input_base, weight_base, output_base:
        Scratchpad addresses of the three buffers.
    output_length:
        Number of output samples per lane.
    """

    program: Program
    inputs: np.ndarray
    weights: np.ndarray
    input_base: int
    weight_base: int
    output_base: int
    output_length: int

    @property
    def taps(self) -> int:
        """Number of filter taps."""
        return int(self.weights.size)

    @property
    def macs(self) -> int:
        """Total multiply-accumulate operations of the workload."""
        return int(self.inputs.shape[0]) * self.output_length * self.taps

    def reference_output(self) -> np.ndarray:
        """Exact convolution result, ``(banks, output_length)``."""
        banks, _ = self.inputs.shape
        output = np.zeros((banks, self.output_length), dtype=np.int64)
        for position in range(self.output_length):
            window = self.inputs[:, position : position + self.taps]
            output[:, position] = window @ self.weights
        lo, hi = -(1 << 15), (1 << 15) - 1
        return np.clip(output, lo, hi)


def _convolution_source(
    taps: int, output_length: int, input_base: int, weight_base: int, output_base: int
) -> str:
    """Assembly text of the convolution with a fully unrolled tap loop.

    The tap loop is unrolled (the ASIP of the paper uses zero-overhead
    hardware loops, which this mimics), so almost every cycle of the inner
    body is a vector memory access or a vector MAC.
    """
    lines = [
        "; 1-D convolution: out[o] = sum_k w[k] * x[o + k], per memory bank",
        "    li      r1, 0              ; r1 = output index o",
        f"    li      r3, {output_length}",
        "outer:",
        "    vclr                       ; accumulator = 0",
    ]
    for tap in range(taps):
        lines.append(f"    vload   v0, r1, {input_base + tap}   ; x[o + {tap}]")
        lines.append(f"    vload   v1, r0, {weight_base + tap}  ; w[{tap}]")
        lines.append("    vmac    v0, v1")
    lines.extend(
        [
            "    vstacc  v2",
            f"    vstore  v2, r1, {output_base}",
            "    addi    r1, r1, 1",
            "    blt     r1, r3, outer",
            "    halt",
        ]
    )
    return "\n".join(lines) + "\n"


def convolution_kernel(
    simd_width: int,
    *,
    input_length: int = 64,
    taps: int = 9,
    seed: int = 2017,
    value_bits: int = 8,
    sparsity: float = 0.0,
) -> ConvolutionWorkload:
    """Generate a 1-D convolution workload for an ``simd_width``-lane processor.

    Parameters
    ----------
    input_length:
        Samples per bank; the output has ``input_length - taps + 1`` samples.
    taps:
        Filter length.
    value_bits:
        Magnitude of the generated data (values fit in ``value_bits`` signed
        bits so the 16-bit accumulations cannot saturate for realistic taps).
    sparsity:
        Fraction of input samples forced to zero (exercises guarding).
    """
    if input_length < taps:
        raise ValueError("input_length must be at least the number of taps")
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError("sparsity must be in [0, 1]")
    rng = np.random.default_rng(seed)
    lo, hi = -(1 << (value_bits - 1)), (1 << (value_bits - 1)) - 1
    inputs = rng.integers(lo, hi + 1, size=(simd_width, input_length)).astype(np.int64)
    if sparsity > 0:
        mask = rng.random(size=inputs.shape) < sparsity
        inputs[mask] = 0
    weights = rng.integers(lo, hi + 1, size=taps).astype(np.int64)

    output_length = input_length - taps + 1
    input_base = 0
    weight_base = input_base + input_length
    output_base = weight_base + taps

    source = _convolution_source(
        taps, output_length, input_base, weight_base, output_base
    )
    program = assemble(source)
    return ConvolutionWorkload(
        program=program,
        inputs=inputs,
        weights=weights,
        input_base=input_base,
        weight_base=weight_base,
        output_base=output_base,
        output_length=output_length,
    )


def load_workload(processor: SimdProcessor, workload: ConvolutionWorkload) -> None:
    """Preload a convolution workload into the processor's memory banks."""
    if processor.simd_width != workload.inputs.shape[0]:
        raise ValueError(
            f"workload was generated for {workload.inputs.shape[0]} banks, "
            f"processor has {processor.simd_width}"
        )
    for bank in range(processor.simd_width):
        processor.memory.load_bank(bank, workload.input_base, workload.inputs[bank])
        processor.memory.load_bank(bank, workload.weight_base, workload.weights)


def read_outputs(processor: SimdProcessor, workload: ConvolutionWorkload) -> np.ndarray:
    """Read the convolution outputs back from the processor memory."""
    outputs = np.zeros((processor.simd_width, workload.output_length), dtype=np.int64)
    for bank in range(processor.simd_width):
        outputs[bank] = processor.memory.dump_bank(
            bank, workload.output_base, workload.output_length
        )
    return outputs


def run_convolution(
    processor: SimdProcessor, workload: ConvolutionWorkload, *, batch: bool = False
) -> tuple[np.ndarray, "ExecutionResult"]:
    """Load, execute and read back a convolution workload.

    Returns the output array and the execution result with event counters.
    With ``batch=True`` the workload is evaluated by the vectorised batch
    datapath (:func:`execute_convolution_batch`) instead of the cycle-level
    interpreter; outputs and counters are identical, only wall-clock differs.
    """
    load_workload(processor, workload)
    if batch:
        result = execute_convolution_batch(processor, workload)
    else:
        result = processor.run(workload.program)
    outputs = read_outputs(processor, workload)
    return outputs, result


def execute_convolution_batch(
    processor: SimdProcessor, workload: ConvolutionWorkload
) -> ExecutionResult:
    """Evaluate a convolution workload as one vectorised batch operation.

    The generated convolution program has a fixed, data-independent control
    structure (an unrolled tap loop inside one output loop), so its event
    counters can be derived in closed form while the arithmetic -- including
    the zero-operand guard counts, which *are* data dependent -- is evaluated
    with whole-array numpy operations.  The processor's memory contents,
    memory/vector-unit counters and the returned :class:`ExecutionResult`
    match :meth:`SimdProcessor.run` on the same workload exactly;
    architectural register state is not reproduced.

    Only single-subword modes are supported (the generated workloads do not
    pack operands); reconfigure the processor or use the interpreter for
    subword-parallel experiments.
    """
    from .isa import Opcode

    mode = processor.vector_unit.mode
    if mode.parallelism != 1:
        raise ValueError(
            "batch execution supports only 1-subword modes; "
            "use the cycle-level interpreter for packed-operand runs"
        )
    if processor.simd_width != workload.inputs.shape[0]:
        raise ValueError(
            f"workload was generated for {workload.inputs.shape[0]} banks, "
            f"processor has {processor.simd_width}"
        )
    lanes = processor.simd_width
    taps = workload.taps
    length = workload.output_length
    # Guard against hand-modified programs: the closed-form counters below
    # are only valid for the exact program convolution_kernel generates.
    expected = assemble(
        _convolution_source(
            taps,
            length,
            workload.input_base,
            workload.weight_base,
            workload.output_base,
        )
    )
    if list(workload.program) != list(expected):
        raise ValueError(
            "workload program does not match the generated convolution kernel; "
            "use the cycle-level interpreter (batch=False)"
        )
    inputs = np.asarray(workload.inputs, dtype=np.int64)
    weights = np.asarray(workload.weights, dtype=np.int64)

    # Arithmetic: every (output, tap) MAC of every lane at once.
    windows = np.lib.stride_tricks.sliding_window_view(inputs, taps, axis=1)[:, :length]
    sums = windows @ weights
    lo, hi = -(1 << (processor.word_bits - 1)), (1 << (processor.word_bits - 1)) - 1
    outputs = np.clip(sums, lo, hi).astype(np.int64)
    for bank in range(lanes):
        processor.memory.load_bank(bank, workload.output_base, outputs[bank])

    # Event counters of the (fully unrolled) kernel, in closed form.
    counters = ExecutionCounters()
    counters.cycles = 2 + length * (3 * taps + 5) + 1
    counters.instructions = counters.cycles
    counters.scalar_operations = 2 + 2 * length
    counters.vector_memory_reads = 2 * taps * length
    counters.vector_memory_writes = length
    counters.vector_alu_instructions = length * (taps + 2)
    counters.branches_taken = length - 1
    counters.opcode_histogram = {
        Opcode.LI.value: 2,
        Opcode.VCLR.value: length,
        Opcode.VLOAD.value: 2 * taps * length,
        Opcode.VMAC.value: taps * length,
        Opcode.VSTACC.value: length,
        Opcode.VSTORE.value: length,
        Opcode.ADDI.value: length,
        Opcode.BLT.value: length,
        Opcode.HALT.value: 1,
    }

    unit = processor.vector_unit.counters
    unit.mac_operations += taps * length * lanes
    unit.mac_cycles += taps * length
    if processor.vector_unit.guard_zero_operands:
        guarded = (windows == 0) | (weights == 0)[None, None, :]
        unit.guarded_macs += int(guarded.sum())

    active_bits = processor.precision_bits
    memory = processor.memory.counters
    memory.reads += counters.vector_memory_reads * lanes
    memory.read_bits += counters.vector_memory_reads * lanes * active_bits
    memory.writes += counters.vector_memory_writes * lanes
    memory.write_bits += counters.vector_memory_writes * lanes * active_bits

    return ExecutionResult(
        counters=counters,
        halted=True,
        precision_bits=processor.precision_bits,
        parallelism=mode.parallelism,
    )


# Re-exported for type checkers without importing processor publics here.
from .processor import ExecutionCounters, ExecutionResult  # noqa: E402  (import at end to avoid cycle)
