"""Benchmark kernels for the SIMD processor.

The paper's system-level benchmark is "a large convolution kernel" run on the
SIMD processor.  :func:`convolution_kernel` builds the assembly program for a
1-D convolution where every memory bank holds one independent input row
(so all SW lanes work in parallel), together with the preload data and a
numpy reference for correctness checking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .assembler import assemble
from .engine import TraceEngine
from .isa import Program
from .processor import ExecutionResult, SimdProcessor


@dataclass
class ConvolutionWorkload:
    """A generated convolution workload.

    Attributes
    ----------
    program:
        Assembled SIMD program.
    inputs:
        ``(banks, input_length)`` input rows, one per lane.
    weights:
        ``(taps,)`` filter weights (broadcast to all lanes).
    input_base, weight_base, output_base:
        Scratchpad addresses of the three buffers.
    output_length:
        Number of output samples per lane.
    """

    program: Program
    inputs: np.ndarray
    weights: np.ndarray
    input_base: int
    weight_base: int
    output_base: int
    output_length: int

    @property
    def taps(self) -> int:
        """Number of filter taps."""
        return int(self.weights.size)

    @property
    def macs(self) -> int:
        """Total multiply-accumulate operations of the workload."""
        return int(self.inputs.shape[0]) * self.output_length * self.taps

    def reference_output(self) -> np.ndarray:
        """Exact convolution result, ``(banks, output_length)``."""
        banks, _ = self.inputs.shape
        output = np.zeros((banks, self.output_length), dtype=np.int64)
        for position in range(self.output_length):
            window = self.inputs[:, position : position + self.taps]
            output[:, position] = window @ self.weights
        lo, hi = -(1 << 15), (1 << 15) - 1
        return np.clip(output, lo, hi)


def _convolution_source(
    taps: int, output_length: int, input_base: int, weight_base: int, output_base: int
) -> str:
    """Assembly text of the convolution with a fully unrolled tap loop.

    The tap loop is unrolled (the ASIP of the paper uses zero-overhead
    hardware loops, which this mimics), so almost every cycle of the inner
    body is a vector memory access or a vector MAC.
    """
    lines = [
        "; 1-D convolution: out[o] = sum_k w[k] * x[o + k], per memory bank",
        "    li      r1, 0              ; r1 = output index o",
        f"    li      r3, {output_length}",
        "outer:",
        "    vclr                       ; accumulator = 0",
    ]
    for tap in range(taps):
        lines.append(f"    vload   v0, r1, {input_base + tap}   ; x[o + {tap}]")
        lines.append(f"    vload   v1, r0, {weight_base + tap}  ; w[{tap}]")
        lines.append("    vmac    v0, v1")
    lines.extend(
        [
            "    vstacc  v2",
            f"    vstore  v2, r1, {output_base}",
            "    addi    r1, r1, 1",
            "    blt     r1, r3, outer",
            "    halt",
        ]
    )
    return "\n".join(lines) + "\n"


def convolution_kernel(
    simd_width: int,
    *,
    input_length: int = 64,
    taps: int = 9,
    seed: int = 2017,
    value_bits: int = 8,
    sparsity: float = 0.0,
) -> ConvolutionWorkload:
    """Generate a 1-D convolution workload for an ``simd_width``-lane processor.

    Parameters
    ----------
    input_length:
        Samples per bank; the output has ``input_length - taps + 1`` samples.
    taps:
        Filter length.
    value_bits:
        Magnitude of the generated data (values fit in ``value_bits`` signed
        bits so the 16-bit accumulations cannot saturate for realistic taps).
    sparsity:
        Fraction of input samples forced to zero (exercises guarding).
    """
    if input_length < taps:
        raise ValueError("input_length must be at least the number of taps")
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError("sparsity must be in [0, 1]")
    rng = np.random.default_rng(seed)
    lo, hi = -(1 << (value_bits - 1)), (1 << (value_bits - 1)) - 1
    inputs = rng.integers(lo, hi + 1, size=(simd_width, input_length)).astype(np.int64)
    if sparsity > 0:
        mask = rng.random(size=inputs.shape) < sparsity
        inputs[mask] = 0
    weights = rng.integers(lo, hi + 1, size=taps).astype(np.int64)

    output_length = input_length - taps + 1
    input_base = 0
    weight_base = input_base + input_length
    output_base = weight_base + taps

    source = _convolution_source(
        taps, output_length, input_base, weight_base, output_base
    )
    program = assemble(source)
    return ConvolutionWorkload(
        program=program,
        inputs=inputs,
        weights=weights,
        input_base=input_base,
        weight_base=weight_base,
        output_base=output_base,
        output_length=output_length,
    )


def load_workload(processor: SimdProcessor, workload: ConvolutionWorkload) -> None:
    """Preload a convolution workload into the processor's memory banks."""
    if processor.simd_width != workload.inputs.shape[0]:
        raise ValueError(
            f"workload was generated for {workload.inputs.shape[0]} banks, "
            f"processor has {processor.simd_width}"
        )
    for bank in range(processor.simd_width):
        processor.memory.load_bank(bank, workload.input_base, workload.inputs[bank])
        processor.memory.load_bank(bank, workload.weight_base, workload.weights)


def read_outputs(processor: SimdProcessor, workload: ConvolutionWorkload) -> np.ndarray:
    """Read the convolution outputs back from the processor memory."""
    outputs = np.zeros((processor.simd_width, workload.output_length), dtype=np.int64)
    for bank in range(processor.simd_width):
        outputs[bank] = processor.memory.dump_bank(
            bank, workload.output_base, workload.output_length
        )
    return outputs


def run_convolution(
    processor: SimdProcessor, workload: ConvolutionWorkload, *, batch: bool = True
) -> tuple[np.ndarray, ExecutionResult]:
    """Load, execute and read back a convolution workload.

    Returns the output array and the execution result with event counters.
    With ``batch=True`` (the default) the workload runs on the trace-compiled
    execution engine (:class:`~repro.simd.engine.TraceEngine`) instead of the
    cycle-level interpreter; outputs and counters are identical, only
    wall-clock differs.
    """
    load_workload(processor, workload)
    if batch:
        result = execute_convolution_batch(processor, workload)
    else:
        result = processor.run(workload.program)
    outputs = read_outputs(processor, workload)
    return outputs, result


def execute_convolution_batch(
    processor: SimdProcessor, workload: ConvolutionWorkload
) -> ExecutionResult:
    """Evaluate a convolution workload on the trace-compiled engine.

    Thin wrapper over :class:`~repro.simd.engine.TraceEngine`: the engine
    detects the output loop of the generated program as an affine trace and
    executes all iterations at once, so memory contents, event counters
    (including the data-dependent zero-operand guard counts) and the returned
    :class:`ExecutionResult` match :meth:`SimdProcessor.run` bit for bit --
    in packed-subword modes (parallelism > 1) as well, which the previous
    closed-form batch executor rejected.  Programs the engine cannot analyze
    fall back to the interpreter dispatch loop automatically.
    """
    if processor.simd_width != workload.inputs.shape[0]:
        raise ValueError(
            f"workload was generated for {workload.inputs.shape[0]} banks, "
            f"processor has {processor.simd_width}"
        )
    return TraceEngine(processor).run(workload.program)
