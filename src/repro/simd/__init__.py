"""SIMD RISC vector-processor substrate (Section III-B of the paper)."""

from .assembler import AssemblerError, assemble
from .engine import BasicBlock, LoopTrace, TraceEngine, analyze_program, basic_blocks
from .isa import Instruction, Opcode, Program, SCALAR_REGISTERS, VECTOR_REGISTERS
from .kernels import (
    ConvolutionWorkload,
    convolution_kernel,
    execute_convolution_batch,
    load_workload,
    read_outputs,
    run_convolution,
)
from .memory import BankedMemory, MemoryAccessCounters
from .power import SimdEnergyParameters, SimdPowerModel, SimdPowerReport
from .processor import ExecutionCounters, ExecutionError, ExecutionResult, SimdProcessor
from .register_file import ScalarRegisterFile, VectorRegisterFile
from .vector_unit import VectorUnit, VectorUnitCounters

__all__ = [
    "AssemblerError",
    "assemble",
    "BasicBlock",
    "LoopTrace",
    "TraceEngine",
    "analyze_program",
    "basic_blocks",
    "Instruction",
    "Opcode",
    "Program",
    "SCALAR_REGISTERS",
    "VECTOR_REGISTERS",
    "ConvolutionWorkload",
    "convolution_kernel",
    "execute_convolution_batch",
    "load_workload",
    "read_outputs",
    "run_convolution",
    "BankedMemory",
    "MemoryAccessCounters",
    "SimdEnergyParameters",
    "SimdPowerModel",
    "SimdPowerReport",
    "ExecutionCounters",
    "ExecutionError",
    "ExecutionResult",
    "SimdProcessor",
    "ScalarRegisterFile",
    "VectorRegisterFile",
    "VectorUnit",
    "VectorUnitCounters",
]
