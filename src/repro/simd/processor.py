"""Cycle-level model of the DVAFS-compatible SIMD RISC vector processor.

The processor executes one instruction per cycle (fetch, decode, execute) and
keeps event counters for every energy-relevant activity: instructions
fetched, scalar operations, vector MAC/ALU operations, vector memory accesses
and their active bit counts.  The power model of :mod:`repro.simd.power`
converts those counters into the per-domain energy split of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .isa import (
    Instruction,
    Opcode,
    Program,
    SCALAR_OPCODES,
    VECTOR_ALU_OPCODES,
    VECTOR_MEMORY_OPCODES,
)
from .memory import BankedMemory
from .register_file import ScalarRegisterFile, VectorRegisterFile
from .vector_unit import VectorUnit


class ExecutionError(RuntimeError):
    """Raised when a program misbehaves (bad opcode, watchdog expiry, ...)."""


@dataclass
class ExecutionCounters:
    """Event counts of one program execution."""

    cycles: int = 0
    instructions: int = 0
    scalar_operations: int = 0
    vector_alu_instructions: int = 0
    vector_memory_reads: int = 0
    vector_memory_writes: int = 0
    branches_taken: int = 0
    opcode_histogram: dict[str, int] = field(default_factory=dict)

    def record_opcode(self, opcode: Opcode) -> None:
        """Update the per-opcode histogram."""
        self.opcode_histogram[opcode.value] = self.opcode_histogram.get(opcode.value, 0) + 1


@dataclass
class ExecutionResult:
    """Outcome of :meth:`SimdProcessor.run`."""

    counters: ExecutionCounters
    halted: bool
    precision_bits: int
    parallelism: int

    @property
    def words_processed(self) -> int:
        """Number of MAC result words produced (lanes x subwords x cycles)."""
        return self.counters.vector_alu_instructions


class SimdProcessor:
    """The SIMD RISC vector processor.

    Parameters
    ----------
    simd_width:
        Number of vector lanes / memory banks (SW: 8 or 64 in the paper).
    word_bits:
        Element width of the vector datapath (16).
    words_per_bank:
        Scratchpad capacity per bank.
    guard_zero_operands:
        Enable sparsity guarding in the vector unit.
    """

    def __init__(
        self,
        simd_width: int = 8,
        *,
        word_bits: int = 16,
        words_per_bank: int = 4096,
        guard_zero_operands: bool = True,
    ):
        if simd_width < 1:
            raise ValueError("simd_width must be at least 1")
        self.simd_width = simd_width
        self.word_bits = word_bits
        self.scalar_registers = ScalarRegisterFile()
        self.vector_registers = VectorRegisterFile(simd_width, element_bits=word_bits)
        self.memory = BankedMemory(simd_width, words_per_bank, word_bits=word_bits)
        self.vector_unit = VectorUnit(
            simd_width, word_bits=word_bits, guard_zero_operands=guard_zero_operands
        )
        self.precision_bits = word_bits

    # -- state management ----------------------------------------------------

    def reset(self, *, keep_memory: bool = True) -> None:
        """Reset registers, counters and (optionally) the data memory."""
        self.scalar_registers = ScalarRegisterFile()
        self.vector_registers = VectorRegisterFile(
            self.simd_width, element_bits=self.word_bits
        )
        self.vector_unit.reset_counters()
        self.vector_unit.set_precision(self.word_bits)
        self.precision_bits = self.word_bits
        if not keep_memory:
            self.memory = BankedMemory(
                self.simd_width, self.memory.words_per_bank, word_bits=self.word_bits
            )
        else:
            self.memory.reset_counters()

    # -- execution -----------------------------------------------------------

    def run(self, program: Program, *, max_cycles: int = 2_000_000) -> ExecutionResult:
        """Execute ``program`` until HALT (or the cycle watchdog expires)."""
        if len(program) == 0:
            raise ExecutionError("program is empty")
        counters = ExecutionCounters()
        pc = 0
        halted = False
        while counters.cycles < max_cycles:
            if not 0 <= pc < len(program):
                raise ExecutionError(f"program counter {pc} out of range")
            instruction = program[pc]
            counters.cycles += 1
            counters.instructions += 1
            counters.record_opcode(instruction.opcode)
            next_pc = pc + 1

            if instruction.opcode == Opcode.HALT:
                halted = True
                break
            next_pc = self._execute(instruction, counters, pc, next_pc)
            pc = next_pc
        if not halted and counters.cycles >= max_cycles:
            raise ExecutionError(f"watchdog expired after {max_cycles} cycles")
        return ExecutionResult(
            counters=counters,
            halted=halted,
            precision_bits=self.precision_bits,
            parallelism=self.vector_unit.mode.parallelism,
        )

    def _execute(
        self, instruction: Instruction, counters: ExecutionCounters, pc: int, next_pc: int
    ) -> int:
        opcode = instruction.opcode
        operands = instruction.operands
        scalars = self.scalar_registers
        vectors = self.vector_registers

        if opcode in SCALAR_OPCODES:
            counters.scalar_operations += 1

        if opcode == Opcode.NOP:
            return next_pc
        if opcode == Opcode.LI:
            scalars.write(operands[0], operands[1])
        elif opcode == Opcode.ADD:
            scalars.write(operands[0], scalars.read(operands[1]) + scalars.read(operands[2]))
        elif opcode == Opcode.ADDI:
            scalars.write(operands[0], scalars.read(operands[1]) + operands[2])
        elif opcode == Opcode.SUB:
            scalars.write(operands[0], scalars.read(operands[1]) - scalars.read(operands[2]))
        elif opcode == Opcode.MUL:
            scalars.write(operands[0], scalars.read(operands[1]) * scalars.read(operands[2]))
        elif opcode == Opcode.BNE:
            if scalars.read(operands[0]) != scalars.read(operands[1]):
                counters.branches_taken += 1
                return operands[2]
        elif opcode == Opcode.BLT:
            if scalars.read(operands[0]) < scalars.read(operands[1]):
                counters.branches_taken += 1
                return operands[2]
        elif opcode == Opcode.JMP:
            counters.branches_taken += 1
            return operands[0]
        elif opcode == Opcode.SETPREC:
            self.set_precision(operands[0])
        elif opcode == Opcode.VLOAD:
            address = scalars.read(operands[1]) + operands[2]
            values = self.memory.read_vector(address, active_bits=self._memory_active_bits())
            vectors.write(operands[0], values)
            counters.vector_memory_reads += 1
        elif opcode == Opcode.VSTORE:
            address = scalars.read(operands[1]) + operands[2]
            self.memory.write_vector(
                address, vectors.read(operands[0]), active_bits=self._memory_active_bits()
            )
            counters.vector_memory_writes += 1
        elif opcode == Opcode.VBCAST:
            value = scalars.read(operands[1])
            vectors.write(operands[0], np.full(self.simd_width, value, dtype=np.int64))
            counters.vector_alu_instructions += 1
        elif opcode == Opcode.VMAC:
            products = self.vector_unit.multiply_accumulate(
                vectors.read(operands[0]), vectors.read(operands[1])
            )
            vectors.accumulate(products)
            counters.vector_alu_instructions += 1
        elif opcode == Opcode.VMUL:
            result = self.vector_unit.elementwise(
                "mul", vectors.read(operands[1]), vectors.read(operands[2])
            )
            vectors.write(operands[0], np.clip(result, *_element_range(self.word_bits)))
            counters.vector_alu_instructions += 1
        elif opcode == Opcode.VADD:
            result = self.vector_unit.elementwise(
                "add", vectors.read(operands[1]), vectors.read(operands[2])
            )
            vectors.write(operands[0], np.clip(result, *_element_range(self.word_bits)))
            counters.vector_alu_instructions += 1
        elif opcode == Opcode.VRELU:
            result = self.vector_unit.elementwise("relu", vectors.read(operands[1]))
            vectors.write(operands[0], result)
            counters.vector_alu_instructions += 1
        elif opcode == Opcode.VCLR:
            vectors.clear_accumulators()
            counters.vector_alu_instructions += 1
        elif opcode == Opcode.VSTACC:
            vectors.write(operands[0], vectors.saturate_accumulators())
            counters.vector_alu_instructions += 1
        elif opcode in VECTOR_MEMORY_OPCODES or opcode in VECTOR_ALU_OPCODES:
            raise ExecutionError(f"unhandled vector opcode {opcode.value}")
        else:
            raise ExecutionError(f"unhandled opcode {opcode.value}")
        return next_pc

    # -- precision management --------------------------------------------------

    def set_precision(self, bits: int) -> None:
        """Program the vector datapath precision (the SETPREC instruction)."""
        mode = self.vector_unit.set_precision(bits)
        self.precision_bits = bits
        del mode

    def _memory_active_bits(self) -> int:
        """Bits toggling per memory access in the current mode.

        In single-word (DAS/DVAS) modes only the active MSBs of each word are
        fetched; in subword-parallel modes the full word is used because it
        carries N packed operands.
        """
        mode = self.vector_unit.mode
        if mode.parallelism > 1:
            return self.word_bits
        return self.precision_bits


def _element_range(bits: int) -> tuple[int, int]:
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return lo, hi
