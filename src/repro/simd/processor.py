"""Cycle-level model of the DVAFS-compatible SIMD RISC vector processor.

The processor executes one instruction per cycle (fetch, decode, execute) and
keeps event counters for every energy-relevant activity: instructions
fetched, scalar operations, vector MAC/ALU operations, vector memory accesses
and their active bit counts.  The power model of :mod:`repro.simd.power`
converts those counters into the per-domain energy split of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .isa import (
    Instruction,
    Opcode,
    Program,
    SCALAR_OPCODES,
    VECTOR_ALU_OPCODES,
    VECTOR_MEMORY_OPCODES,
)
from .memory import BankedMemory
from .register_file import ScalarRegisterFile, VectorRegisterFile
from .vector_unit import VectorUnit


class ExecutionError(RuntimeError):
    """Raised when a program misbehaves (bad opcode, watchdog expiry, ...)."""


@dataclass
class ExecutionCounters:
    """Event counts of one program execution."""

    cycles: int = 0
    instructions: int = 0
    scalar_operations: int = 0
    vector_alu_instructions: int = 0
    vector_memory_reads: int = 0
    vector_memory_writes: int = 0
    branches_taken: int = 0
    opcode_histogram: dict[str, int] = field(default_factory=dict)

    def record_opcode(self, opcode: Opcode) -> None:
        """Update the per-opcode histogram."""
        self.opcode_histogram[opcode.value] = self.opcode_histogram.get(opcode.value, 0) + 1


@dataclass
class ExecutionResult:
    """Outcome of :meth:`SimdProcessor.run`."""

    counters: ExecutionCounters
    halted: bool
    precision_bits: int
    parallelism: int
    lanes: int = 1

    @property
    def words_processed(self) -> int:
        """Vector-ALU result words produced by the run.

        Every vector-ALU instruction produces one result word per lane, and
        in subword-parallel modes each lane word carries ``parallelism``
        packed results -- so the count is instructions x lanes x parallelism,
        matching the per-word energy accounting of the power model.
        """
        return self.counters.vector_alu_instructions * self.lanes * self.parallelism


class SimdProcessor:
    """The SIMD RISC vector processor.

    Parameters
    ----------
    simd_width:
        Number of vector lanes / memory banks (SW: 8 or 64 in the paper).
    word_bits:
        Element width of the vector datapath (16).
    words_per_bank:
        Scratchpad capacity per bank.
    guard_zero_operands:
        Enable sparsity guarding in the vector unit.
    """

    def __init__(
        self,
        simd_width: int = 8,
        *,
        word_bits: int = 16,
        words_per_bank: int = 4096,
        guard_zero_operands: bool = True,
    ):
        if simd_width < 1:
            raise ValueError("simd_width must be at least 1")
        self.simd_width = simd_width
        self.word_bits = word_bits
        self.scalar_registers = ScalarRegisterFile()
        self.vector_registers = VectorRegisterFile(simd_width, element_bits=word_bits)
        self.memory = BankedMemory(simd_width, words_per_bank, word_bits=word_bits)
        self.vector_unit = VectorUnit(
            simd_width, word_bits=word_bits, guard_zero_operands=guard_zero_operands
        )
        self.precision_bits = word_bits
        # One-time decode: opcode -> bound handler.  Replaces the long
        # if/elif chain so the fetch loop pays one dict lookup per cycle.
        self._dispatch = {
            Opcode.NOP: self._op_nop,
            Opcode.LI: self._op_li,
            Opcode.ADD: self._op_add,
            Opcode.ADDI: self._op_addi,
            Opcode.SUB: self._op_sub,
            Opcode.MUL: self._op_mul,
            Opcode.BNE: self._op_bne,
            Opcode.BLT: self._op_blt,
            Opcode.JMP: self._op_jmp,
            Opcode.SETPREC: self._op_setprec,
            Opcode.VLOAD: self._op_vload,
            Opcode.VSTORE: self._op_vstore,
            Opcode.VBCAST: self._op_vbcast,
            Opcode.VMAC: self._op_vmac,
            Opcode.VMUL: self._op_vmul,
            Opcode.VADD: self._op_vadd,
            Opcode.VRELU: self._op_vrelu,
            Opcode.VCLR: self._op_vclr,
            Opcode.VSTACC: self._op_vstacc,
        }

    # -- state management ----------------------------------------------------

    def reset(self, *, keep_memory: bool = True) -> None:
        """Reset registers, counters and (optionally) the data memory."""
        self.scalar_registers = ScalarRegisterFile()
        self.vector_registers = VectorRegisterFile(
            self.simd_width, element_bits=self.word_bits
        )
        self.vector_unit.reset_counters()
        self.vector_unit.set_precision(self.word_bits)
        self.precision_bits = self.word_bits
        if not keep_memory:
            self.memory = BankedMemory(
                self.simd_width, self.memory.words_per_bank, word_bits=self.word_bits
            )
        else:
            self.memory.reset_counters()

    # -- execution -----------------------------------------------------------

    def run(self, program: Program, *, max_cycles: int = 2_000_000) -> ExecutionResult:
        """Execute ``program`` until HALT (or the cycle watchdog expires)."""
        if len(program) == 0:
            raise ExecutionError("program is empty")
        counters = ExecutionCounters()
        pc = 0
        halted = False
        while counters.cycles < max_cycles:
            if not 0 <= pc < len(program):
                raise ExecutionError(f"program counter {pc} out of range")
            instruction = program[pc]
            counters.cycles += 1
            counters.instructions += 1
            counters.record_opcode(instruction.opcode)
            next_pc = pc + 1

            if instruction.opcode == Opcode.HALT:
                halted = True
                break
            next_pc = self._execute(instruction, counters, pc, next_pc)
            pc = next_pc
        if not halted and counters.cycles >= max_cycles:
            raise ExecutionError(f"watchdog expired after {max_cycles} cycles")
        return ExecutionResult(
            counters=counters,
            halted=halted,
            precision_bits=self.precision_bits,
            parallelism=self.vector_unit.mode.parallelism,
            lanes=self.simd_width,
        )

    def _execute(
        self, instruction: Instruction, counters: ExecutionCounters, pc: int, next_pc: int
    ) -> int:
        opcode = instruction.opcode
        if opcode in SCALAR_OPCODES:
            counters.scalar_operations += 1
        handler = self._dispatch.get(opcode)
        if handler is None:
            if opcode in VECTOR_MEMORY_OPCODES or opcode in VECTOR_ALU_OPCODES:
                raise ExecutionError(f"unhandled vector opcode {opcode.value}")
            raise ExecutionError(f"unhandled opcode {opcode.value}")
        return handler(instruction.operands, counters, next_pc)

    # -- per-opcode handlers (the decode table) --------------------------------

    def _op_nop(self, operands, counters, next_pc: int) -> int:
        return next_pc

    def _op_li(self, operands, counters, next_pc: int) -> int:
        self.scalar_registers.write(operands[0], operands[1])
        return next_pc

    def _op_add(self, operands, counters, next_pc: int) -> int:
        scalars = self.scalar_registers
        scalars.write(operands[0], scalars.read(operands[1]) + scalars.read(operands[2]))
        return next_pc

    def _op_addi(self, operands, counters, next_pc: int) -> int:
        scalars = self.scalar_registers
        scalars.write(operands[0], scalars.read(operands[1]) + operands[2])
        return next_pc

    def _op_sub(self, operands, counters, next_pc: int) -> int:
        scalars = self.scalar_registers
        scalars.write(operands[0], scalars.read(operands[1]) - scalars.read(operands[2]))
        return next_pc

    def _op_mul(self, operands, counters, next_pc: int) -> int:
        scalars = self.scalar_registers
        scalars.write(operands[0], scalars.read(operands[1]) * scalars.read(operands[2]))
        return next_pc

    def _op_bne(self, operands, counters, next_pc: int) -> int:
        scalars = self.scalar_registers
        if scalars.read(operands[0]) != scalars.read(operands[1]):
            counters.branches_taken += 1
            return operands[2]
        return next_pc

    def _op_blt(self, operands, counters, next_pc: int) -> int:
        scalars = self.scalar_registers
        if scalars.read(operands[0]) < scalars.read(operands[1]):
            counters.branches_taken += 1
            return operands[2]
        return next_pc

    def _op_jmp(self, operands, counters, next_pc: int) -> int:
        counters.branches_taken += 1
        return operands[0]

    def _op_setprec(self, operands, counters, next_pc: int) -> int:
        self.set_precision(operands[0])
        return next_pc

    def _op_vload(self, operands, counters, next_pc: int) -> int:
        address = self.scalar_registers.read(operands[1]) + operands[2]
        values = self.memory.read_vector(address, active_bits=self._memory_active_bits())
        self.vector_registers.write(operands[0], values)
        counters.vector_memory_reads += 1
        return next_pc

    def _op_vstore(self, operands, counters, next_pc: int) -> int:
        address = self.scalar_registers.read(operands[1]) + operands[2]
        self.memory.write_vector(
            address, self.vector_registers.read(operands[0]),
            active_bits=self._memory_active_bits(),
        )
        counters.vector_memory_writes += 1
        return next_pc

    def _op_vbcast(self, operands, counters, next_pc: int) -> int:
        value = self.scalar_registers.read(operands[1])
        self.vector_registers.write(
            operands[0], np.full(self.simd_width, value, dtype=np.int64)
        )
        counters.vector_alu_instructions += 1
        return next_pc

    def _op_vmac(self, operands, counters, next_pc: int) -> int:
        vectors = self.vector_registers
        products = self.vector_unit.multiply_accumulate(
            vectors.read(operands[0]), vectors.read(operands[1])
        )
        vectors.accumulate(products)
        counters.vector_alu_instructions += 1
        return next_pc

    def _op_vmul(self, operands, counters, next_pc: int) -> int:
        vectors = self.vector_registers
        result = self.vector_unit.elementwise(
            "mul", vectors.read(operands[1]), vectors.read(operands[2])
        )
        vectors.write(operands[0], np.clip(result, *_element_range(self.word_bits)))
        counters.vector_alu_instructions += 1
        return next_pc

    def _op_vadd(self, operands, counters, next_pc: int) -> int:
        vectors = self.vector_registers
        result = self.vector_unit.elementwise(
            "add", vectors.read(operands[1]), vectors.read(operands[2])
        )
        vectors.write(operands[0], np.clip(result, *_element_range(self.word_bits)))
        counters.vector_alu_instructions += 1
        return next_pc

    def _op_vrelu(self, operands, counters, next_pc: int) -> int:
        vectors = self.vector_registers
        result = self.vector_unit.elementwise("relu", vectors.read(operands[1]))
        vectors.write(operands[0], result)
        counters.vector_alu_instructions += 1
        return next_pc

    def _op_vclr(self, operands, counters, next_pc: int) -> int:
        self.vector_registers.clear_accumulators()
        counters.vector_alu_instructions += 1
        return next_pc

    def _op_vstacc(self, operands, counters, next_pc: int) -> int:
        vectors = self.vector_registers
        vectors.write(operands[0], vectors.saturate_accumulators())
        counters.vector_alu_instructions += 1
        return next_pc

    # -- precision management --------------------------------------------------

    def set_precision(self, bits: int) -> None:
        """Program the vector datapath precision (the SETPREC instruction)."""
        mode = self.vector_unit.set_precision(bits)
        self.precision_bits = bits
        del mode

    def _memory_active_bits(self) -> int:
        """Bits toggling per memory access in the current mode.

        In single-word (DAS/DVAS) modes only the active MSBs of each word are
        fetched; in subword-parallel modes the full word is used because it
        carries N packed operands.
        """
        mode = self.vector_unit.mode
        if mode.parallelism > 1:
            return self.word_bits
        return self.precision_bits


def _element_range(bits: int) -> tuple[int, int]:
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return lo, hi
