"""Trace-compiling execution engine for the SIMD processor.

The cycle-level interpreter (:meth:`repro.simd.processor.SimdProcessor.run`)
dispatches one instruction per Python loop iteration, which makes it the
dominant wall-clock cost of the system-level experiments (Fig. 4, Table II).
This module removes that cost without giving up bit-exactness:

* the program is decomposed into **basic blocks** and scanned for innermost
  **affine loops** -- a region ``[header, branch]`` whose only scalar side
  effect is a single self-incrementing ``ADDI`` induction register and whose
  closing ``BLT``/``BNE`` compares that register against a loop-invariant one;
* because the ISA has no vector-to-scalar transfers, scalar control flow is
  data independent, so the trip count of such a loop is a closed form of the
  registers at loop entry;
* each straight-line **vector trace** (the loop body) is then executed across
  *all* iterations at once: every instruction becomes one numpy operation on
  an ``(iterations, lanes)`` value array, including packed-subword modes
  (parallelism > 1) and the data-dependent zero-operand guard counts.

Memory contents, event counters, opcode histograms, register-file access
counts and the returned :class:`~repro.simd.processor.ExecutionResult` are
bit-identical to the interpreter.  Any program (or loop entry state) the
analysis cannot prove safe -- extra scalar writes, nested branches, aliased
load/store ranges, wrap-around arithmetic, data-dependent trip counts beyond
the watchdog -- simply falls back to the interpreter's dispatch loop, so the
engine accepts every program the interpreter accepts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .isa import (
    Instruction,
    Opcode,
    Program,
    SCALAR_OPCODES,
    VECTOR_ALU_OPCODES,
)
from .processor import (
    ExecutionCounters,
    ExecutionError,
    ExecutionResult,
    SimdProcessor,
    _element_range,
)
from .register_file import _wrap_array, saturate_to_element_range

#: Upper bound on the transient allocation of one vectorised trace, in
#: int64 elements across *all* live value arrays (``iterations x lanes x
#: vector instructions``, ~128 MB); larger loops fall back to the
#: interpreter, which runs in constant memory.
MAX_TRACE_ELEMENTS = 1 << 24

#: Signed 32-bit range of the scalar register file; induction sequences that
#: would wrap are left to the interpreter.
_SCALAR_LO, _SCALAR_HI = -(1 << 31), (1 << 31) - 1

#: Scalar-register-file and vector-register-file accesses the interpreter
#: performs per opcode, as (scalar reads, scalar writes, vector reads,
#: vector writes).  Used to reproduce the register-file access counters in
#: closed form.
_REGISTER_ACCESSES: dict[Opcode, tuple[int, int, int, int]] = {
    Opcode.LI: (0, 1, 0, 0),
    Opcode.ADD: (2, 1, 0, 0),
    Opcode.ADDI: (1, 1, 0, 0),
    Opcode.SUB: (2, 1, 0, 0),
    Opcode.MUL: (2, 1, 0, 0),
    Opcode.BNE: (2, 0, 0, 0),
    Opcode.BLT: (2, 0, 0, 0),
    Opcode.JMP: (0, 0, 0, 0),
    Opcode.NOP: (0, 0, 0, 0),
    Opcode.HALT: (0, 0, 0, 0),
    Opcode.SETPREC: (0, 0, 0, 0),
    Opcode.VLOAD: (1, 0, 0, 1),
    Opcode.VSTORE: (1, 0, 1, 0),
    Opcode.VBCAST: (1, 0, 0, 1),
    Opcode.VMAC: (0, 0, 2, 0),
    Opcode.VMUL: (0, 0, 2, 1),
    Opcode.VADD: (0, 0, 2, 1),
    Opcode.VRELU: (0, 0, 1, 1),
    Opcode.VCLR: (0, 0, 0, 0),
    Opcode.VSTACC: (0, 0, 0, 1),
}

#: Vector registers read / written per opcode (operand indices).
_VECTOR_READS: dict[Opcode, tuple[int, ...]] = {
    Opcode.VSTORE: (0,),
    Opcode.VMAC: (0, 1),
    Opcode.VMUL: (1, 2),
    Opcode.VADD: (1, 2),
    Opcode.VRELU: (1,),
}
_VECTOR_WRITES: dict[Opcode, tuple[int, ...]] = {
    Opcode.VLOAD: (0,),
    Opcode.VBCAST: (0,),
    Opcode.VMUL: (0,),
    Opcode.VADD: (0,),
    Opcode.VRELU: (0,),
    Opcode.VSTACC: (0,),
}

#: Opcodes that may not appear inside a vectorisable loop body (any other
#: control transfer, precision change, or halt makes the body non-straight).
_BODY_FORBIDDEN = {Opcode.JMP, Opcode.HALT, Opcode.SETPREC, Opcode.BNE, Opcode.BLT}

#: Scalar-register-writing opcodes.
_SCALAR_WRITERS = {Opcode.LI, Opcode.ADD, Opcode.ADDI, Opcode.SUB, Opcode.MUL}


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run ``[start, end]`` (inclusive)."""

    start: int
    end: int


@dataclass
class LoopTrace:
    """One analyzable affine loop: a straight-line vector trace plus its
    induction structure and the per-execution counter deltas.

    Attributes
    ----------
    start, end:
        Program-counter range of the loop (``end`` is the closing branch).
    body:
        ``program[start .. end]`` including the branch.
    induction:
        Scalar register advanced by the single ``ADDI rd, rd, step``.
    step:
        Induction increment per iteration (non-zero).
    update_position:
        Body index of the induction ``ADDI`` (reads before it see the
        pre-increment value, reads after it the post-increment value).
    compare:
        The closing branch opcode (``BLT`` or ``BNE``).
    induction_first:
        Whether the induction register is the branch's first operand.
    bound:
        The loop-invariant register the induction is compared against.
    """

    start: int
    end: int
    body: tuple[Instruction, ...]
    induction: int
    step: int
    update_position: int
    compare: Opcode
    induction_first: bool
    bound: int
    # Static per-execution counter deltas (each body instruction runs once
    # per iteration).
    opcode_counts: dict[str, int] = field(default_factory=dict)
    scalar_operations: int = 0
    vector_alu_instructions: int = 0
    load_positions: tuple[int, ...] = ()
    store_positions: tuple[int, ...] = ()
    register_accesses: tuple[int, int, int, int] = (0, 0, 0, 0)
    written_vregs: frozenset[int] = frozenset()


def basic_blocks(program: Program) -> list[BasicBlock]:
    """Decompose ``program`` into basic blocks.

    Leaders are the entry point, every branch target, and every instruction
    following a control transfer; blocks run from one leader to the next (or
    to a control-transfer instruction, which terminates its block).
    """
    if len(program) == 0:
        return []
    leaders = {0}
    for address, instruction in enumerate(program.instructions):
        opcode = instruction.opcode
        if opcode in (Opcode.BNE, Opcode.BLT):
            leaders.add(instruction.operands[2])
            leaders.add(address + 1)
        elif opcode is Opcode.JMP:
            leaders.add(instruction.operands[0])
            leaders.add(address + 1)
        elif opcode is Opcode.HALT:
            leaders.add(address + 1)
    ordered = sorted(leader for leader in leaders if leader < len(program))
    blocks = []
    for index, start in enumerate(ordered):
        end = (ordered[index + 1] if index + 1 < len(ordered) else len(program)) - 1
        blocks.append(BasicBlock(start, end))
    return blocks


def analyze_program(program: Program) -> dict[int, LoopTrace]:
    """Find every vectorisable affine loop; maps header pc -> trace.

    Works over the basic-block decomposition: every control transfer ends a
    block, so a candidate loop is a block whose closing conditional branch
    targets a leader at or before it; the region from that leader to the
    branch is then validated as a straight-line affine trace.
    """
    traces: dict[int, LoopTrace] = {}
    for block in basic_blocks(program):
        instruction = program[block.end]
        if instruction.opcode not in (Opcode.BNE, Opcode.BLT):
            continue
        start = instruction.operands[2]
        if start > block.end:  # forward branch: not a loop
            continue
        trace = _analyze_loop(program, start, block.end)
        if trace is not None:
            traces[start] = trace
    return traces


def _analyze_loop(program: Program, start: int, end: int) -> LoopTrace | None:
    """Validate the candidate loop ``[start, end]``; None if not analyzable."""
    body = tuple(program.instructions[start : end + 1])
    branch = body[-1]

    # -- scalar structure: exactly one self-incrementing ADDI ----------------
    induction: int | None = None
    update_position = -1
    for position, instr in enumerate(body[:-1]):
        opcode = instr.opcode
        if opcode in _BODY_FORBIDDEN:
            return None
        if opcode in _SCALAR_WRITERS:
            destination = instr.operands[0]
            if destination == 0:
                continue  # writes to r0 are architectural no-ops
            if (
                opcode is Opcode.ADDI
                and instr.operands[1] == destination
                and induction is None
            ):
                induction = destination
                update_position = position
                continue
            return None
    if induction is None:
        return None
    step = body[update_position].operands[2]
    if step == 0:
        return None

    # -- closing branch: induction vs loop-invariant register ----------------
    first, second = branch.operands[0], branch.operands[1]
    if first == induction and second != induction:
        induction_first, bound = True, second
    elif second == induction and first != induction:
        induction_first, bound = False, first
    else:
        return None

    # -- vector dataflow: no loop-carried vector-register reads --------------
    written_anywhere = set()
    for instr in body[:-1]:
        for index in _VECTOR_WRITES.get(instr.opcode, ()):
            written_anywhere.add(instr.operands[index])
    written: set[int] = set()
    for instr in body[:-1]:
        opcode = instr.opcode
        for index in _VECTOR_READS.get(opcode, ()):
            register = instr.operands[index]
            if register in written_anywhere and register not in written:
                return None  # loop-carried vector value
        for index in _VECTOR_WRITES.get(opcode, ()):
            written.add(instr.operands[index])

    # -- accumulator structure ------------------------------------------------
    # A VSTACC whose accumulation segment crosses the body start (no VCLR
    # before it) needs the running total of *previous* iterations; that is
    # only computable position-major if every VMAC precedes the VSTACC.
    seen_vclr = False
    vmac_positions = [p for p, i in enumerate(body[:-1]) if i.opcode is Opcode.VMAC]
    for position, instr in enumerate(body[:-1]):
        if instr.opcode is Opcode.VCLR:
            seen_vclr = True
        elif instr.opcode is Opcode.VSTACC and not seen_vclr:
            if any(p > position for p in vmac_positions):
                return None

    # -- static counter deltas ------------------------------------------------
    opcode_counts: dict[str, int] = {}
    scalar_operations = 0
    vector_alu = 0
    loads, stores = [], []
    reads_s = writes_s = reads_v = writes_v = 0
    for position, instr in enumerate(body):
        opcode = instr.opcode
        opcode_counts[opcode.value] = opcode_counts.get(opcode.value, 0) + 1
        if opcode in SCALAR_OPCODES:
            scalar_operations += 1
        if opcode in VECTOR_ALU_OPCODES:
            vector_alu += 1
        if opcode is Opcode.VLOAD:
            loads.append(position)
        elif opcode is Opcode.VSTORE:
            stores.append(position)
        sr, sw, vr, vw = _REGISTER_ACCESSES[opcode]
        reads_s += sr
        writes_s += sw
        reads_v += vr
        writes_v += vw

    return LoopTrace(
        start=start,
        end=end,
        body=body,
        induction=induction,
        step=step,
        update_position=update_position,
        compare=branch.opcode,
        induction_first=induction_first,
        bound=bound,
        opcode_counts=opcode_counts,
        scalar_operations=scalar_operations,
        vector_alu_instructions=vector_alu,
        load_positions=tuple(loads),
        store_positions=tuple(stores),
        register_accesses=(reads_s, writes_s, reads_v, writes_v),
        written_vregs=frozenset(written_anywhere),
    )


def _ceil_div(numerator: int, denominator: int) -> int:
    """Ceiling division for positive denominators."""
    return -(-numerator // denominator)


def _trip_count(trace: LoopTrace, start_value: int, bound_value: int) -> int | None:
    """Number of body executions from entry state, or None if unbounded.

    Iteration ``t`` sees the induction at ``x(t) = start + t*step`` on body
    entry; the branch after iteration ``t`` tests ``x(t+1)``.
    """
    step = trace.step
    if trace.compare is Opcode.BNE:
        delta = bound_value - start_value
        if delta % step != 0:
            return None  # never equal: interpreter watchdog territory
        count = delta // step
        return count if count >= 1 else None
    # BLT
    if trace.induction_first:
        # taken while x(t) < bound
        if step > 0:
            return max(1, _ceil_div(bound_value - start_value, step))
        return 1 if start_value + step >= bound_value else None
    # taken while bound < x(t)
    if step < 0:
        return max(1, _ceil_div(start_value - bound_value, -step))
    return 1 if start_value + step <= bound_value else None


class TraceEngine:
    """Executes programs on a :class:`SimdProcessor` via trace compilation.

    The engine shares the processor's architectural state (registers, memory,
    vector unit) and produces results bit-identical to
    :meth:`SimdProcessor.run`; analyzable affine loops are executed as whole
    vectorised traces, everything else through the interpreter's
    dispatch-table decode.
    """

    def __init__(self, processor: SimdProcessor):
        self.processor = processor

    def run(self, program: Program, *, max_cycles: int = 2_000_000) -> ExecutionResult:
        """Execute ``program`` until HALT (or the cycle watchdog expires)."""
        processor = self.processor
        if len(program) == 0:
            raise ExecutionError("program is empty")
        traces = analyze_program(program)
        disabled: set[int] = set()
        counters = ExecutionCounters()
        pc = 0
        halted = False
        while counters.cycles < max_cycles:
            if not 0 <= pc < len(program):
                raise ExecutionError(f"program counter {pc} out of range")
            if pc in traces and pc not in disabled:
                next_pc = self._execute_trace(traces[pc], counters, max_cycles)
                if next_pc is None:
                    disabled.add(pc)  # interpret this loop for the rest of the run
                else:
                    pc = next_pc
                    continue
            instruction = program[pc]
            counters.cycles += 1
            counters.instructions += 1
            counters.record_opcode(instruction.opcode)
            next_pc = pc + 1
            if instruction.opcode == Opcode.HALT:
                halted = True
                break
            pc = processor._execute(instruction, counters, pc, next_pc)
        if not halted and counters.cycles >= max_cycles:
            raise ExecutionError(f"watchdog expired after {max_cycles} cycles")
        return ExecutionResult(
            counters=counters,
            halted=halted,
            precision_bits=processor.precision_bits,
            parallelism=processor.vector_unit.mode.parallelism,
            lanes=processor.simd_width,
        )

    # -- vectorised trace execution ------------------------------------------

    def _execute_trace(
        self, trace: LoopTrace, counters: ExecutionCounters, max_cycles: int
    ) -> int | None:
        """Run all iterations of ``trace`` at once; None -> use interpreter."""
        processor = self.processor
        scalars = processor.scalar_registers._registers
        start_value = scalars[trace.induction]
        bound_value = scalars[trace.bound]

        iterations = _trip_count(trace, start_value, bound_value)
        if iterations is None:
            return None
        if counters.cycles + iterations * len(trace.body) > max_cycles:
            return None  # would trip the watchdog: interpret instead
        final_value = start_value + iterations * trace.step
        if not (_SCALAR_LO <= min(start_value, final_value)
                and max(start_value, final_value) <= _SCALAR_HI):
            return None  # induction would wrap in the 32-bit register file
        lanes = processor.simd_width
        vector_instructions = (
            trace.vector_alu_instructions
            + len(trace.load_positions)
            + len(trace.store_positions)
        )
        if iterations * lanes * max(1, vector_instructions) > MAX_TRACE_ELEMENTS:
            return None

        plan = self._plan_memory(trace, iterations, start_value)
        if plan is None:
            return None
        addresses = plan

        state = self._evaluate_body(trace, iterations, start_value, addresses)
        if state is None:
            return None
        self._commit(trace, iterations, final_value, counters, state)
        return trace.end + 1

    def _scalar_values(self, trace: LoopTrace, register: int, position: int,
                       iterations: int, start_value: int):
        """Value(s) of ``register`` at body ``position``: int or (n,) array."""
        if register == trace.induction:
            base = start_value + (trace.step if position > trace.update_position else 0)
            return base + trace.step * np.arange(iterations, dtype=np.int64)
        return int(self.processor.scalar_registers._registers[register])

    def _plan_memory(
        self, trace: LoopTrace, iterations: int, start_value: int
    ) -> dict[int, np.ndarray] | None:
        """Per-position address arrays; None on out-of-range or aliasing."""
        memory = self.processor.memory
        addresses: dict[int, np.ndarray] = {}
        load_arrays, store_arrays = [], []
        for position in trace.load_positions + trace.store_positions:
            instr = trace.body[position]
            base = self._scalar_values(trace, instr.operands[1], position,
                                       iterations, start_value)
            addrs = np.asarray(base + instr.operands[2], dtype=np.int64)
            if addrs.ndim == 0:
                addrs = addrs[None]  # constant address
            if int(addrs.min()) < 0 or int(addrs.max()) >= memory.words_per_bank:
                return None  # interpreter will raise the faithful IndexError
            addresses[position] = addrs
            if position in trace.load_positions:
                load_arrays.append(addrs)
            else:
                store_arrays.append(addrs)
        if store_arrays:
            stores = np.concatenate(store_arrays)
            # Distinct-per-instruction is guaranteed (affine, step != 0, or a
            # deduplicated constant); cross-instruction collisions would make
            # scatter order matter.
            if np.unique(stores).size != stores.size:
                return None
            if load_arrays and np.intersect1d(
                np.concatenate(load_arrays), stores
            ).size:
                return None  # loads must observe pre-loop memory only
        return addresses

    def _evaluate_body(
        self,
        trace: LoopTrace,
        iterations: int,
        start_value: int,
        addresses: dict[int, np.ndarray],
    ):
        """Position-major symbolic evaluation of the body over all iterations.

        Returns the pending state to commit: vector-register values, store
        values, accumulator outcome and the data-dependent guard count.
        """
        processor = self.processor
        vectors = processor.vector_registers
        unit = processor.vector_unit
        lanes = processor.simd_width
        element_lo, element_hi = _element_range(processor.word_bits)
        shape = (iterations, lanes)

        values: dict[int, np.ndarray] = {}

        def read(register: int) -> np.ndarray:
            if register not in values:
                # Never written in the body: loop-invariant entry value.
                values[register] = np.broadcast_to(
                    vectors._registers[register], shape
                )
            return values[register]

        def write(register: int, array: np.ndarray) -> None:
            values[register] = _wrap_array(array, vectors.element_bits)

        # Accumulator bookkeeping (see module docstring): products since the
        # last VCLR, whether that segment began at the body start, and every
        # product for the cross-iteration carry chain.
        entry_accumulators = vectors._accumulators
        segment: list[np.ndarray] = []
        crosses_entry = True
        has_vclr = False
        all_products: list[np.ndarray] = []
        guarded_total = 0
        store_values: list[tuple[int, np.ndarray]] = []

        for position, instr in enumerate(trace.body[:-1]):
            opcode = instr.opcode
            operands = instr.operands
            if opcode in SCALAR_OPCODES:
                continue  # induction update / r0 no-ops: handled in closed form
            if opcode is Opcode.VLOAD:
                addrs = addresses[position]
                gathered = processor.memory._storage[:, addrs].T  # (n, lanes)
                if gathered.shape[0] != iterations:  # constant address
                    gathered = np.broadcast_to(gathered[0], shape)
                write(operands[0], gathered)
            elif opcode is Opcode.VSTORE:
                store_values.append((position, read(operands[0])))
            elif opcode is Opcode.VBCAST:
                scalar = self._scalar_values(
                    trace, operands[1], position, iterations, start_value
                )
                column = np.broadcast_to(
                    np.asarray(scalar, dtype=np.int64).reshape(-1, 1), shape
                )
                write(operands[0], column)
            elif opcode is Opcode.VMAC:
                sub_a = unit.unpack(read(operands[0]))  # (n, lanes, N) subwords
                sub_b = unit.unpack(read(operands[1]))
                if unit.guard_zero_operands:
                    guarded_total += int(np.sum((sub_a == 0) | (sub_b == 0)))
                products = (sub_a * sub_b).sum(axis=-1)
                segment.append(products)
                all_products.append(products)
            elif opcode is Opcode.VMUL:
                result = read(operands[1]) * read(operands[2])
                write(operands[0], np.clip(result, element_lo, element_hi))
            elif opcode is Opcode.VADD:
                result = read(operands[1]) + read(operands[2])
                write(operands[0], np.clip(result, element_lo, element_hi))
            elif opcode is Opcode.VRELU:
                write(operands[0], np.maximum(read(operands[1]), 0))
            elif opcode is Opcode.VCLR:
                segment = []
                crosses_entry = False
                has_vclr = True
            elif opcode is Opcode.VSTACC:
                partial = sum(segment) if segment else np.zeros(shape, dtype=np.int64)
                if not crosses_entry:
                    accumulated = partial
                elif not has_vclr and trace.opcode_counts.get(Opcode.VCLR.value, 0):
                    # A VCLR occurs later in the body: only iteration 0 sees
                    # the entry accumulators, later iterations carry in zero.
                    accumulated = partial.copy()
                    accumulated[0] += entry_accumulators
                else:
                    # No VCLR anywhere: the carry chain is a running sum of
                    # the per-iteration totals (analysis guarantees every
                    # VMAC precedes this VSTACC, so partial == total).
                    accumulated = entry_accumulators + np.cumsum(partial, axis=0)
                wrapped = _wrap_array(accumulated, vectors.accumulator_bits)
                write(
                    operands[0],
                    saturate_to_element_range(wrapped, vectors.element_bits),
                )
            elif opcode is not Opcode.NOP:  # pragma: no cover - analysis gate
                return None
        return {
            "values": values,
            "store_values": store_values,
            "segment": segment,
            "crosses_entry": crosses_entry,
            "has_vclr": has_vclr,
            "all_products": all_products,
            "entry_accumulators": entry_accumulators,
            "guarded": guarded_total,
            "addresses": addresses,
        }

    def _commit(
        self,
        trace: LoopTrace,
        iterations: int,
        final_value: int,
        counters: ExecutionCounters,
        state: dict,
    ) -> None:
        """Apply the evaluated trace to the processor and the counters."""
        processor = self.processor
        vectors = processor.vector_registers
        memory = processor.memory
        lanes = processor.simd_width
        body_length = len(trace.body)

        # Memory: scatter stores (addresses proven collision-free).
        for position, values in state["store_values"]:
            addrs = state["addresses"][position]
            if addrs.size == 1:
                memory._storage[:, addrs[0]] = values[-1]
            else:
                memory._storage[:, addrs] = values.T

        # Architectural state: final-iteration vector registers, the
        # accumulator carry-out, and the post-loop induction value.
        for register in trace.written_vregs:
            if register in state["values"]:
                vectors._registers[register] = state["values"][register][-1]
        if state["has_vclr"]:
            final_acc = sum(product[-1] for product in state["segment"])
            if isinstance(final_acc, int):  # empty trailing segment
                final_acc = np.zeros(lanes, dtype=np.int64)
        else:
            final_acc = state["entry_accumulators"] + sum(
                product.sum(axis=0) for product in state["all_products"]
            )
        vectors._accumulators = _wrap_array(
            np.asarray(final_acc, dtype=np.int64), vectors.accumulator_bits
        )
        processor.scalar_registers._registers[trace.induction] = int(final_value)

        # Event counters, in closed form.
        counters.cycles += iterations * body_length
        counters.instructions += iterations * body_length
        counters.scalar_operations += iterations * trace.scalar_operations
        counters.vector_alu_instructions += iterations * trace.vector_alu_instructions
        counters.vector_memory_reads += iterations * len(trace.load_positions)
        counters.vector_memory_writes += iterations * len(trace.store_positions)
        counters.branches_taken += iterations - 1
        histogram = counters.opcode_histogram
        for opcode_value, count in trace.opcode_counts.items():
            histogram[opcode_value] = histogram.get(opcode_value, 0) + iterations * count

        active_bits = processor._memory_active_bits()
        memory.counters.reads += iterations * len(trace.load_positions) * lanes
        memory.counters.read_bits += (
            iterations * len(trace.load_positions) * lanes * active_bits
        )
        memory.counters.writes += iterations * len(trace.store_positions) * lanes
        memory.counters.write_bits += (
            iterations * len(trace.store_positions) * lanes * active_bits
        )

        unit = processor.vector_unit
        mode = unit.mode
        vmacs = trace.opcode_counts.get(Opcode.VMAC.value, 0)
        elementwise = sum(
            trace.opcode_counts.get(op.value, 0)
            for op in (Opcode.VMUL, Opcode.VADD, Opcode.VRELU)
        )
        unit.counters.mac_operations += iterations * vmacs * lanes * mode.parallelism
        unit.counters.mac_cycles += iterations * vmacs
        unit.counters.guarded_macs += state["guarded"]
        unit.counters.alu_operations += iterations * elementwise * lanes

        reads_s, writes_s, reads_v, writes_v = trace.register_accesses
        processor.scalar_registers.reads += iterations * reads_s
        processor.scalar_registers.writes += iterations * writes_s
        vectors.reads += iterations * reads_v
        vectors.writes += iterations * writes_v
