"""Two-pass assembler for the SIMD processor's assembly language.

Syntax example::

    ; 1-D convolution inner loop
        li      r1, 0            ; output index
    loop:
        vclr
        vload   v0, r1, 0
        vbcast  v1, r2
        vmac    v0, v1
        vstacc  v2
        vstore  v2, r1, 64
        addi    r1, r1, 1
        blt     r1, r3, loop
        halt

Comments start with ``;`` or ``#``; labels end with ``:``.  Scalar registers
are ``r0``-``r15``, vector registers ``v0``-``v7``; immediates may be decimal
or ``0x`` hexadecimal.
"""

from __future__ import annotations

from .isa import OPERAND_SIGNATURES, Instruction, Opcode, Program


class AssemblerError(ValueError):
    """Raised for malformed assembly input, with line information."""

    def __init__(self, line_number: int, message: str):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def _parse_register(token: str, prefix: str, line_number: int) -> int:
    token = token.lower()
    if not token.startswith(prefix):
        raise AssemblerError(line_number, f"expected {prefix}-register, got {token!r}")
    try:
        return int(token[len(prefix):])
    except ValueError as exc:
        raise AssemblerError(line_number, f"bad register {token!r}") from exc


def _parse_immediate(token: str, line_number: int) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblerError(line_number, f"bad immediate {token!r}") from exc


def assemble(source: str) -> Program:
    """Assemble ``source`` text into a :class:`~repro.simd.isa.Program`."""
    # First pass: collect labels and the raw instruction tokens.
    labels: dict[str, int] = {}
    pending: list[tuple[int, str, list[str]]] = []
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw_line)
        if not line:
            continue
        while line.split()[0].endswith(":") if line.split() else False:
            label, _, rest = line.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise AssemblerError(line_number, f"bad label {label!r}")
            if label in labels:
                raise AssemblerError(line_number, f"duplicate label {label!r}")
            labels[label] = len(pending)
            line = rest.strip()
            if not line:
                break
        if not line:
            continue
        parts = line.replace(",", " ").split()
        mnemonic, operands = parts[0].lower(), parts[1:]
        pending.append((line_number, mnemonic, operands))

    # Second pass: resolve opcodes, operand kinds and branch targets.
    program = Program(labels=dict(labels))
    for line_number, mnemonic, tokens in pending:
        try:
            opcode = Opcode(mnemonic)
        except ValueError as exc:
            raise AssemblerError(line_number, f"unknown opcode {mnemonic!r}") from exc
        signature = OPERAND_SIGNATURES[opcode]
        if len(tokens) != len(signature):
            raise AssemblerError(
                line_number,
                f"{mnemonic} expects {len(signature)} operands, got {len(tokens)}",
            )
        operands: list[int] = []
        for kind, token in zip(signature, tokens):
            if kind == "r":
                operands.append(_parse_register(token, "r", line_number))
            elif kind == "v":
                operands.append(_parse_register(token, "v", line_number))
            elif kind == "i":
                operands.append(_parse_immediate(token, line_number))
            elif kind == "l":
                if token not in labels:
                    raise AssemblerError(line_number, f"undefined label {token!r}")
                operands.append(labels[token])
            else:  # pragma: no cover - signatures are static
                raise AssemblerError(line_number, f"bad signature kind {kind!r}")
        source_text = f"{mnemonic} " + ", ".join(tokens) if tokens else mnemonic
        try:
            program.instructions.append(
                Instruction(opcode=opcode, operands=tuple(operands), source=source_text)
            )
        except ValueError as exc:
            raise AssemblerError(line_number, str(exc)) from exc
    return program
