"""DVAFS core: power equations, scaling extraction, operating points, scheduling."""

from .operating_point import (
    OperatingPoint,
    operating_point_from_scaling,
    operating_points_from_characterization,
)
from .pareto import TradeoffPoint, dominated_fraction, dynamic_range, energy_at_accuracy, pareto_front
from .power_model import PAPER_TABLE_I, DvafsSystem, PowerSplit, ScalingParameters
from .scaling import (
    EnergyAccuracyPoint,
    MultiplierCharacterization,
    PrecisionProfile,
    characterize_multiplier,
    multiplier_energy_curves,
)
from .scheduler import PrecisionRequirement, PrecisionScheduler, ScheduledTask

__all__ = [
    "OperatingPoint",
    "operating_point_from_scaling",
    "operating_points_from_characterization",
    "TradeoffPoint",
    "dominated_fraction",
    "dynamic_range",
    "energy_at_accuracy",
    "pareto_front",
    "PAPER_TABLE_I",
    "DvafsSystem",
    "PowerSplit",
    "ScalingParameters",
    "EnergyAccuracyPoint",
    "MultiplierCharacterization",
    "PrecisionProfile",
    "characterize_multiplier",
    "multiplier_energy_curves",
    "PrecisionRequirement",
    "PrecisionScheduler",
    "ScheduledTask",
]
