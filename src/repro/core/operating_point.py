"""Operating points of a DVAFS system.

An operating point bundles everything the power-management unit of a DVAFS
system programs at once: precision, subword parallelism, clock frequency and
the supplies of the accuracy-scalable / non-scalable (and memory) domains.
The Envision measurements of Table III are reported exactly in these terms
(mode, f, V, weight/input precision).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..circuit.clock import constant_throughput_frequency
from .power_model import ScalingParameters

if TYPE_CHECKING:  # annotation-only: keeps the multiplier models out of the
    # fingerprint closure of consumers that never execute them (e.g. fig8).
    from .scaling import MultiplierCharacterization


@dataclass(frozen=True)
class OperatingPoint:
    """One configuration of a precision-scalable processor.

    Attributes
    ----------
    precision:
        Active bits per subword.
    parallelism:
        Subwords processed per cycle (N).
    frequency_mhz:
        Clock frequency.
    as_voltage:
        Supply of the accuracy-scalable arithmetic domain (V).
    nas_voltage:
        Supply of the non-accuracy-scalable logic domain (V).
    mem_voltage:
        Supply of the memory domain (V); memories often keep a fixed
        retention-safe supply.
    technique:
        Which scaling technique produced this point (``"DAS"``, ``"DVAS"``,
        ``"DVAFS"`` or ``"DVFS"``).
    """

    precision: int
    parallelism: int
    frequency_mhz: float
    as_voltage: float
    nas_voltage: float
    mem_voltage: float | None = None
    technique: str = "DVAFS"

    def __post_init__(self) -> None:
        if self.precision < 1:
            raise ValueError("precision must be positive")
        if self.parallelism < 1:
            raise ValueError("parallelism must be at least 1")
        if self.frequency_mhz <= 0:
            raise ValueError("frequency_mhz must be positive")
        if self.as_voltage <= 0 or self.nas_voltage <= 0:
            raise ValueError("voltages must be positive")

    @property
    def mode_label(self) -> str:
        """Mode label in the paper's notation, e.g. ``"4x4b"``."""
        return f"{self.parallelism}x{self.precision}b"

    @property
    def throughput_mops(self) -> float:
        """Words processed per second, in millions."""
        return self.frequency_mhz * self.parallelism


def operating_points_from_characterization(
    characterization: MultiplierCharacterization,
) -> dict[str, list[OperatingPoint]]:
    """Build the DAS / DVAS / DVAFS operating-point sets of a characterisation.

    Returns a mapping from technique name to its list of operating points,
    ordered from full precision down, all at constant computational
    throughput (the schedule of Fig. 2a).
    """
    technology = characterization.technology
    nominal = technology.nominal_voltage
    base_frequency = characterization.base_frequency_mhz
    result: dict[str, list[OperatingPoint]] = {"DAS": [], "DVAS": [], "DVAFS": []}
    for precision, profile in sorted(characterization.profiles.items(), reverse=True):
        result["DAS"].append(
            OperatingPoint(
                precision=precision,
                parallelism=1,
                frequency_mhz=base_frequency,
                as_voltage=nominal,
                nas_voltage=nominal,
                technique="DAS",
            )
        )
        result["DVAS"].append(
            OperatingPoint(
                precision=precision,
                parallelism=1,
                frequency_mhz=base_frequency,
                as_voltage=profile.dvas_voltage,
                nas_voltage=nominal,
                technique="DVAS",
            )
        )
        result["DVAFS"].append(
            OperatingPoint(
                precision=precision,
                parallelism=profile.parallelism,
                frequency_mhz=constant_throughput_frequency(
                    base_frequency, profile.parallelism
                ),
                as_voltage=profile.dvafs_as_voltage,
                nas_voltage=profile.dvafs_nas_voltage,
                technique="DVAFS",
            )
        )
    return result


def operating_point_from_scaling(
    scaling: ScalingParameters,
    *,
    base_frequency_mhz: float,
    nominal_voltage: float,
    technique: str = "DVAFS",
    mem_voltage: float | None = None,
) -> OperatingPoint:
    """Derive an operating point from an analytical Table-I row."""
    technique = technique.upper()
    if technique == "DAS":
        return OperatingPoint(
            precision=scaling.precision,
            parallelism=1,
            frequency_mhz=base_frequency_mhz,
            as_voltage=nominal_voltage,
            nas_voltage=nominal_voltage,
            mem_voltage=mem_voltage,
            technique=technique,
        )
    if technique == "DVAS":
        return OperatingPoint(
            precision=scaling.precision,
            parallelism=1,
            frequency_mhz=base_frequency_mhz,
            as_voltage=nominal_voltage / scaling.k2,
            nas_voltage=nominal_voltage,
            mem_voltage=mem_voltage,
            technique=technique,
        )
    if technique == "DVAFS":
        return OperatingPoint(
            precision=scaling.precision,
            parallelism=scaling.parallelism,
            frequency_mhz=base_frequency_mhz / scaling.parallelism,
            as_voltage=nominal_voltage / scaling.k4,
            nas_voltage=nominal_voltage / scaling.k5,
            mem_voltage=mem_voltage,
            technique=technique,
        )
    raise ValueError(f"unknown technique {technique!r}")
