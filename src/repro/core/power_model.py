"""Analytical DAS / DVAS / DVAFS power models (equations 1-3 of the paper).

The paper decomposes a system into an *accuracy-scalable* part (``as``:
multipliers, adders, the vector datapath) and a *non-accuracy-scalable* part
(``nas``: instruction fetch/decode, control, address generation; memories are
tracked separately where relevant).  The three techniques then differ in
which of the run-time knobs -- activity ``alpha``, frequency ``f`` and supply
``V`` -- they modulate when precision is reduced:

========  =========================  ==========================
technique  as-part                    nas-part
========  =========================  ==========================
DAS        alpha / k0                 unchanged
DVAS       alpha / k1, V / k2         unchanged
DVAFS      alpha / k3, f / N, V / k4  f / N, V / k5
========  =========================  ==========================

The ``ScalingParameters`` dataclass carries the per-precision factors (the
rows of Table I); :class:`DvafsSystem` evaluates the equations for a system
described by its as/nas switched capacitances and activities.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.energy import dynamic_power_mw


@dataclass(frozen=True)
class ScalingParameters:
    """Per-precision scaling factors of the D(V)A(F)S power equations.

    Attributes
    ----------
    precision:
        Active number of bits this row describes.
    k0:
        DAS activity reduction factor (per processed word).
    k1:
        DVAS activity reduction factor (identical to ``k0`` in the paper).
    k2:
        DVAS supply-voltage reduction factor of the ``as`` domain.
    k3:
        DVAFS *per-cycle* activity reduction factor of the ``as`` domain
        (smaller than ``k0`` because N subwords share the array each cycle).
    k4:
        DVAFS supply reduction factor of the ``as`` domain.
    k5:
        DVAFS supply reduction factor of the ``nas`` domain (possible because
        the whole system runs at ``f / N``).
    parallelism:
        Subword parallelism N of the DVAFS mode at this precision.
    """

    precision: int
    k0: float
    k1: float
    k2: float
    k3: float
    k4: float
    k5: float
    parallelism: int

    def __post_init__(self) -> None:
        if self.precision < 1:
            raise ValueError("precision must be positive")
        for name in ("k0", "k1", "k2", "k3", "k4", "k5"):
            if getattr(self, name) < 1.0 - 1e-9:
                raise ValueError(f"{name} must be >= 1 (got {getattr(self, name)})")
        if self.parallelism < 1:
            raise ValueError("parallelism must be at least 1")


#: Table I of the paper: scaling parameters extracted by the authors from
#: their 40 nm multiplier.  ``k5`` is not listed in the table; the values
#: here are derived from the nas-domain voltages of Table II (1.1 V at N=1,
#: 0.9 V at N=2, 0.8 V at N=4).  These constants are used as the reference
#: the re-extracted parameters are compared against in EXPERIMENTS.md.
PAPER_TABLE_I: dict[int, ScalingParameters] = {
    4: ScalingParameters(precision=4, k0=12.5, k1=12.5, k2=1.2, k3=3.2, k4=1.53, k5=1.375, parallelism=4),
    8: ScalingParameters(precision=8, k0=3.5, k1=3.5, k2=1.1, k3=1.82, k4=1.27, k5=1.222, parallelism=2),
    12: ScalingParameters(precision=12, k0=1.4, k1=1.4, k2=1.02, k3=1.45, k4=1.02, k5=1.0, parallelism=1),
    16: ScalingParameters(precision=16, k0=1.0, k1=1.0, k2=1.0, k3=1.0, k4=1.0, k5=1.0, parallelism=1),
}


@dataclass(frozen=True)
class PowerSplit:
    """Power of one operating point split into as / nas (and memory) parts."""

    as_mw: float
    nas_mw: float
    mem_mw: float = 0.0

    @property
    def total_mw(self) -> float:
        """Total power in milliwatts."""
        return self.as_mw + self.nas_mw + self.mem_mw

    def fractions(self) -> dict[str, float]:
        """Fractional split per part (0..1 each)."""
        total = self.total_mw
        if total <= 0:
            return {"as": 0.0, "nas": 0.0, "mem": 0.0}
        return {
            "as": self.as_mw / total,
            "nas": self.nas_mw / total,
            "mem": self.mem_mw / total,
        }


@dataclass(frozen=True)
class DvafsSystem:
    """Analytical description of a precision-scalable system.

    Attributes
    ----------
    as_capacitance_pf:
        Effective switched capacitance of the accuracy-scalable logic per
        cycle (pF).
    nas_capacitance_pf:
        Effective switched capacitance of the non-accuracy-scalable logic
        per cycle (pF).
    as_activity, nas_activity:
        Baseline (full-precision) switching activities of the two parts.
    base_frequency_mhz:
        Full-precision clock frequency (e.g. 500 MHz for the multiplier
        study, 200 MHz for Envision).
    nominal_voltage:
        Supply voltage at full precision (V).
    mem_capacitance_pf, mem_activity, mem_voltage:
        Optional memory part with a fixed supply (the SIMD processor's
        memories stay at 1.1 V).
    """

    as_capacitance_pf: float
    nas_capacitance_pf: float
    as_activity: float
    nas_activity: float
    base_frequency_mhz: float
    nominal_voltage: float
    mem_capacitance_pf: float = 0.0
    mem_activity: float = 1.0
    mem_voltage: float | None = None

    def __post_init__(self) -> None:
        if self.base_frequency_mhz <= 0:
            raise ValueError("base_frequency_mhz must be positive")
        if self.nominal_voltage <= 0:
            raise ValueError("nominal_voltage must be positive")

    # -- the three techniques ------------------------------------------------

    def das_power(self, scaling: ScalingParameters) -> PowerSplit:
        """Equation (1): only the as-activity scales; f and V stay nominal."""
        as_mw = dynamic_power_mw(
            self.as_capacitance_pf,
            self.as_activity / scaling.k0,
            self.base_frequency_mhz,
            self.nominal_voltage,
        )
        nas_mw = dynamic_power_mw(
            self.nas_capacitance_pf,
            self.nas_activity,
            self.base_frequency_mhz,
            self.nominal_voltage,
        )
        return PowerSplit(as_mw=as_mw, nas_mw=nas_mw, mem_mw=self._memory_power(self.base_frequency_mhz))

    def dvas_power(self, scaling: ScalingParameters) -> PowerSplit:
        """Equation (2): as-activity and as-voltage scale; nas stays nominal."""
        as_mw = dynamic_power_mw(
            self.as_capacitance_pf,
            self.as_activity / scaling.k1,
            self.base_frequency_mhz,
            self.nominal_voltage / scaling.k2,
        )
        nas_mw = dynamic_power_mw(
            self.nas_capacitance_pf,
            self.nas_activity,
            self.base_frequency_mhz,
            self.nominal_voltage,
        )
        return PowerSplit(as_mw=as_mw, nas_mw=nas_mw, mem_mw=self._memory_power(self.base_frequency_mhz))

    def dvafs_power(self, scaling: ScalingParameters) -> PowerSplit:
        """Equation (3): activity, frequency and both supplies scale."""
        frequency = self.base_frequency_mhz / scaling.parallelism
        as_mw = dynamic_power_mw(
            self.as_capacitance_pf,
            self.as_activity / scaling.k3,
            frequency,
            self.nominal_voltage / scaling.k4,
        )
        nas_mw = dynamic_power_mw(
            self.nas_capacitance_pf,
            self.nas_activity,
            frequency,
            self.nominal_voltage / scaling.k5,
        )
        return PowerSplit(as_mw=as_mw, nas_mw=nas_mw, mem_mw=self._memory_power(frequency))

    def dvfs_power(self, frequency_mhz: float, voltage: float) -> PowerSplit:
        """Classic DVFS reference: whole system scaled, precision untouched."""
        as_mw = dynamic_power_mw(
            self.as_capacitance_pf, self.as_activity, frequency_mhz, voltage
        )
        nas_mw = dynamic_power_mw(
            self.nas_capacitance_pf, self.nas_activity, frequency_mhz, voltage
        )
        return PowerSplit(as_mw=as_mw, nas_mw=nas_mw, mem_mw=self._memory_power(frequency_mhz))

    def _memory_power(self, frequency_mhz: float) -> float:
        if self.mem_capacitance_pf <= 0:
            return 0.0
        voltage = self.mem_voltage if self.mem_voltage is not None else self.nominal_voltage
        return dynamic_power_mw(
            self.mem_capacitance_pf, self.mem_activity, frequency_mhz, voltage
        )

    # -- energy per word at constant throughput ------------------------------

    @property
    def baseline_throughput_mops(self) -> float:
        """Words per second at full precision (one word per cycle)."""
        return self.base_frequency_mhz

    def energy_per_word_pj(self, split: PowerSplit, *, words_per_cycle: int = 1) -> float:
        """Energy per processed word (pJ) for a power split.

        At constant computational throughput the DVAFS modes process
        ``words_per_cycle = N`` words per (slower) cycle, so throughput in
        MOPS equals the baseline frequency for every technique and the
        energy per word is simply ``P / T``.
        """
        if words_per_cycle < 1:
            raise ValueError("words_per_cycle must be at least 1")
        throughput_mops = self.baseline_throughput_mops
        # mW / MOPS = nJ per operation; convert to pJ.
        return split.total_mw / throughput_mops * 1000.0

    def das_energy_per_word_pj(self, scaling: ScalingParameters) -> float:
        """Energy per word of the DAS mode at constant throughput (pJ)."""
        return self.energy_per_word_pj(self.das_power(scaling))

    def dvas_energy_per_word_pj(self, scaling: ScalingParameters) -> float:
        """Energy per word of the DVAS mode at constant throughput (pJ)."""
        return self.energy_per_word_pj(self.dvas_power(scaling))

    def dvafs_energy_per_word_pj(self, scaling: ScalingParameters) -> float:
        """Energy per word of the DVAFS mode at constant throughput (pJ)."""
        return self.energy_per_word_pj(
            self.dvafs_power(scaling), words_per_cycle=scaling.parallelism
        )
