"""Precision scheduling: choosing the DVAFS mode for each task.

Section IV of the paper argues that an energy-optimal accelerator must tune
its precision *per application, per network and per layer*.  The scheduler
here implements that policy: given the precision each task (e.g. a CNN
layer) requires and the operating points the hardware supports, it picks the
lowest-energy mode that still satisfies the requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from .operating_point import OperatingPoint


@dataclass(frozen=True)
class PrecisionRequirement:
    """Precision demand of one task.

    Attributes
    ----------
    name:
        Task identifier (e.g. ``"conv3"``).
    required_bits:
        Minimum number of bits the task needs to meet its quality target;
        for a CNN layer this is ``max(weight_bits, activation_bits)``.
    operations:
        Number of elementary operations (e.g. MACs) the task performs; used
        to weight energy across tasks.
    """

    name: str
    required_bits: int
    operations: float = 1.0

    def __post_init__(self) -> None:
        if self.required_bits < 1:
            raise ValueError("required_bits must be positive")
        if self.operations < 0:
            raise ValueError("operations must be non-negative")


@dataclass(frozen=True)
class ScheduledTask:
    """The operating point selected for one task, with its energy estimate."""

    requirement: PrecisionRequirement
    operating_point: OperatingPoint
    energy_per_operation_pj: float

    @property
    def total_energy_pj(self) -> float:
        """Energy of the whole task (pJ)."""
        return self.energy_per_operation_pj * self.requirement.operations


class PrecisionScheduler:
    """Selects the lowest-energy operating point per precision requirement.

    Parameters
    ----------
    operating_points:
        Modes the hardware supports.
    energy_model:
        Callable mapping an operating point to energy per operation (pJ).
        Both the SIMD processor and the Envision chip provide such a model.
    """

    def __init__(
        self,
        operating_points: Sequence[OperatingPoint],
        energy_model: Callable[[OperatingPoint], float],
    ):
        if not operating_points:
            raise ValueError("at least one operating point is required")
        self._points = list(operating_points)
        self._energy_model = energy_model

    @property
    def operating_points(self) -> list[OperatingPoint]:
        """Available operating points."""
        return list(self._points)

    def feasible_points(self, required_bits: int) -> list[OperatingPoint]:
        """Operating points whose precision satisfies ``required_bits``."""
        return [point for point in self._points if point.precision >= required_bits]

    def select(self, requirement: PrecisionRequirement) -> ScheduledTask:
        """Pick the lowest-energy feasible mode for one requirement.

        Raises
        ------
        ValueError
            If no operating point offers enough precision.
        """
        feasible = self.feasible_points(requirement.required_bits)
        if not feasible:
            best = max(point.precision for point in self._points)
            raise ValueError(
                f"task {requirement.name!r} needs {requirement.required_bits} bits "
                f"but the hardware offers at most {best}"
            )
        best_point = min(feasible, key=self._energy_model)
        return ScheduledTask(
            requirement=requirement,
            operating_point=best_point,
            energy_per_operation_pj=self._energy_model(best_point),
        )

    def schedule(
        self, requirements: Iterable[PrecisionRequirement]
    ) -> list[ScheduledTask]:
        """Schedule every task independently (per-layer DVAFS reconfiguration)."""
        return [self.select(requirement) for requirement in requirements]

    def total_energy_pj(self, requirements: Iterable[PrecisionRequirement]) -> float:
        """Total energy of a schedule (pJ)."""
        return sum(task.total_energy_pj for task in self.schedule(requirements))

    def uniform_precision_energy_pj(
        self, requirements: Iterable[PrecisionRequirement]
    ) -> float:
        """Energy if a single precision had to serve all tasks.

        The single precision is the maximum requirement -- this is the
        baseline a non-layer-adaptive accelerator would pay, and the
        comparison quantifies the benefit of per-layer scaling.
        """
        requirements = list(requirements)
        if not requirements:
            return 0.0
        worst_case = max(req.required_bits for req in requirements)
        energy = 0.0
        for requirement in requirements:
            pinned = PrecisionRequirement(
                name=requirement.name,
                required_bits=worst_case,
                operations=requirement.operations,
            )
            energy += self.select(pinned).total_energy_pj
        return energy
