"""Pareto-front utilities for energy-accuracy trade-off analysis.

The headline result of the paper is that the DVAFS energy-accuracy curve
dominates the other approximate-computing techniques (Fig. 3b).  These
helpers compute Pareto fronts and dominance relations over generic
(accuracy-loss, energy) point sets so the comparison can be made
programmatically in the experiments and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class TradeoffPoint:
    """A point in the energy-accuracy plane.

    Attributes
    ----------
    accuracy_loss:
        Accuracy degradation metric (e.g. RMSE); lower is better.
    energy:
        Relative or absolute energy; lower is better.
    label:
        Free-form identification of the configuration.
    """

    accuracy_loss: float
    energy: float
    label: str = ""

    def dominates(self, other: "TradeoffPoint") -> bool:
        """True if this point is at least as good in both axes and better in one."""
        no_worse = (
            self.accuracy_loss <= other.accuracy_loss and self.energy <= other.energy
        )
        strictly_better = (
            self.accuracy_loss < other.accuracy_loss or self.energy < other.energy
        )
        return no_worse and strictly_better


def pareto_front(points: Iterable[TradeoffPoint]) -> list[TradeoffPoint]:
    """Non-dominated subset of ``points``, sorted by increasing accuracy loss."""
    points = list(points)
    front = [
        point
        for point in points
        if not any(other.dominates(point) for other in points if other is not point)
    ]
    return sorted(front, key=lambda p: (p.accuracy_loss, p.energy))


def dominated_fraction(
    candidate: Iterable[TradeoffPoint], reference: Iterable[TradeoffPoint]
) -> float:
    """Fraction of ``reference`` points dominated by at least one ``candidate`` point.

    Used to quantify how much of the competing techniques' design space the
    DVAFS curve covers.
    """
    candidate = list(candidate)
    reference = list(reference)
    if not reference:
        return 0.0
    dominated = sum(
        1 for ref in reference if any(point.dominates(ref) for point in candidate)
    )
    return dominated / len(reference)


def energy_at_accuracy(
    points: Iterable[TradeoffPoint], max_accuracy_loss: float
) -> float | None:
    """Lowest energy among points meeting an accuracy-loss bound.

    Returns ``None`` if no point satisfies the bound -- e.g. a fixed
    design-time approximate multiplier queried for an accuracy it cannot
    reach.
    """
    feasible = [p.energy for p in points if p.accuracy_loss <= max_accuracy_loss]
    if not feasible:
        return None
    return min(feasible)


def dynamic_range(points: Iterable[TradeoffPoint]) -> float:
    """Ratio between the highest and lowest energy of a curve.

    The paper quotes a 20x dynamic power range for the multiplier and about
    8x for the full SIMD processor when scaling from 16 b to 4 b.
    """
    energies = [p.energy for p in points]
    if not energies:
        raise ValueError("no points given")
    lowest = min(energies)
    if lowest <= 0:
        raise ValueError("energies must be positive")
    return max(energies) / lowest
