"""Extraction of the D(V)A(F)S scaling parameters from structural simulation.

Section III-A of the paper characterises a Booth-encoded Wallace-tree
multiplier by sweeping its precision modes and measuring switching activity,
critical-path slack and the minimum supply voltage at constant throughput;
Table I condenses the result into the ``k`` factors of the power equations.

:func:`characterize_multiplier` repeats that flow on the structural models of
:mod:`repro.arithmetic`: it streams random operands through the DAS/DVAS
multiplier and the subword-parallel DVAFS multiplier at every precision,
collects per-mode activity and critical paths, solves the minimum supplies
with the alpha-power-law delay model, and packages everything both as raw
per-precision profiles (the data behind Fig. 2) and as
:class:`~repro.core.power_model.ScalingParameters` rows (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arithmetic.fixed_point import signed_range
from ..arithmetic.multiplier import BoothWallaceMultiplier
from ..arithmetic.subword import SubwordParallelMultiplier
from ..circuit.technology import TECH_40NM_LP_LVT, Technology
from ..circuit.voltage_scaling import minimum_voltage_for_period
from .power_model import ScalingParameters


@dataclass(frozen=True)
class PrecisionProfile:
    """Raw characterisation data of one precision mode.

    All activities are weighted gate-equivalent toggles; voltages are the
    minimum supplies meeting timing at constant computational throughput.
    """

    precision: int
    parallelism: int
    frequency_mhz: float
    das_activity_per_word: float
    dvafs_activity_per_cycle: float
    dvafs_activity_per_word: float
    das_critical_path_levels: float
    dvafs_critical_path_levels: float
    das_slack_ns: float
    dvafs_slack_ns: float
    dvas_voltage: float
    dvafs_as_voltage: float
    dvafs_nas_voltage: float


@dataclass
class MultiplierCharacterization:
    """Complete characterisation of the precision-scalable multiplier.

    Attributes
    ----------
    profiles:
        Per-precision raw data, keyed by precision.
    reference_precision:
        The full-precision mode all factors are normalised to.
    reference_das_activity:
        Activity per word of the plain (non-reconfigurable) multiplier at
        full precision.
    reference_dvafs_activity:
        Per-cycle activity of the reconfigurable multiplier at full precision.
    baseline_energy_per_word_pj:
        Energy per word of the plain full-precision multiplier at nominal
        supply (the 2.16 pJ/word anchor of the paper).
    technology:
        Technology corner used for the characterisation.
    base_frequency_mhz:
        Full-precision clock frequency (500 MHz in the paper).
    """

    profiles: dict[int, PrecisionProfile]
    reference_precision: int
    reference_das_activity: float
    reference_dvafs_activity: float
    baseline_energy_per_word_pj: float
    technology: Technology
    base_frequency_mhz: float
    reconfiguration_overhead: float = 0.21
    extra: dict[str, float] = field(default_factory=dict)

    def scaling_parameters(self) -> dict[int, ScalingParameters]:
        """Table I: per-precision k factors and subword parallelism."""
        nominal = self.technology.nominal_voltage
        rows: dict[int, ScalingParameters] = {}
        for precision, profile in sorted(self.profiles.items()):
            k0 = self.reference_das_activity / profile.das_activity_per_word
            k3 = self.reference_dvafs_activity / profile.dvafs_activity_per_cycle
            rows[precision] = ScalingParameters(
                precision=precision,
                k0=max(1.0, k0),
                k1=max(1.0, k0),
                k2=max(1.0, nominal / profile.dvas_voltage),
                k3=max(1.0, k3),
                k4=max(1.0, nominal / profile.dvafs_as_voltage),
                k5=max(1.0, nominal / profile.dvafs_nas_voltage),
                parallelism=profile.parallelism,
            )
        return rows

    def relative_activity(self, technique: str) -> dict[int, float]:
        """Relative per-cycle activity per precision (Fig. 2d).

        ``technique`` is ``"das"``/``"dvas"`` (identical activity) or
        ``"dvafs"``.
        """
        technique = technique.lower()
        result = {}
        for precision, profile in sorted(self.profiles.items()):
            if technique in ("das", "dvas"):
                result[precision] = profile.das_activity_per_word / self.reference_das_activity
            elif technique == "dvafs":
                result[precision] = (
                    profile.dvafs_activity_per_cycle / self.reference_dvafs_activity
                )
            else:
                raise ValueError(f"unknown technique {technique!r}")
        return result


def _random_operands(
    rng: np.random.Generator, width: int, count: int
) -> tuple[list[int], list[int]]:
    lo, hi = signed_range(width)
    xs = rng.integers(lo, hi + 1, size=count).tolist()
    ys = rng.integers(lo, hi + 1, size=count).tolist()
    return [int(v) for v in xs], [int(v) for v in ys]


def characterize_multiplier(
    width: int = 16,
    precisions: tuple[int, ...] = (16, 12, 8, 4),
    *,
    base_frequency_mhz: float = 500.0,
    technology: Technology = TECH_40NM_LP_LVT,
    samples: int = 400,
    seed: int = 2017,
    reconfiguration_overhead: float = 0.21,
    rounding: bool = False,
    batch: bool = True,
) -> MultiplierCharacterization:
    """Characterise the DAS/DVAS and DVAFS multipliers across precisions.

    Parameters
    ----------
    width:
        Physical multiplier width (16 in the paper).
    precisions:
        Precision modes to characterise; must include ``width`` itself (the
        normalisation reference).
    base_frequency_mhz:
        Full-precision frequency; constant throughput is
        ``width``-independent (500 MOPS in the paper).
    samples:
        Number of random multiplications per mode used for activity
        estimation.
    seed:
        Seed of the operand generator (results are deterministic).
    reconfiguration_overhead:
        Energy overhead fraction of the subword-parallel datapath.
    rounding:
        Gate operands by rounding instead of truncation (ablation knob).
    batch:
        Evaluate the operand streams with the vectorised bit-plane engine
        (:mod:`repro.arithmetic.batch`); ``False`` forces the scalar
        golden-reference walk.  Both paths produce bit-identical activity.
    """
    if width not in precisions:
        raise ValueError("precisions must include the full width (reference mode)")
    if samples < 2:
        raise ValueError("samples must be at least 2")

    rng = np.random.default_rng(seed)
    base_period_ns = 1000.0 / base_frequency_mhz
    nominal = technology.nominal_voltage

    # Reference: plain, non-reconfigurable multiplier at full precision.
    reference = BoothWallaceMultiplier(width, technology=technology, rounding=rounding)
    xs, ys = _random_operands(rng, width, samples)
    reference.multiply_stream(xs, ys, batch=batch)
    reference_das_activity = reference.activity.toggles_per_word
    baseline_energy = reference.activity.energy_per_word_pj(technology, nominal)

    # Reference per-cycle activity of the reconfigurable (DVAFS) multiplier.
    dvafs_reference = SubwordParallelMultiplier(
        width,
        technology=technology,
        reconfiguration_overhead=reconfiguration_overhead,
        rounding=rounding,
    )
    dvafs_reference.set_precision(width)
    dvafs_reference.multiply_stream(xs, ys, batch=batch)
    reference_dvafs_cycles = samples / dvafs_reference.mode.parallelism
    reference_dvafs_activity = (
        dvafs_reference.activity.total_weighted_toggles / reference_dvafs_cycles
    )

    # The nas parts of a DVAFS system share the clock but not the precision
    # scaling; their pipeline depth is set by the full-precision path.
    nas_logic_levels = dvafs_reference.critical_path_levels()

    profiles: dict[int, PrecisionProfile] = {}
    for precision in sorted(set(precisions), reverse=True):
        # --- DAS / DVAS: same hardware, gated precision, constant frequency.
        das = BoothWallaceMultiplier(width, technology=technology, rounding=rounding)
        das.set_precision(precision)
        px, py = _random_operands(rng, width, samples)
        das.multiply_stream(px, py, batch=batch)
        das_activity = das.activity.toggles_per_word
        das_levels = das.critical_path_levels()
        das_path = das.critical_path()
        das_slack = das_path.positive_slack_ns(nominal, base_period_ns)
        dvas_voltage = minimum_voltage_for_period(technology, das_levels, base_period_ns)

        # --- DVAFS: subword-parallel hardware at constant throughput.
        dvafs = SubwordParallelMultiplier(
            width,
            technology=technology,
            reconfiguration_overhead=reconfiguration_overhead,
            rounding=rounding,
        )
        mode = dvafs.set_precision(precision)
        lo, hi = signed_range(mode.subword_bits)
        sub_x = rng.integers(lo, hi + 1, size=samples).tolist()
        sub_y = rng.integers(lo, hi + 1, size=samples).tolist()
        usable = samples - (samples % mode.parallelism)
        dvafs.multiply_stream(
            [int(v) for v in sub_x[:usable]], [int(v) for v in sub_y[:usable]],
            batch=batch,
        )
        cycles = usable / mode.parallelism
        dvafs_activity_cycle = dvafs.activity.total_weighted_toggles / cycles
        dvafs_activity_word = dvafs.activity.total_weighted_toggles / usable

        parallelism = mode.parallelism
        frequency = base_frequency_mhz / parallelism
        scaled_period_ns = base_period_ns * parallelism
        dvafs_levels = dvafs.critical_path_levels()
        dvafs_path = dvafs.critical_path()
        dvafs_slack = dvafs_path.positive_slack_ns(nominal, scaled_period_ns)
        dvafs_as_voltage = minimum_voltage_for_period(
            technology, dvafs_levels, scaled_period_ns
        )
        dvafs_nas_voltage = minimum_voltage_for_period(
            technology, nas_logic_levels, scaled_period_ns
        )

        profiles[precision] = PrecisionProfile(
            precision=precision,
            parallelism=parallelism,
            frequency_mhz=frequency,
            das_activity_per_word=das_activity,
            dvafs_activity_per_cycle=dvafs_activity_cycle,
            dvafs_activity_per_word=dvafs_activity_word,
            das_critical_path_levels=das_levels,
            dvafs_critical_path_levels=dvafs_levels,
            das_slack_ns=das_slack,
            dvafs_slack_ns=dvafs_slack,
            dvas_voltage=dvas_voltage,
            dvafs_as_voltage=dvafs_as_voltage,
            dvafs_nas_voltage=dvafs_nas_voltage,
        )

    return MultiplierCharacterization(
        profiles=profiles,
        reference_precision=width,
        reference_das_activity=reference_das_activity,
        reference_dvafs_activity=reference_dvafs_activity,
        baseline_energy_per_word_pj=baseline_energy,
        technology=technology,
        base_frequency_mhz=base_frequency_mhz,
        reconfiguration_overhead=reconfiguration_overhead,
    )


def characterization_artifact(*, samples: int, seed: int) -> MultiplierCharacterization:
    """Artifact producer: the default 16-bit characterisation at (samples, seed).

    This is the shared intermediate behind Table I, Fig. 2 and Fig. 3; the
    artifact graph (:mod:`repro.runner.artifacts`) stores it under a content
    address that embeds this module's import-closure fingerprint, so editing
    the multiplier model invalidates exactly this artifact and its consumers.
    """
    return characterize_multiplier(samples=samples, seed=seed)


def resolve_characterization(
    *,
    samples: int,
    seed: int,
    characterization: MultiplierCharacterization | None = None,
) -> MultiplierCharacterization:
    """The one resolver behind every driver-level characterisation lookup.

    A pre-built object wins; otherwise the characterisation is loaded from
    the active artifact store (populated once per cold ``run all`` by the
    scheduler's artifact wave) or computed inline when no store is active --
    bit-identical either way.
    """
    if characterization is not None:
        return characterization
    from ..runner.artifacts import resolve_artifact

    return resolve_artifact(
        "multiplier_characterization",
        {"samples": samples, "seed": seed},
        producer=characterization_artifact,
    )


@dataclass(frozen=True)
class EnergyAccuracyPoint:
    """One point of the multiplier energy-accuracy trade-off (Fig. 3a)."""

    technique: str
    precision: int
    parallelism: int
    relative_energy: float
    energy_per_word_pj: float
    voltage_as: float
    voltage_nas: float
    frequency_mhz: float


def multiplier_energy_curves(
    characterization: MultiplierCharacterization,
) -> list[EnergyAccuracyPoint]:
    """Energy-per-word curves of DAS, DVAS and DVAFS, normalised to 16 b.

    The normalisation reference is the plain, non-reconfigurable multiplier
    at full precision and nominal supply (2.16 pJ/word in the paper); the
    DVAFS curve includes its reconfiguration overhead, which is why its full
    precision point sits above 1.0 (21 % in the paper).
    """
    technology = characterization.technology
    nominal = technology.nominal_voltage
    reference_activity = characterization.reference_das_activity
    reference_energy = characterization.baseline_energy_per_word_pj
    points: list[EnergyAccuracyPoint] = []
    for precision, profile in sorted(characterization.profiles.items(), reverse=True):
        energy_scale = reference_energy / reference_activity

        das_energy = profile.das_activity_per_word * energy_scale
        points.append(
            EnergyAccuracyPoint(
                technique="DAS",
                precision=precision,
                parallelism=1,
                relative_energy=das_energy / reference_energy,
                energy_per_word_pj=das_energy,
                voltage_as=nominal,
                voltage_nas=nominal,
                frequency_mhz=characterization.base_frequency_mhz,
            )
        )

        dvas_energy = (
            profile.das_activity_per_word
            * energy_scale
            * (profile.dvas_voltage / nominal) ** 2
        )
        points.append(
            EnergyAccuracyPoint(
                technique="DVAS",
                precision=precision,
                parallelism=1,
                relative_energy=dvas_energy / reference_energy,
                energy_per_word_pj=dvas_energy,
                voltage_as=profile.dvas_voltage,
                voltage_nas=nominal,
                frequency_mhz=characterization.base_frequency_mhz,
            )
        )

        dvafs_energy = (
            profile.dvafs_activity_per_word
            * energy_scale
            * (profile.dvafs_as_voltage / nominal) ** 2
        )
        points.append(
            EnergyAccuracyPoint(
                technique="DVAFS",
                precision=precision,
                parallelism=profile.parallelism,
                relative_energy=dvafs_energy / reference_energy,
                energy_per_word_pj=dvafs_energy,
                voltage_as=profile.dvafs_as_voltage,
                voltage_nas=profile.dvafs_nas_voltage,
                frequency_mhz=profile.frequency_mhz,
            )
        )
    return points
