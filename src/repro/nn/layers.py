"""CNN layers with fixed-point-aware forward passes and workload statistics.

The layers implement equation (4) of the paper (convolution), the ReLU
non-linearity, max pooling and the fully-connected classifier, all in numpy.
Every layer can run in floating point or with its weights/activations
quantised to arbitrary bit widths, and reports the statistics the hardware
models need: MAC counts, parameter counts, weight sparsity and the sparsity
of the activations that flowed through it.

Data layout is ``(channels, height, width)`` for feature maps and
``(filters, channels, k, k)`` for convolution weights; batches add a leading
dimension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .quantization import QuantizationConfig, quantize, quantize_per_sample


@dataclass
class LayerStatistics:
    """Workload statistics gathered during forward passes."""

    activations_seen: int = 0
    zero_activations: int = 0

    @property
    def input_sparsity(self) -> float:
        """Fraction of zero input activations observed so far."""
        if self.activations_seen == 0:
            return 0.0
        return self.zero_activations / self.activations_seen

    def observe(self, tensor: np.ndarray) -> None:
        """Record sparsity statistics of an input tensor."""
        self.activations_seen += tensor.size
        self.zero_activations += int(np.count_nonzero(tensor == 0))


class Layer:
    """Base class of all layers."""

    name: str = "layer"

    def forward(self, inputs: np.ndarray, config: QuantizationConfig | None = None) -> np.ndarray:
        """Run the layer on a single sample (no batch dimension)."""
        raise NotImplementedError

    def forward_batch(
        self, inputs: np.ndarray, config: QuantizationConfig | None = None
    ) -> np.ndarray:
        """Run the layer on a batch ``(n, *sample_shape)`` of samples.

        Layers override this with a fully vectorised implementation; the
        default falls back to stacking per-sample forward passes.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        return np.stack([self.forward(sample, config) for sample in inputs])

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape of the layer output for a given input shape."""
        raise NotImplementedError

    def macs(self, input_shape: tuple[int, ...]) -> int:
        """Multiply-accumulate operations per sample."""
        return 0

    def parameter_count(self) -> int:
        """Number of learned parameters."""
        return 0

    def weight_sparsity(self) -> float:
        """Fraction of zero-valued weights."""
        return 0.0

    @property
    def has_weights(self) -> bool:
        """Whether the layer carries learned parameters."""
        return self.parameter_count() > 0


class Conv2D(Layer):
    """2-D convolution layer (equation (4) of the paper).

    Parameters
    ----------
    in_channels, out_channels:
        Feature-map counts C and F.
    kernel_size:
        Filter size K (square filters).
    stride:
        Stride S.
    padding:
        Symmetric zero padding added to height and width.
    name:
        Layer name used in reports (e.g. ``"conv1"``).
    rng:
        Random generator for weight initialisation.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        name: str = "conv",
        rng: np.random.Generator | None = None,
    ):
        if min(in_channels, out_channels, kernel_size, stride, groups) < 1:
            raise ValueError("conv dimensions must be positive")
        if padding < 0:
            raise ValueError("padding must be non-negative")
        if in_channels % groups or out_channels % groups:
            raise ValueError("groups must divide both channel counts")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.name = name
        rng = rng or np.random.default_rng(0)
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        self.weights = rng.normal(
            0.0,
            np.sqrt(2.0 / fan_in),
            size=(out_channels, in_channels // groups, kernel_size, kernel_size),
        )
        self.bias = np.zeros(out_channels)
        self.statistics = LayerStatistics()

    # -- structure -----------------------------------------------------------

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        channels, height, width = input_shape
        if channels != self.in_channels:
            raise ValueError(
                f"{self.name}: expected {self.in_channels} input channels, got {channels}"
            )
        out_h = (height + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (width + 2 * self.padding - self.kernel_size) // self.stride + 1
        if out_h < 1 or out_w < 1:
            raise ValueError(f"{self.name}: input {input_shape} too small for the kernel")
        return (self.out_channels, out_h, out_w)

    def macs(self, input_shape: tuple[int, ...]) -> int:
        _, out_h, out_w = self.output_shape(input_shape)
        return (
            self.out_channels
            * out_h
            * out_w
            * (self.in_channels // self.groups)
            * self.kernel_size
            * self.kernel_size
        )

    def parameter_count(self) -> int:
        return self.weights.size + self.bias.size

    def weight_sparsity(self) -> float:
        return float(np.count_nonzero(self.weights == 0) / self.weights.size)

    # -- behaviour ------------------------------------------------------------

    def _im2col(self, padded: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
        channels = padded.shape[0]
        k = self.kernel_size
        columns = np.empty((out_h * out_w, channels * k * k))
        index = 0
        for row in range(out_h):
            top = row * self.stride
            for col in range(out_w):
                left = col * self.stride
                patch = padded[:, top : top + k, left : left + k]
                columns[index] = patch.reshape(-1)
                index += 1
        return columns

    def forward(self, inputs: np.ndarray, config: QuantizationConfig | None = None) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3:
            raise ValueError(f"{self.name}: expected a (C, H, W) tensor")
        config = config or QuantizationConfig()
        self.statistics.observe(inputs)

        activations = quantize(inputs, config.activation_bits)
        weights = quantize(self.weights, config.weight_bits)

        out_channels, out_h, out_w = self.output_shape(inputs.shape)
        if self.padding:
            padded = np.pad(
                activations,
                ((0, 0), (self.padding, self.padding), (self.padding, self.padding)),
            )
        else:
            padded = activations

        group_in = self.in_channels // self.groups
        group_out = self.out_channels // self.groups
        output = np.empty((out_channels, out_h, out_w))
        for group in range(self.groups):
            channels = padded[group * group_in : (group + 1) * group_in]
            columns = self._im2col(channels, out_h, out_w)
            kernel_matrix = weights[group * group_out : (group + 1) * group_out].reshape(
                group_out, -1
            )
            result = columns @ kernel_matrix.T + self.bias[group * group_out : (group + 1) * group_out]
            output[group * group_out : (group + 1) * group_out] = result.T.reshape(
                group_out, out_h, out_w
            )
        return output

    def forward_batch(
        self, inputs: np.ndarray, config: QuantizationConfig | None = None
    ) -> np.ndarray:
        """Vectorised convolution of a ``(n, C, H, W)`` batch.

        All window extraction happens through a strided view and every
        (sample, output position, filter) product is computed in one
        tensor contraction per group, which is how the batch datapath keeps
        the figure/table reproductions off the per-sample Python loop.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 4:
            raise ValueError(f"{self.name}: expected a (n, C, H, W) batch")
        config = config or QuantizationConfig()
        self.statistics.observe(inputs)

        activations = quantize_per_sample(inputs, config.activation_bits)
        weights = quantize(self.weights, config.weight_bits)

        out_channels, out_h, out_w = self.output_shape(inputs.shape[1:])
        if self.padding:
            pad = self.padding
            padded = np.pad(activations, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        else:
            padded = activations

        k = self.kernel_size
        windows = np.lib.stride_tricks.sliding_window_view(padded, (k, k), axis=(2, 3))
        windows = windows[:, :, :: self.stride, :: self.stride][:, :, :out_h, :out_w]

        group_in = self.in_channels // self.groups
        group_out = self.out_channels // self.groups
        output = np.empty((inputs.shape[0], out_channels, out_h, out_w))
        for group in range(self.groups):
            group_windows = windows[:, group * group_in : (group + 1) * group_in]
            group_weights = weights[group * group_out : (group + 1) * group_out]
            result = np.einsum(
                "ncxykl,fckl->nfxy", group_windows, group_weights, optimize=True
            )
            output[:, group * group_out : (group + 1) * group_out] = (
                result + self.bias[group * group_out : (group + 1) * group_out][:, None, None]
            )
        return output


class ReLU(Layer):
    """Rectified linear unit, ``f(u) = max(0, u)``."""

    def __init__(self, name: str = "relu"):
        self.name = name
        self.statistics = LayerStatistics()

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def forward(self, inputs: np.ndarray, config: QuantizationConfig | None = None) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        self.statistics.observe(inputs)
        return np.maximum(inputs, 0.0)

    def forward_batch(
        self, inputs: np.ndarray, config: QuantizationConfig | None = None
    ) -> np.ndarray:
        return self.forward(inputs, config)


class MaxPool2D(Layer):
    """Max pooling over non-overlapping ``size x size`` windows."""

    def __init__(self, size: int = 2, *, name: str = "pool"):
        if size < 1:
            raise ValueError("pool size must be positive")
        self.size = size
        self.name = name
        self.statistics = LayerStatistics()

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        channels, height, width = input_shape
        return (channels, height // self.size, width // self.size)

    def forward(self, inputs: np.ndarray, config: QuantizationConfig | None = None) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3:
            raise ValueError(f"{self.name}: expected a (C, H, W) tensor")
        self.statistics.observe(inputs)
        channels, height, width = inputs.shape
        out_h, out_w = height // self.size, width // self.size
        trimmed = inputs[:, : out_h * self.size, : out_w * self.size]
        reshaped = trimmed.reshape(channels, out_h, self.size, out_w, self.size)
        return reshaped.max(axis=(2, 4))

    def forward_batch(
        self, inputs: np.ndarray, config: QuantizationConfig | None = None
    ) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 4:
            raise ValueError(f"{self.name}: expected a (n, C, H, W) batch")
        self.statistics.observe(inputs)
        count, channels, height, width = inputs.shape
        out_h, out_w = height // self.size, width // self.size
        trimmed = inputs[:, :, : out_h * self.size, : out_w * self.size]
        reshaped = trimmed.reshape(count, channels, out_h, self.size, out_w, self.size)
        return reshaped.max(axis=(3, 5))


class Flatten(Layer):
    """Flatten a feature map into a vector for the fully-connected stage."""

    def __init__(self, name: str = "flatten"):
        self.name = name

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        size = 1
        for dimension in input_shape:
            size *= dimension
        return (size,)

    def forward(self, inputs: np.ndarray, config: QuantizationConfig | None = None) -> np.ndarray:
        return np.asarray(inputs, dtype=np.float64).reshape(-1)

    def forward_batch(
        self, inputs: np.ndarray, config: QuantizationConfig | None = None
    ) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        features = int(np.prod(inputs.shape[1:], dtype=np.int64))
        return inputs.reshape(inputs.shape[0], features)


class FullyConnected(Layer):
    """Fully-connected (dense) layer, the classifier stage of the CNN."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        name: str = "fc",
        rng: np.random.Generator | None = None,
    ):
        if min(in_features, out_features) < 1:
            raise ValueError("feature counts must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.name = name
        rng = rng or np.random.default_rng(0)
        self.weights = rng.normal(0.0, np.sqrt(2.0 / in_features), size=(out_features, in_features))
        self.bias = np.zeros(out_features)
        self.statistics = LayerStatistics()

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        (features,) = input_shape
        if features != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} inputs, got {features}"
            )
        return (self.out_features,)

    def macs(self, input_shape: tuple[int, ...]) -> int:
        return self.in_features * self.out_features

    def parameter_count(self) -> int:
        return self.weights.size + self.bias.size

    def weight_sparsity(self) -> float:
        return float(np.count_nonzero(self.weights == 0) / self.weights.size)

    def forward(self, inputs: np.ndarray, config: QuantizationConfig | None = None) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 1:
            raise ValueError(f"{self.name}: expected a flat vector")
        config = config or QuantizationConfig()
        self.statistics.observe(inputs)
        activations = quantize(inputs, config.activation_bits)
        weights = quantize(self.weights, config.weight_bits)
        return weights @ activations + self.bias

    def forward_batch(
        self, inputs: np.ndarray, config: QuantizationConfig | None = None
    ) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2:
            raise ValueError(f"{self.name}: expected a (n, features) batch")
        if inputs.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} inputs, got {inputs.shape[1]}"
            )
        config = config or QuantizationConfig()
        self.statistics.observe(inputs)
        activations = quantize_per_sample(inputs, config.activation_bits)
        weights = quantize(self.weights, config.weight_bits)
        return activations @ weights.T + self.bias
