"""Synthetic datasets standing in for MNIST / ImageNet / LFW.

The original benchmarks are not available offline, so the quantisation and
scheduling experiments run on procedurally generated data:

* :func:`synthetic_digits` renders noisy, randomly shifted 7-segment-style
  digit glyphs -- a classification task of the same flavour and difficulty
  class as MNIST, solvable by a LeNet-style network trained from scratch.
* :func:`synthetic_natural_images` generates class-conditional coloured blob
  images used as inputs for the AlexNet / VGG16 relative-accuracy proxies.

Both are deterministic given their seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Seven-segment encoding of the digits 0-9: segments are
#: (top, top-left, top-right, middle, bottom-left, bottom-right, bottom).
_SEGMENTS = {
    0: (1, 1, 1, 0, 1, 1, 1),
    1: (0, 0, 1, 0, 0, 1, 0),
    2: (1, 0, 1, 1, 1, 0, 1),
    3: (1, 0, 1, 1, 0, 1, 1),
    4: (0, 1, 1, 1, 0, 1, 0),
    5: (1, 1, 0, 1, 0, 1, 1),
    6: (1, 1, 0, 1, 1, 1, 1),
    7: (1, 0, 1, 0, 0, 1, 0),
    8: (1, 1, 1, 1, 1, 1, 1),
    9: (1, 1, 1, 1, 0, 1, 1),
}


@dataclass(frozen=True)
class Dataset:
    """A labelled dataset split into train and test partitions."""

    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray

    @property
    def input_shape(self) -> tuple[int, ...]:
        """Shape of a single sample."""
        return tuple(self.train_images.shape[1:])

    @property
    def num_classes(self) -> int:
        """Number of distinct labels."""
        return int(max(self.train_labels.max(), self.test_labels.max())) + 1


def _render_digit(digit: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Render one noisy, randomly shifted digit glyph on a ``size x size`` canvas."""
    glyph_h, glyph_w = size * 3 // 4, size // 2
    thickness = max(1, size // 10)
    canvas = np.zeros((size, size))
    top = (size - glyph_h) // 2 + rng.integers(-size // 10, size // 10 + 1)
    left = (size - glyph_w) // 2 + rng.integers(-size // 10, size // 10 + 1)
    top = int(np.clip(top, 0, size - glyph_h))
    left = int(np.clip(left, 0, size - glyph_w))

    segments = _SEGMENTS[digit]
    mid = top + glyph_h // 2
    bottom = top + glyph_h - thickness
    right = left + glyph_w - thickness
    strokes = {
        0: (slice(top, top + thickness), slice(left, left + glyph_w)),
        1: (slice(top, mid), slice(left, left + thickness)),
        2: (slice(top, mid), slice(right, right + thickness)),
        3: (slice(mid, mid + thickness), slice(left, left + glyph_w)),
        4: (slice(mid, bottom + thickness), slice(left, left + thickness)),
        5: (slice(mid, bottom + thickness), slice(right, right + thickness)),
        6: (slice(bottom, bottom + thickness), slice(left, left + glyph_w)),
    }
    for index, active in enumerate(segments):
        if active:
            rows, cols = strokes[index]
            canvas[rows, cols] = 1.0

    canvas += rng.normal(0.0, 0.15, size=canvas.shape)
    return np.clip(canvas, 0.0, 1.0)


def synthetic_digits(
    *,
    train_samples: int = 1000,
    test_samples: int = 200,
    size: int = 28,
    seed: int = 2017,
) -> Dataset:
    """Procedurally generated digit-classification dataset (MNIST stand-in)."""
    if size < 12:
        raise ValueError("size must be at least 12")
    rng = np.random.default_rng(seed)

    def generate(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, 10, size=count)
        images = np.stack([_render_digit(int(label), size, rng) for label in labels])
        return images[:, None, :, :], labels

    train_images, train_labels = generate(train_samples)
    test_images, test_labels = generate(test_samples)
    return Dataset(
        train_images=train_images,
        train_labels=train_labels,
        test_images=test_images,
        test_labels=test_labels,
    )


def synthetic_natural_images(
    *,
    samples: int = 32,
    size: int = 64,
    channels: int = 3,
    num_classes: int = 10,
    seed: int = 2017,
) -> Dataset:
    """Class-conditional coloured blob images (ImageNet/LFW stand-in).

    Each class has a characteristic set of blob locations and colours, so a
    feature-extracting network produces class-dependent outputs and the
    top-1-agreement relative-accuracy proxy is meaningful.
    """
    if size < 16:
        raise ValueError("size must be at least 16")
    rng = np.random.default_rng(seed)
    class_blobs = rng.uniform(0.2, 0.8, size=(num_classes, 3, 2))
    class_colors = rng.uniform(0.2, 1.0, size=(num_classes, 3, channels))

    ys, xs = np.mgrid[0:size, 0:size] / size

    def generate(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        images = np.zeros((count, channels, size, size))
        for index, label in enumerate(labels):
            for blob in range(3):
                cy, cx = class_blobs[label, blob]
                cy += rng.normal(0, 0.05)
                cx += rng.normal(0, 0.05)
                radius = 0.12 + rng.uniform(-0.03, 0.03)
                mask = np.exp(-(((ys - cy) ** 2 + (xs - cx) ** 2) / (2 * radius**2)))
                for channel in range(channels):
                    images[index, channel] += class_colors[label, blob, channel] * mask
            images[index] += rng.normal(0.0, 0.05, size=(channels, size, size))
        return np.clip(images, 0.0, 1.0), labels

    train_images, train_labels = generate(samples)
    test_images, test_labels = generate(max(1, samples // 4))
    return Dataset(
        train_images=train_images,
        train_labels=train_labels,
        test_images=test_images,
        test_labels=test_labels,
    )
