"""Numpy SGD training for the CNN substrate.

The LeNet-5 quantisation study needs a *trained* network (quantisation
tolerance depends on decision margins, which random weights do not have), and
the original MNIST data is not available offline -- so the trainer here
learns the synthetic digit task of :mod:`repro.nn.datasets` from scratch.

The trainer performs its own forward pass with cached intermediates and
implements the backward pass per layer type (convolution via im2col / col2im,
max pooling via argmax masks, ReLU, fully-connected), updating the layer
weights in place with mini-batch SGD and momentum on a softmax cross-entropy
loss.  It is deliberately simple: small networks, small images, a few epochs
-- enough to reach high accuracy on the synthetic digits within seconds.

Both passes run whole mini-batches at once by default (``vectorized=True``):
batched im2col forward, col2im via ``np.add.at``, pooling backward via fancy
indexing.  The original per-sample loops are kept as the reference path
(``vectorized=False``); the two agree to float rounding (gradients are summed
across the batch in a different order).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .datasets import Dataset, synthetic_digits
from .layers import Conv2D, Flatten, FullyConnected, Layer, MaxPool2D, ReLU
from .models import lenet5
from .network import Network


@dataclass
class TrainingHistory:
    """Loss / accuracy trace of a training run."""

    epoch_losses: list[float] = field(default_factory=list)
    epoch_accuracies: list[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        """Accuracy after the last epoch (0 if never evaluated)."""
        return self.epoch_accuracies[-1] if self.epoch_accuracies else 0.0


@dataclass
class TrainedLeNet:
    """A trained LeNet-5 plus its training trace -- one picklable artifact.

    The network's weights are plain numpy arrays, so a pickle round trip
    through the artifact store reproduces them bit-exactly; downstream
    precision searches on a replayed network match the live-trained one
    byte for byte.
    """

    network: Network
    history: TrainingHistory


#: fig6's training hyper-parameters; part of the producer, not the artifact
#: key, because the experiment never varies them.
LENET_LEARNING_RATE = 0.1
LENET_BATCH_SIZE = 25


def lenet_state_artifact(
    *, train_samples: int, test_samples: int, image_size: int, epochs: int, seed: int
) -> TrainedLeNet:
    """Artifact producer: LeNet-5 trained from scratch on the synthetic digits.

    This is the dominant shared intermediate of a cold ``run all`` (fig6's
    precision search consumes it); the artifact key embeds this module's
    import-closure fingerprint, so editing the trainer or the CNN substrate
    invalidates the weights while multiplier-side edits never do.
    """
    dataset = synthetic_digits(
        train_samples=train_samples, test_samples=test_samples, size=image_size, seed=seed
    )
    network = lenet5(input_size=image_size, seed=seed)
    trainer = Trainer(network, learning_rate=LENET_LEARNING_RATE)
    history = trainer.fit(dataset, epochs=epochs, batch_size=LENET_BATCH_SIZE, seed=seed)
    return TrainedLeNet(network=network, history=history)


def resolve_trained_lenet(
    *, train_samples: int, test_samples: int, image_size: int, epochs: int, seed: int
) -> TrainedLeNet:
    """Load-or-train the fig6 LeNet through the active artifact store."""
    from ..runner.artifacts import resolve_artifact

    return resolve_artifact(
        "lenet_state",
        {
            "train_samples": train_samples,
            "test_samples": test_samples,
            "image_size": image_size,
            "epochs": epochs,
            "seed": seed,
        },
        producer=lenet_state_artifact,
    )


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-shift for numerical stability."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / exponentials.sum(axis=-1, keepdims=True)


def cross_entropy_loss(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Softmax cross-entropy loss and its gradient w.r.t. the logits."""
    probabilities = softmax(logits)
    count = logits.shape[0]
    clipped = np.clip(probabilities[np.arange(count), labels], 1e-12, None)
    loss = float(-np.mean(np.log(clipped)))
    gradient = probabilities.copy()
    gradient[np.arange(count), labels] -= 1.0
    return loss, gradient / count


class Trainer:
    """Mini-batch SGD trainer for :class:`~repro.nn.network.Network`.

    Parameters
    ----------
    network:
        Network to train (weights are updated in place).
    learning_rate:
        SGD step size.
    momentum:
        Classical momentum coefficient.
    vectorized:
        Process whole mini-batches per numpy call (the default); ``False``
        selects the original per-sample reference loops.
    """

    def __init__(
        self,
        network: Network,
        *,
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        vectorized: bool = True,
    ):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.network = network
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.vectorized = vectorized
        self._velocity: dict[int, dict[str, np.ndarray]] = {}

    # -- forward with caches ---------------------------------------------------

    def _forward_sample(self, sample: np.ndarray) -> tuple[np.ndarray, list[dict]]:
        caches: list[dict] = []
        tensor = np.asarray(sample, dtype=np.float64)
        for layer in self.network.layers:
            cache: dict = {"input": tensor, "layer": layer}
            if isinstance(layer, Conv2D):
                tensor, cache["columns"], cache["padded_shape"] = _conv_forward(layer, tensor)
            elif isinstance(layer, ReLU):
                tensor = np.maximum(tensor, 0.0)
                cache["mask"] = tensor > 0.0
            elif isinstance(layer, MaxPool2D):
                tensor, cache["argmax"] = _pool_forward(layer, tensor)
            elif isinstance(layer, Flatten):
                cache["shape"] = tensor.shape
                tensor = tensor.reshape(-1)
            elif isinstance(layer, FullyConnected):
                tensor = layer.weights @ tensor + layer.bias
            else:
                raise TypeError(f"trainer does not support layer type {type(layer).__name__}")
            caches.append(cache)
        return tensor, caches

    def _forward_batch(self, samples: np.ndarray) -> tuple[np.ndarray, list[dict]]:
        """Whole-batch forward pass with one cache per *layer* (not sample)."""
        caches: list[dict] = []
        tensors = np.asarray(samples, dtype=np.float64)
        for layer in self.network.layers:
            cache: dict = {"input": tensors, "layer": layer}
            if isinstance(layer, Conv2D):
                tensors, cache["columns"], cache["padded_shape"] = _conv_forward_batch(
                    layer, tensors
                )
            elif isinstance(layer, ReLU):
                tensors = np.maximum(tensors, 0.0)
                cache["mask"] = tensors > 0.0
            elif isinstance(layer, MaxPool2D):
                tensors, cache["argmax"] = _pool_forward_batch(layer, tensors)
            elif isinstance(layer, Flatten):
                cache["shape"] = tensors.shape
                tensors = tensors.reshape(tensors.shape[0], -1)
            elif isinstance(layer, FullyConnected):
                tensors = tensors @ layer.weights.T + layer.bias
            else:
                raise TypeError(f"trainer does not support layer type {type(layer).__name__}")
            caches.append(cache)
        return tensors, caches

    # -- backward ----------------------------------------------------------------

    def _backward_sample(
        self,
        gradient: np.ndarray,
        caches: list[dict],
        gradients: dict[int, dict[str, np.ndarray]],
    ) -> None:
        for cache in reversed(caches):
            layer: Layer = cache["layer"]
            if isinstance(layer, FullyConnected):
                entry = gradients.setdefault(
                    id(layer),
                    {"weights": np.zeros_like(layer.weights), "bias": np.zeros_like(layer.bias)},
                )
                entry["weights"] += np.outer(gradient, cache["input"])
                entry["bias"] += gradient
                gradient = layer.weights.T @ gradient
            elif isinstance(layer, Flatten):
                gradient = gradient.reshape(cache["shape"])
            elif isinstance(layer, ReLU):
                gradient = gradient * cache["mask"]
            elif isinstance(layer, MaxPool2D):
                gradient = _pool_backward(layer, gradient, cache)
            elif isinstance(layer, Conv2D):
                entry = gradients.setdefault(
                    id(layer),
                    {"weights": np.zeros_like(layer.weights), "bias": np.zeros_like(layer.bias)},
                )
                gradient = _conv_backward(layer, gradient, cache, entry)
            else:  # pragma: no cover - forward already rejects unknown layers
                raise TypeError(f"trainer does not support layer type {type(layer).__name__}")

    def _backward_batch(
        self,
        gradient: np.ndarray,
        caches: list[dict],
        gradients: dict[int, dict[str, np.ndarray]],
    ) -> None:
        """Whole-batch backward pass; sums parameter gradients over the batch."""
        for cache in reversed(caches):
            layer: Layer = cache["layer"]
            if isinstance(layer, FullyConnected):
                entry = gradients.setdefault(
                    id(layer),
                    {"weights": np.zeros_like(layer.weights), "bias": np.zeros_like(layer.bias)},
                )
                entry["weights"] += gradient.T @ cache["input"]
                entry["bias"] += gradient.sum(axis=0)
                gradient = gradient @ layer.weights
            elif isinstance(layer, Flatten):
                gradient = gradient.reshape(cache["shape"])
            elif isinstance(layer, ReLU):
                gradient = gradient * cache["mask"]
            elif isinstance(layer, MaxPool2D):
                gradient = _pool_backward_batch(layer, gradient, cache)
            elif isinstance(layer, Conv2D):
                entry = gradients.setdefault(
                    id(layer),
                    {"weights": np.zeros_like(layer.weights), "bias": np.zeros_like(layer.bias)},
                )
                gradient = _conv_backward_batch(layer, gradient, cache, entry)
            else:  # pragma: no cover - forward already rejects unknown layers
                raise TypeError(f"trainer does not support layer type {type(layer).__name__}")

    # -- optimisation -------------------------------------------------------------

    def _apply_gradients(self, gradients: dict[int, dict[str, np.ndarray]], batch_size: int) -> None:
        for layer in self.network.weighted_layers():
            entry = gradients.get(id(layer))
            if entry is None:
                continue
            velocity = self._velocity.setdefault(
                id(layer),
                {"weights": np.zeros_like(layer.weights), "bias": np.zeros_like(layer.bias)},
            )
            for key, parameter in (("weights", layer.weights), ("bias", layer.bias)):
                gradient = entry[key] / batch_size
                velocity[key] = self.momentum * velocity[key] - self.learning_rate * gradient
                parameter += velocity[key]

    def train_epoch(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        *,
        batch_size: int = 32,
        rng: np.random.Generator | None = None,
    ) -> float:
        """One epoch of mini-batch SGD; returns the mean loss."""
        if images.shape[0] != labels.shape[0]:
            raise ValueError("images and labels must have the same length")
        rng = rng or np.random.default_rng(0)
        order = rng.permutation(images.shape[0])
        losses = []
        for start in range(0, len(order), batch_size):
            batch = order[start : start + batch_size]
            gradients: dict[int, dict[str, np.ndarray]] = {}
            if self.vectorized:
                logits, caches = self._forward_batch(images[batch])
                loss, logit_gradients = cross_entropy_loss(logits, labels[batch])
                self._backward_batch(logit_gradients, caches, gradients)
            else:
                logits = []
                caches_per_sample = []
                for index in batch:
                    logit, caches = self._forward_sample(images[index])
                    logits.append(logit)
                    caches_per_sample.append(caches)
                logits = np.stack(logits)
                loss, logit_gradients = cross_entropy_loss(logits, labels[batch])
                for sample_gradient, caches in zip(logit_gradients, caches_per_sample):
                    self._backward_sample(sample_gradient, caches, gradients)
            losses.append(loss)
            self._apply_gradients(gradients, batch_size=len(batch))
        return float(np.mean(losses))

    def evaluate(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy of the current weights."""
        predictions = self.network.predict(images)
        return float(np.mean(predictions == labels))

    def fit(self, dataset: Dataset, *, epochs: int = 3, batch_size: int = 32, seed: int = 0) -> TrainingHistory:
        """Train for ``epochs`` epochs and track test accuracy per epoch."""
        if epochs < 1:
            raise ValueError("epochs must be at least 1")
        history = TrainingHistory()
        rng = np.random.default_rng(seed)
        for _ in range(epochs):
            loss = self.train_epoch(
                dataset.train_images, dataset.train_labels, batch_size=batch_size, rng=rng
            )
            accuracy = self.evaluate(dataset.test_images, dataset.test_labels)
            history.epoch_losses.append(loss)
            history.epoch_accuracies.append(accuracy)
        return history


# -- layer-specific forward/backward helpers --------------------------------------


def _conv_forward(layer: Conv2D, tensor: np.ndarray) -> tuple[np.ndarray, np.ndarray, tuple[int, ...]]:
    if layer.groups != 1:
        raise TypeError("the trainer supports only ungrouped convolutions")
    out_channels, out_h, out_w = layer.output_shape(tensor.shape)
    if layer.padding:
        padded = np.pad(tensor, ((0, 0), (layer.padding, layer.padding), (layer.padding, layer.padding)))
    else:
        padded = tensor
    columns = layer._im2col(padded, out_h, out_w)
    kernel_matrix = layer.weights.reshape(out_channels, -1)
    result = columns @ kernel_matrix.T + layer.bias
    output = result.T.reshape(out_channels, out_h, out_w)
    return output, columns, padded.shape


def _conv_backward(
    layer: Conv2D, gradient: np.ndarray, cache: dict, entry: dict[str, np.ndarray]
) -> np.ndarray:
    out_channels, out_h, out_w = gradient.shape
    gradient_matrix = gradient.reshape(out_channels, -1).T  # (positions, out_channels)
    columns = cache["columns"]
    entry["weights"] += (gradient_matrix.T @ columns).reshape(layer.weights.shape)
    entry["bias"] += gradient.sum(axis=(1, 2))

    kernel_matrix = layer.weights.reshape(out_channels, -1)
    column_gradients = gradient_matrix @ kernel_matrix  # (positions, C*k*k)
    padded_shape = cache["padded_shape"]
    padded_gradient = np.zeros(padded_shape)
    k = layer.kernel_size
    index = 0
    for row in range(out_h):
        top = row * layer.stride
        for col in range(out_w):
            left = col * layer.stride
            patch = column_gradients[index].reshape(layer.in_channels, k, k)
            padded_gradient[:, top : top + k, left : left + k] += patch
            index += 1
    if layer.padding:
        return padded_gradient[:, layer.padding : -layer.padding, layer.padding : -layer.padding]
    return padded_gradient


def _pool_forward(layer: MaxPool2D, tensor: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    channels, height, width = tensor.shape
    size = layer.size
    out_h, out_w = height // size, width // size
    trimmed = tensor[:, : out_h * size, : out_w * size]
    windows = trimmed.reshape(channels, out_h, size, out_w, size).transpose(0, 1, 3, 2, 4)
    flat = windows.reshape(channels, out_h, out_w, size * size)
    argmax = flat.argmax(axis=-1)
    output = flat.max(axis=-1)
    return output, argmax


def _pool_backward(layer: MaxPool2D, gradient: np.ndarray, cache: dict) -> np.ndarray:
    tensor = cache["input"]
    argmax = cache["argmax"]
    channels, height, width = tensor.shape
    size = layer.size
    out_h, out_w = height // size, width // size
    result = np.zeros_like(tensor)
    for channel in range(channels):
        for row in range(out_h):
            for col in range(out_w):
                winner = argmax[channel, row, col]
                win_row, win_col = divmod(int(winner), size)
                result[channel, row * size + win_row, col * size + win_col] += gradient[channel, row, col]
    return result


# -- batched layer helpers ---------------------------------------------------------


def _conv_forward_batch(
    layer: Conv2D, tensors: np.ndarray
) -> tuple[np.ndarray, np.ndarray, tuple[int, ...]]:
    """Batched im2col forward: one strided-view extraction and one matmul."""
    if layer.groups != 1:
        raise TypeError("the trainer supports only ungrouped convolutions")
    batch = tensors.shape[0]
    out_channels, out_h, out_w = layer.output_shape(tensors.shape[1:])
    if layer.padding:
        pad = layer.padding
        padded = np.pad(tensors, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    else:
        padded = tensors
    k = layer.kernel_size
    windows = np.lib.stride_tricks.sliding_window_view(padded, (k, k), axis=(2, 3))
    windows = windows[:, :, :: layer.stride, :: layer.stride][:, :, :out_h, :out_w]
    # (batch, C, out_h, out_w, k, k) -> (batch, positions, C*k*k), the same
    # position-major / channel-major column layout as the per-sample _im2col.
    columns = windows.transpose(0, 2, 3, 1, 4, 5).reshape(batch, out_h * out_w, -1)
    kernel_matrix = layer.weights.reshape(out_channels, -1)
    result = columns @ kernel_matrix.T + layer.bias  # (batch, positions, filters)
    output = result.transpose(0, 2, 1).reshape(batch, out_channels, out_h, out_w)
    return output, columns, padded.shape


def _conv_backward_batch(
    layer: Conv2D, gradient: np.ndarray, cache: dict, entry: dict[str, np.ndarray]
) -> np.ndarray:
    """Batched col2im backward: the per-position Python loop becomes one
    ``np.add.at`` scatter (overlapping patches of strided convolutions need
    the unbuffered accumulation)."""
    batch, out_channels, out_h, out_w = gradient.shape
    gradient_matrix = gradient.reshape(batch, out_channels, -1).transpose(0, 2, 1)
    columns = cache["columns"]  # (batch, positions, C*k*k)
    entry["weights"] += np.tensordot(
        gradient_matrix, columns, axes=([0, 1], [0, 1])
    ).reshape(layer.weights.shape)
    entry["bias"] += gradient.sum(axis=(0, 2, 3))

    kernel_matrix = layer.weights.reshape(out_channels, -1)
    column_gradients = gradient_matrix @ kernel_matrix  # (batch, positions, C*k*k)
    k = layer.kernel_size
    patches = column_gradients.reshape(batch, out_h, out_w, layer.in_channels, k, k)
    samples = np.arange(batch)[:, None, None, None, None, None]
    channels = np.arange(layer.in_channels)[None, None, None, :, None, None]
    rows = (
        (np.arange(out_h) * layer.stride)[None, :, None, None, None, None]
        + np.arange(k)[None, None, None, None, :, None]
    )
    cols = (
        (np.arange(out_w) * layer.stride)[None, None, :, None, None, None]
        + np.arange(k)[None, None, None, None, None, :]
    )
    # col2im scatter as a weighted bincount: both it and ``np.add.at``
    # accumulate contributions sequentially in C-order onto a zero base, so
    # per-cell sums are bit-identical -- bincount just runs an order of
    # magnitude faster than the unbuffered ufunc scatter.
    padded_shape = cache["padded_shape"]
    _, _, padded_h, padded_w = padded_shape
    flat_targets = (
        ((samples * layer.in_channels + channels) * padded_h + rows) * padded_w + cols
    )
    padded_gradient = np.bincount(
        flat_targets.ravel(),
        weights=np.ascontiguousarray(patches).ravel(),
        minlength=batch * layer.in_channels * padded_h * padded_w,
    ).reshape(padded_shape)
    if layer.padding:
        return padded_gradient[
            :, :, layer.padding : -layer.padding, layer.padding : -layer.padding
        ]
    return padded_gradient


def _pool_forward_batch(layer: MaxPool2D, tensors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    batch, channels, height, width = tensors.shape
    size = layer.size
    out_h, out_w = height // size, width // size
    trimmed = tensors[:, :, : out_h * size, : out_w * size]
    windows = trimmed.reshape(batch, channels, out_h, size, out_w, size).transpose(
        0, 1, 2, 4, 3, 5
    )
    flat = windows.reshape(batch, channels, out_h, out_w, size * size)
    argmax = flat.argmax(axis=-1)
    output = flat.max(axis=-1)
    return output, argmax


def _pool_backward_batch(layer: MaxPool2D, gradient: np.ndarray, cache: dict) -> np.ndarray:
    """Scatter each window's gradient to its argmax cell via fancy indexing
    (windows are disjoint, so every target cell is written at most once)."""
    argmax = cache["argmax"]
    size = layer.size
    result = np.zeros_like(cache["input"])
    samples, channels, rows, cols = np.indices(argmax.shape, sparse=True)
    result[samples, channels, rows * size + argmax // size, cols * size + argmax % size] = gradient
    return result
