"""Sequential CNN container with per-layer quantisation control.

A :class:`Network` is an ordered list of layers.  The forward pass accepts an
optional mapping from layer name to
:class:`~repro.nn.quantization.QuantizationConfig`, which is how the
per-layer precision profiles of Fig. 6 and Table III are expressed: the
accelerator reconfigures its DVAFS mode per layer, and the network model
quantises each layer accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .layers import Conv2D, FullyConnected, Layer
from .quantization import QuantizationConfig


@dataclass(frozen=True)
class LayerSummary:
    """Static workload description of one layer (feeds the hardware models)."""

    name: str
    kind: str
    input_shape: tuple[int, ...]
    output_shape: tuple[int, ...]
    macs: int
    parameters: int
    weight_sparsity: float

    @property
    def mmacs(self) -> float:
        """MACs in millions (the unit of Table III)."""
        return self.macs / 1e6


class Network:
    """A sequential neural network.

    Parameters
    ----------
    layers:
        Layers in execution order; weighted layers (conv / fully-connected)
        must have unique names because quantisation configs are keyed by
        name.
    input_shape:
        Shape of one input sample, e.g. ``(1, 28, 28)``.
    name:
        Network name used in reports.
    """

    def __init__(self, layers: list[Layer], input_shape: tuple[int, ...], *, name: str = "network"):
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.layers = list(layers)
        self.input_shape = tuple(input_shape)
        self.name = name
        weighted_names = [layer.name for layer in self.weighted_layers()]
        if len(set(weighted_names)) != len(weighted_names):
            raise ValueError("weighted layer names must be unique")
        # Validate shape propagation eagerly so topology errors surface early.
        self.output_shape = self._propagate_shapes()

    def _propagate_shapes(self) -> tuple[int, ...]:
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    # -- introspection --------------------------------------------------------

    def weighted_layers(self) -> list[Layer]:
        """Layers with learned parameters (conv and fully-connected)."""
        return [layer for layer in self.layers if isinstance(layer, (Conv2D, FullyConnected))]

    def layer_summaries(self) -> list[LayerSummary]:
        """Per-layer workload summaries for the weighted layers."""
        summaries = []
        shape = self.input_shape
        for layer in self.layers:
            output_shape = layer.output_shape(shape)
            if isinstance(layer, (Conv2D, FullyConnected)):
                summaries.append(
                    LayerSummary(
                        name=layer.name,
                        kind=type(layer).__name__,
                        input_shape=shape,
                        output_shape=output_shape,
                        macs=layer.macs(shape),
                        parameters=layer.parameter_count(),
                        weight_sparsity=layer.weight_sparsity(),
                    )
                )
            shape = output_shape
        return summaries

    def total_macs(self) -> int:
        """Total MAC count of one forward pass."""
        return sum(summary.macs for summary in self.layer_summaries())

    def total_parameters(self) -> int:
        """Total learned parameter count."""
        return sum(summary.parameters for summary in self.layer_summaries())

    # -- inference ------------------------------------------------------------

    def forward(
        self,
        sample: np.ndarray,
        *,
        configs: dict[str, QuantizationConfig] | None = None,
    ) -> np.ndarray:
        """Run one sample through the network.

        ``configs`` maps weighted-layer names to their quantisation settings;
        unlisted layers run in floating point.
        """
        configs = configs or {}
        tensor = np.asarray(sample, dtype=np.float64)
        if tensor.shape != self.input_shape:
            raise ValueError(
                f"expected input shape {self.input_shape}, got {tensor.shape}"
            )
        for layer in self.layers:
            config = configs.get(layer.name)
            tensor = layer.forward(tensor, config)
        return tensor

    def forward_batch(
        self,
        samples: np.ndarray,
        *,
        configs: dict[str, QuantizationConfig] | None = None,
        batch: bool = True,
    ) -> np.ndarray:
        """Run a batch ``(n, *input_shape)``; returns stacked outputs.

        With ``batch=True`` (the default) every layer processes the whole
        batch in one vectorised call; ``batch=False`` falls back to stacking
        per-sample forward passes (the reference path).
        """
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != len(self.input_shape) + 1:
            raise ValueError("expected a batch with one leading sample dimension")
        if samples.shape[1:] != self.input_shape:
            raise ValueError(
                f"expected input shape {self.input_shape}, got {samples.shape[1:]}"
            )
        if not batch:
            return np.stack([self.forward(sample, configs=configs) for sample in samples])
        configs = configs or {}
        tensors = samples
        for layer in self.layers:
            tensors = layer.forward_batch(tensors, configs.get(layer.name))
        return tensors

    def predict(
        self,
        samples: np.ndarray,
        *,
        configs: dict[str, QuantizationConfig] | None = None,
    ) -> np.ndarray:
        """Arg-max class predictions for a batch of samples."""
        outputs = self.forward_batch(samples, configs=configs)
        if outputs.ndim != 2:
            raise ValueError("predict requires a network with a flat class output")
        return np.argmax(outputs, axis=1)

    def input_sparsity_per_layer(self) -> dict[str, float]:
        """Observed input sparsity of every weighted layer (needs prior forwards)."""
        return {
            layer.name: layer.statistics.input_sparsity for layer in self.weighted_layers()
        }
