"""Per-layer minimum-precision search (Fig. 6 of the paper).

Following the methodology of the paper's reference [22], the precision of
one layer at a time is reduced until the network's *relative accuracy* drops
below a target (99 % in the paper), while all other layers stay at full
precision.  The search is run separately for weights and for input feature
maps, producing the two per-layer bit profiles plotted in Fig. 6.

Relative accuracy is measured either against ground-truth labels (for
networks we can train, e.g. LeNet-5 on the synthetic digit task) or as
top-1 agreement with the floating-point model (for the AlexNet / VGG16
stand-ins whose original training data is unavailable offline).

Because each probe quantises exactly one layer while everything before it
stays floating point, the activations entering the probed layer are the
*baseline* activations -- a reusable intermediate.  ``incremental=True``
caches those per-layer inputs from one baseline pass and re-runs only the
suffix of the network per candidate; the results are bit-identical to the
full-forward reference (the default), which stays as the golden path the
equivalence tests gate against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.metrics import classification_accuracy, top1_agreement
from .network import Network
from .quantization import QuantizationConfig, quantize


@dataclass(frozen=True)
class LayerPrecisionProfile:
    """Minimum bits found for one layer.

    Attributes
    ----------
    layer:
        Layer name.
    weight_bits:
        Minimum weight precision meeting the accuracy target.
    activation_bits:
        Minimum input-feature-map precision meeting the accuracy target.
    """

    layer: str
    weight_bits: int
    activation_bits: int

    @property
    def required_bits(self) -> int:
        """Datapath precision the layer needs (max of the two profiles)."""
        return max(self.weight_bits, self.activation_bits)


class PrecisionSearch:
    """Finds per-layer minimum precisions at a relative-accuracy target.

    Parameters
    ----------
    network:
        Network under test.
    samples:
        Evaluation inputs ``(n, *input_shape)``.
    labels:
        Ground-truth labels; if ``None`` the floating-point model's
        predictions are used as the reference (top-1 agreement).
    relative_accuracy_target:
        Minimum allowed accuracy relative to the floating-point baseline
        (0.99 in the paper).
    candidate_bits:
        Bit widths tried, from low to high.
    """

    def __init__(
        self,
        network: Network,
        samples: np.ndarray,
        *,
        labels: np.ndarray | None = None,
        relative_accuracy_target: float = 0.99,
        candidate_bits: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 16),
    ):
        if not 0.0 < relative_accuracy_target <= 1.0:
            raise ValueError("relative_accuracy_target must be in (0, 1]")
        if not candidate_bits:
            raise ValueError("candidate_bits must not be empty")
        self.network = network
        self.samples = np.asarray(samples, dtype=np.float64)
        self.labels = None if labels is None else np.asarray(labels)
        self.relative_accuracy_target = relative_accuracy_target
        self.candidate_bits = tuple(sorted(candidate_bits))
        #: Baseline logits, computed on first use -- by a plain forward pass,
        #: or as a by-product of the incremental path's prefix capture (both
        #: run the identical per-layer batch loop, so the logits are the
        #: same bits either way).
        self._baseline_logits_cache: np.ndarray | None = None
        #: Lazily captured baseline inputs of each weighted layer
        #: (layer name -> (position in network.layers, activation batch)).
        self._prefix_inputs: dict[str, tuple[int, np.ndarray]] | None = None
        #: Lazily computed max(|weights|) per probed layer (the weight-scan
        #: candidates all share one weight matrix).
        self._weight_max_abs: dict[str, float] = {}
        #: Reusable quantisation buffer per probed layer -- repeat weight
        #: scans write into one allocation instead of faulting in a fresh
        #: fc-layer-sized array per candidate.
        self._weight_scratch: dict[str, np.ndarray] = {}
        #: How often each evaluation sample has disagreed across incremental
        #: probes.  Samples near decision boundaries disagree under *any*
        #: layer's corruption, so the frequent offenders seed later scans'
        #: certification probes (which samples are probed never affects the
        #: decision, only how quickly failure is certified).
        self._suspect_counts = np.zeros(self.samples.shape[0], dtype=np.int64)

    # -- accuracy evaluation ---------------------------------------------------

    @property
    def _baseline_logits(self) -> np.ndarray:
        if self._baseline_logits_cache is None:
            self._baseline_logits_cache = self.network.forward_batch(self.samples)
        return self._baseline_logits_cache

    @property
    def _baseline_predictions(self) -> np.ndarray:
        return np.argmax(self._baseline_logits, axis=1)

    def baseline_accuracy(self) -> float:
        """Accuracy of the floating-point model (1.0 under the agreement proxy)."""
        if self.labels is None:
            return 1.0
        return classification_accuracy(self._baseline_logits, self.labels)

    def _score(self, logits: np.ndarray) -> float:
        if self.labels is None:
            return top1_agreement(self._baseline_logits, logits)
        baseline = self.baseline_accuracy()
        if baseline == 0:
            raise ValueError("baseline accuracy is zero; cannot compute relative accuracy")
        return classification_accuracy(logits, self.labels) / baseline

    def relative_accuracy(self, configs: dict[str, QuantizationConfig]) -> float:
        """Relative accuracy of the network under the given quantisation."""
        return self._score(self.network.forward_batch(self.samples, configs=configs))

    # -- incremental evaluation ---------------------------------------------------

    def _layer_prefix_inputs(self) -> dict[str, tuple[int, np.ndarray]]:
        """Baseline activations entering each weighted layer (captured once).

        The capture is one unquantised batch pass -- the same per-layer loop
        ``Network.forward_batch`` runs -- so its final tensor doubles as the
        baseline logits (stored if not already computed: one pass serves
        both).
        """
        if self._prefix_inputs is None:
            weighted = {id(layer) for layer in self.network.weighted_layers()}
            inputs: dict[str, tuple[int, np.ndarray]] = {}
            tensors = self.samples
            for position, layer in enumerate(self.network.layers):
                if id(layer) in weighted:
                    inputs[layer.name] = (position, tensors)
                tensors = layer.forward_batch(tensors, None)
            self._prefix_inputs = inputs
            if self._baseline_logits_cache is None:
                self._baseline_logits_cache = tensors
        return self._prefix_inputs

    def relative_accuracy_incremental(self, layer_name: str, config: QuantizationConfig) -> float:
        """Relative accuracy with exactly one layer quantised, prefix reused.

        All layers before ``layer_name`` run unquantised, so their outputs
        equal the cached baseline activations bit for bit; only the suffix
        from the probed layer on is recomputed.  Equivalent to
        ``relative_accuracy({layer_name: config})`` byte for byte, at a
        fraction of the arithmetic.
        """
        position, tensors = self._layer_prefix_inputs()[layer_name]
        configs = {layer_name: config}
        for layer in self.network.layers[position:]:
            tensors = layer.forward_batch(tensors, configs.get(layer.name))
        return self._score(tensors)

    def _quantized_weights(self, layer_name: str, weights: np.ndarray, bits: int) -> np.ndarray:
        """``quantize(weights, bits)`` with the per-layer ``max(|W|)`` cached.

        Every candidate of a weight scan quantises the same matrix, so the
        reduction passes over the (fc-layer-sized) weights are paid once per
        layer instead of once per candidate, and all candidates share one
        scratch buffer.  The 1-bit binary path scales by the mean magnitude,
        not ``quantization_scale``, and uses the scratch as its ``|W|``
        workspace only.
        """
        scratch = self._weight_scratch.get(layer_name)
        if scratch is None or scratch.shape != np.shape(weights):
            scratch = np.empty_like(np.asarray(weights, dtype=np.float64))
            self._weight_scratch[layer_name] = scratch
        if bits == 1:
            return quantize(weights, bits, out=scratch)
        max_abs = self._weight_max_abs.get(layer_name)
        if max_abs is None:
            tensor = np.asarray(weights, dtype=np.float64)
            # Same value quantization_scale computes: max(|W|) via the two
            # reductions, no |W|-sized temporary.
            max_abs = max(float(np.max(tensor)), -float(np.min(tensor))) if tensor.size else 0.0
            self._weight_max_abs[layer_name] = max_abs
        return quantize(weights, bits, max_abs=max_abs, out=scratch)

    #: Samples evaluated by the leading certification probe of a scan's first
    #: candidate (later candidates re-probe the samples that disagreed at
    #: lower bit widths instead).
    _PROBE_CHUNK = 4

    def _probe_candidate(
        self,
        layer_name: str,
        config: QuantizationConfig,
        suspects: np.ndarray | None,
    ) -> tuple[bool, np.ndarray]:
        """Does quantising one layer keep the accuracy target?  (Early exit.)

        The pass/fail decision is a monotone function of the number of
        correctly-classified (or argmax-agreeing) samples, so any evaluated
        subset whose disagreements already push the best-achievable score
        below the target certifies *failure* without touching the rest of
        the batch.  The probe exploits that twice:

        * ``suspects`` carries every sample index seen disagreeing at the
          lower-bit candidates of the same scan -- corruption shrinks as
          bits grow, so previously-disagreeing samples are the cheapest
          failure certificate available;
        * a scan's first candidate (no suspects yet) probes a small leading
          chunk, which certifies the grossly-failing low-bit candidates.

        Undecided probes fall back to one whole-batch evaluation -- the same
        batch shape and float operations the reference path runs -- so the
        returned decision is identical to a full evaluation.

        When the probe quantises weights, the probed layer's weights are
        quantised once up front and temporarily swapped in (with the
        remaining config stripped of its ``weight_bits``) instead of being
        re-quantised by every forward call -- ``quantize`` is deterministic,
        so the arithmetic is unchanged.

        Returns ``(passed, disagreeing sample indices)``; the indices seed
        the next candidate's ``suspects``.
        """
        position, inputs = self._layer_prefix_inputs()[layer_name]
        probed = self.network.layers[position]
        count = inputs.shape[0]
        if self.labels is None:
            reference = self._baseline_predictions
            baseline = None
        else:
            reference = np.asarray(self.labels)
            baseline = self.baseline_accuracy()
            if baseline == 0:
                raise ValueError("baseline accuracy is zero; cannot compute relative accuracy")

        def score(hits: int) -> float:
            # Exactly mirrors np.mean over the full batch: sums of 0/1 values
            # are exact integers, so hits/count is the same correctly-rounded
            # float64 the reference metric produces.
            accuracy = float(np.float64(hits) / np.float64(count))
            return accuracy if baseline is None else accuracy / baseline

        def certifies_failure(misses: int) -> bool:
            # Even if every sample not yet seen disagreeing were a hit, the
            # score could not reach the target.
            return score(count - misses) < self.relative_accuracy_target

        def predictions(batch: np.ndarray, probed_config: QuantizationConfig | None) -> np.ndarray:
            tensors = batch
            for layer in self.network.layers[position:]:
                tensors = layer.forward_batch(
                    tensors, probed_config if layer is probed else None
                )
            return np.argmax(tensors, axis=1)

        swap_weights = config.weight_bits is not None and probed.has_weights
        if swap_weights:
            original_weights = probed.weights
            probed.weights = self._quantized_weights(layer_name, original_weights, config.weight_bits)
            probed_config = (
                QuantizationConfig(activation_bits=config.activation_bits)
                if config.activation_bits is not None
                else None
            )
        else:
            probed_config = config
        try:
            probed_indices = np.arange(0)
            disagreeing = np.arange(0)
            if suspects is not None and suspects.size:
                probed_indices = suspects
                disagreeing = suspects[
                    predictions(inputs[suspects], probed_config) != reference[suspects]
                ]
                if certifies_failure(int(disagreeing.size)):
                    return False, disagreeing
            elif suspects is None:
                first = min(self._PROBE_CHUNK, count)
                if first < count:
                    probed_indices = np.arange(first)
                    disagreeing = np.flatnonzero(
                        predictions(inputs[:first], probed_config) != reference[:first]
                    )
                    if certifies_failure(int(disagreeing.size)):
                        return False, disagreeing
            # Undecided: evaluate the samples the early stage did not touch
            # and combine the exact per-sample miss counts (sample results
            # are independent of how the batch is split).
            rest = (
                np.setdiff1d(np.arange(count), probed_indices)
                if probed_indices.size
                else np.arange(count)
            )
            rest_disagreeing = rest[predictions(inputs[rest], probed_config) != reference[rest]]
            disagreeing = np.union1d(disagreeing, rest_disagreeing)
            passed = score(count - int(disagreeing.size)) >= self.relative_accuracy_target
            return passed, disagreeing
        finally:
            if swap_weights:
                probed.weights = original_weights

    # -- search ------------------------------------------------------------------

    def minimum_bits_for_layer(
        self, layer_name: str, *, target: str, incremental: bool = False
    ) -> int:
        """Smallest precision of ``target`` (``"weights"``/``"activations"``) for one layer."""
        if target not in ("weights", "activations"):
            raise ValueError("target must be 'weights' or 'activations'")
        # Seed the scan with the most frequent offenders of earlier scans
        # (when there are none, the probe falls back to its leading chunk).
        ranked = np.argsort(-self._suspect_counts, kind="stable")
        seed = ranked[self._suspect_counts[ranked] > 0][:3]
        suspects: np.ndarray | None = np.sort(seed) if seed.size else None
        layer_names = [layer.name for layer in self.network.weighted_layers()]
        if layer_name not in layer_names:
            raise ValueError(f"unknown weighted layer {layer_name!r}")
        for bits in self.candidate_bits:
            if target == "weights":
                config = QuantizationConfig(weight_bits=bits)
            else:
                config = QuantizationConfig(activation_bits=bits)
            if incremental:
                passed, disagreeing = self._probe_candidate(layer_name, config, suspects)
                self._suspect_counts[disagreeing] += 1
                if passed:
                    return bits
                # Accumulate every sample seen disagreeing in this scan:
                # near-threshold candidates often fail through a different
                # sample than their predecessor, and the union keeps all of
                # them on the cheap certification path.
                suspects = (
                    disagreeing
                    if suspects is None
                    else np.union1d(suspects, disagreeing)
                )
                continue
            if self.relative_accuracy({layer_name: config}) >= self.relative_accuracy_target:
                return bits
        return self.candidate_bits[-1]

    def profile(self, *, incremental: bool = False) -> list[LayerPrecisionProfile]:
        """Per-layer minimum weight and activation precisions (Fig. 6 data).

        ``incremental=True`` reuses the cached baseline prefix activations
        per probe (bit-identical, much faster); the default full-forward
        evaluation is the golden reference.
        """
        profiles = []
        for layer in self.network.weighted_layers():
            weight_bits = self.minimum_bits_for_layer(
                layer.name, target="weights", incremental=incremental
            )
            activation_bits = self.minimum_bits_for_layer(
                layer.name, target="activations", incremental=incremental
            )
            profiles.append(
                LayerPrecisionProfile(
                    layer=layer.name,
                    weight_bits=weight_bits,
                    activation_bits=activation_bits,
                )
            )
        return profiles

    def uniform_configs(self, profiles: list[LayerPrecisionProfile]) -> dict[str, QuantizationConfig]:
        """Quantisation configs applying every layer's found precisions at once."""
        return {
            profile.layer: QuantizationConfig(
                weight_bits=profile.weight_bits, activation_bits=profile.activation_bits
            )
            for profile in profiles
        }
