"""Per-layer minimum-precision search (Fig. 6 of the paper).

Following the methodology of the paper's reference [22], the precision of
one layer at a time is reduced until the network's *relative accuracy* drops
below a target (99 % in the paper), while all other layers stay at full
precision.  The search is run separately for weights and for input feature
maps, producing the two per-layer bit profiles plotted in Fig. 6.

Relative accuracy is measured either against ground-truth labels (for
networks we can train, e.g. LeNet-5 on the synthetic digit task) or as
top-1 agreement with the floating-point model (for the AlexNet / VGG16
stand-ins whose original training data is unavailable offline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.metrics import classification_accuracy, top1_agreement
from .network import Network
from .quantization import QuantizationConfig


@dataclass(frozen=True)
class LayerPrecisionProfile:
    """Minimum bits found for one layer.

    Attributes
    ----------
    layer:
        Layer name.
    weight_bits:
        Minimum weight precision meeting the accuracy target.
    activation_bits:
        Minimum input-feature-map precision meeting the accuracy target.
    """

    layer: str
    weight_bits: int
    activation_bits: int

    @property
    def required_bits(self) -> int:
        """Datapath precision the layer needs (max of the two profiles)."""
        return max(self.weight_bits, self.activation_bits)


class PrecisionSearch:
    """Finds per-layer minimum precisions at a relative-accuracy target.

    Parameters
    ----------
    network:
        Network under test.
    samples:
        Evaluation inputs ``(n, *input_shape)``.
    labels:
        Ground-truth labels; if ``None`` the floating-point model's
        predictions are used as the reference (top-1 agreement).
    relative_accuracy_target:
        Minimum allowed accuracy relative to the floating-point baseline
        (0.99 in the paper).
    candidate_bits:
        Bit widths tried, from low to high.
    """

    def __init__(
        self,
        network: Network,
        samples: np.ndarray,
        *,
        labels: np.ndarray | None = None,
        relative_accuracy_target: float = 0.99,
        candidate_bits: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 16),
    ):
        if not 0.0 < relative_accuracy_target <= 1.0:
            raise ValueError("relative_accuracy_target must be in (0, 1]")
        if not candidate_bits:
            raise ValueError("candidate_bits must not be empty")
        self.network = network
        self.samples = np.asarray(samples, dtype=np.float64)
        self.labels = None if labels is None else np.asarray(labels)
        self.relative_accuracy_target = relative_accuracy_target
        self.candidate_bits = tuple(sorted(candidate_bits))
        self._baseline_logits = network.forward_batch(self.samples)
        self._baseline_predictions = np.argmax(self._baseline_logits, axis=1)

    # -- accuracy evaluation ---------------------------------------------------

    def baseline_accuracy(self) -> float:
        """Accuracy of the floating-point model (1.0 under the agreement proxy)."""
        if self.labels is None:
            return 1.0
        return classification_accuracy(self._baseline_logits, self.labels)

    def relative_accuracy(self, configs: dict[str, QuantizationConfig]) -> float:
        """Relative accuracy of the network under the given quantisation."""
        logits = self.network.forward_batch(self.samples, configs=configs)
        if self.labels is None:
            return top1_agreement(self._baseline_logits, logits)
        baseline = self.baseline_accuracy()
        if baseline == 0:
            raise ValueError("baseline accuracy is zero; cannot compute relative accuracy")
        return classification_accuracy(logits, self.labels) / baseline

    # -- search ------------------------------------------------------------------

    def minimum_bits_for_layer(self, layer_name: str, *, target: str) -> int:
        """Smallest precision of ``target`` (``"weights"``/``"activations"``) for one layer."""
        if target not in ("weights", "activations"):
            raise ValueError("target must be 'weights' or 'activations'")
        layer_names = [layer.name for layer in self.network.weighted_layers()]
        if layer_name not in layer_names:
            raise ValueError(f"unknown weighted layer {layer_name!r}")
        for bits in self.candidate_bits:
            if target == "weights":
                config = QuantizationConfig(weight_bits=bits)
            else:
                config = QuantizationConfig(activation_bits=bits)
            accuracy = self.relative_accuracy({layer_name: config})
            if accuracy >= self.relative_accuracy_target:
                return bits
        return self.candidate_bits[-1]

    def profile(self) -> list[LayerPrecisionProfile]:
        """Per-layer minimum weight and activation precisions (Fig. 6 data)."""
        profiles = []
        for layer in self.network.weighted_layers():
            weight_bits = self.minimum_bits_for_layer(layer.name, target="weights")
            activation_bits = self.minimum_bits_for_layer(layer.name, target="activations")
            profiles.append(
                LayerPrecisionProfile(
                    layer=layer.name,
                    weight_bits=weight_bits,
                    activation_bits=activation_bits,
                )
            )
        return profiles

    def uniform_configs(self, profiles: list[LayerPrecisionProfile]) -> dict[str, QuantizationConfig]:
        """Quantisation configs applying every layer's found precisions at once."""
        return {
            profile.layer: QuantizationConfig(
                weight_bits=profile.weight_bits, activation_bits=profile.activation_bits
            )
            for profile in profiles
        }
