"""Sparsity statistics of CNN weights and activations.

Envision exploits sparsity by *guarding*: multiplications with a zero operand
are skipped, so their energy is (almost) saved.  Table III therefore lists
per-layer weight and input sparsity next to the precision settings.  These
helpers measure sparsity on our networks and can also induce weight sparsity
by magnitude pruning, standing in for the compressed/pruned networks the
paper references ([20]-[22]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .network import Network
from .quantization import QuantizationConfig


@dataclass(frozen=True)
class LayerSparsity:
    """Sparsity of one weighted layer.

    Attributes
    ----------
    name:
        Layer name.
    weight_sparsity:
        Fraction of zero weights (0..1).
    input_sparsity:
        Fraction of zero input activations observed during inference.
    """

    name: str
    weight_sparsity: float
    input_sparsity: float

    @property
    def guard_rate(self) -> float:
        """Probability that a MAC has at least one zero operand.

        Assuming independence between weight and activation zeros, which is
        the standard first-order model for guarding estimates.
        """
        return 1.0 - (1.0 - self.weight_sparsity) * (1.0 - self.input_sparsity)


def prune_network(network: Network, amount: float) -> None:
    """Magnitude-prune every weighted layer of ``network`` in place.

    ``amount`` is the fraction of smallest-magnitude weights set to zero per
    layer (0..1).  This is how the experiments obtain the weight-sparsity
    levels Table III reports for the pruned benchmark networks.
    """
    if not 0.0 <= amount < 1.0:
        raise ValueError("amount must be in [0, 1)")
    if amount == 0.0:
        return
    for layer in network.weighted_layers():
        flat = np.abs(layer.weights).reshape(-1)
        threshold = np.quantile(flat, amount)
        layer.weights[np.abs(layer.weights) <= threshold] = 0.0


def measure_sparsity(
    network: Network,
    samples: np.ndarray,
    *,
    configs: dict[str, QuantizationConfig] | None = None,
    batch: bool = True,
) -> list[LayerSparsity]:
    """Run ``samples`` through the network and report per-layer sparsity.

    Weight sparsity is static; input sparsity is measured on the activations
    that actually reached each weighted layer (ReLU makes deeper layers much
    sparser, which is exactly the effect Table III shows).  ``batch`` selects
    the vectorised whole-batch forward (the default) or the per-sample
    reference path.
    """
    for layer in network.weighted_layers():
        layer.statistics.activations_seen = 0
        layer.statistics.zero_activations = 0
    network.forward_batch(samples, configs=configs, batch=batch)
    report = []
    for layer in network.weighted_layers():
        report.append(
            LayerSparsity(
                name=layer.name,
                weight_sparsity=layer.weight_sparsity(),
                input_sparsity=layer.statistics.input_sparsity,
            )
        )
    return report


def average_guard_rate(sparsities: list[LayerSparsity], weights: list[float] | None = None) -> float:
    """MAC-weighted average guard rate across layers."""
    if not sparsities:
        raise ValueError("no layer sparsities given")
    if weights is None:
        weights = [1.0] * len(sparsities)
    if len(weights) != len(sparsities):
        raise ValueError("weights must match the number of layers")
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(s.guard_rate * w for s, w in zip(sparsities, weights)) / total
