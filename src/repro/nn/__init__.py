"""CNN substrate: layers, networks, models, datasets, training, quantisation."""

from .datasets import Dataset, synthetic_digits, synthetic_natural_images
from .layers import Conv2D, Flatten, FullyConnected, Layer, MaxPool2D, ReLU
from .models import MODEL_BUILDERS, alexnet, build_model, lenet5, vgg16
from .network import LayerSummary, Network
from .precision_search import LayerPrecisionProfile, PrecisionSearch
from .quantization import (
    QuantizationConfig,
    quantization_error,
    quantization_scale,
    quantize,
    quantize_to_codes,
)
from .sparsity import LayerSparsity, average_guard_rate, measure_sparsity, prune_network
from .training import (
    TrainedLeNet,
    Trainer,
    TrainingHistory,
    cross_entropy_loss,
    lenet_state_artifact,
    resolve_trained_lenet,
    softmax,
)

__all__ = [
    "Dataset",
    "synthetic_digits",
    "synthetic_natural_images",
    "Conv2D",
    "Flatten",
    "FullyConnected",
    "Layer",
    "MaxPool2D",
    "ReLU",
    "MODEL_BUILDERS",
    "alexnet",
    "build_model",
    "lenet5",
    "vgg16",
    "LayerSummary",
    "Network",
    "LayerPrecisionProfile",
    "PrecisionSearch",
    "QuantizationConfig",
    "quantization_error",
    "quantization_scale",
    "quantize",
    "quantize_to_codes",
    "LayerSparsity",
    "average_guard_rate",
    "measure_sparsity",
    "prune_network",
    "TrainedLeNet",
    "Trainer",
    "TrainingHistory",
    "cross_entropy_loss",
    "lenet_state_artifact",
    "resolve_trained_lenet",
    "softmax",
]
