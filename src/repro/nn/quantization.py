"""Fixed-point quantisation of CNN weights and activations.

The paper's precision-scaling argument (Section IV-B, Fig. 6) rests on
uniform symmetric fixed-point quantisation: a tensor is scaled by a power of
two chosen from its dynamic range and rounded to ``bits``-bit signed
integers.  The same machinery drives both the per-layer precision search of
Fig. 6 and the quantised inference that feeds the Envision energy model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantizationConfig:
    """Per-layer quantisation setting.

    Attributes
    ----------
    weight_bits:
        Precision of the layer weights (None = keep floating point).
    activation_bits:
        Precision of the layer input activations (None = keep floating point).
    """

    weight_bits: int | None = None
    activation_bits: int | None = None

    def __post_init__(self) -> None:
        for name, value in (("weight_bits", self.weight_bits), ("activation_bits", self.activation_bits)):
            if value is not None and value < 1:
                raise ValueError(f"{name} must be positive or None")

    @property
    def required_bits(self) -> int:
        """Datapath precision needed by this configuration (max of the two)."""
        candidates = [bits for bits in (self.weight_bits, self.activation_bits) if bits]
        return max(candidates) if candidates else 16


def quantization_scale(tensor: np.ndarray, bits: int) -> float:
    """Power-of-two scale mapping ``tensor`` onto ``bits``-bit signed integers.

    The scale is the smallest power of two that covers the tensor's maximum
    absolute value, which keeps dequantisation a pure shift (as fixed-point
    hardware does).
    """
    if bits < 1:
        raise ValueError("bits must be positive")
    tensor = np.asarray(tensor, dtype=np.float64)
    max_abs = float(np.max(np.abs(tensor))) if tensor.size else 0.0
    if max_abs == 0.0:
        return 1.0
    # Want max_abs <= scale * levels; choose scale = 2**e.  A 1-bit code has
    # a single magnitude level (BinaryNet-style +-scale).
    levels = max(1, 2 ** (bits - 1) - 1)
    exponent = np.ceil(np.log2(max_abs / levels))
    return float(2.0**exponent)


def quantize(tensor: np.ndarray, bits: int | None) -> np.ndarray:
    """Quantise ``tensor`` to ``bits``-bit fixed point (returns dequantised floats).

    ``bits=None`` returns the tensor unchanged (floating-point reference).
    """
    if bits is None:
        return np.asarray(tensor, dtype=np.float64)
    tensor = np.asarray(tensor, dtype=np.float64)
    if bits == 1:
        # Binary quantisation (the Courbariaux et al. regime cited in the
        # paper): values become +-scale, with scale set by the mean magnitude.
        scale = float(np.mean(np.abs(tensor))) if tensor.size else 1.0
        if scale == 0.0:
            return np.zeros_like(tensor)
        return np.where(tensor >= 0.0, scale, -scale)
    scale = quantization_scale(tensor, bits)
    lo = -(2 ** (bits - 1))
    hi = 2 ** (bits - 1) - 1
    codes = np.clip(np.round(tensor / scale), lo, hi)
    return codes * scale


def quantize_per_sample(tensor: np.ndarray, bits: int | None) -> np.ndarray:
    """Quantise each sample of a batch independently, in one vectorised pass.

    Equivalent to ``np.stack([quantize(sample, bits) for sample in tensor])``:
    every sample along axis 0 gets its own dynamic-range scale, exactly like
    the per-sample forward path, but scales, rounding and clipping are
    evaluated for the whole batch at once.
    """
    if bits is None:
        return np.asarray(tensor, dtype=np.float64)
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.ndim < 2:
        raise ValueError("per-sample quantisation needs a batch dimension")
    axes = tuple(range(1, tensor.ndim))
    if bits == 1:
        scale = np.mean(np.abs(tensor), axis=axes, keepdims=True)
        signs = np.where(tensor >= 0.0, 1.0, -1.0)
        return np.where(scale == 0.0, 0.0, signs * scale)
    max_abs = np.max(np.abs(tensor), axis=axes, keepdims=True)
    levels = max(1, 2 ** (bits - 1) - 1)
    with np.errstate(divide="ignore"):
        exponent = np.ceil(np.log2(max_abs / levels))
    scale = np.where(max_abs == 0.0, 1.0, 2.0**exponent)
    lo = -(2 ** (bits - 1))
    hi = 2 ** (bits - 1) - 1
    codes = np.clip(np.round(tensor / scale), lo, hi)
    return codes * scale


def quantize_to_codes(tensor: np.ndarray, bits: int) -> tuple[np.ndarray, float]:
    """Quantise and return ``(integer codes, scale)`` for integer pipelines."""
    if bits < 1:
        raise ValueError("bits must be positive")
    tensor = np.asarray(tensor, dtype=np.float64)
    scale = quantization_scale(tensor, bits)
    lo = -(2 ** (bits - 1))
    hi = max(1, 2 ** (bits - 1) - 1)
    codes = np.clip(np.round(tensor / scale), lo, hi).astype(np.int64)
    return codes, scale


def quantization_error(tensor: np.ndarray, bits: int) -> float:
    """RMS quantisation error of ``tensor`` at ``bits`` precision."""
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.size == 0:
        return 0.0
    return float(np.sqrt(np.mean((quantize(tensor, bits) - tensor) ** 2)))
