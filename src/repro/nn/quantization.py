"""Fixed-point quantisation of CNN weights and activations.

The paper's precision-scaling argument (Section IV-B, Fig. 6) rests on
uniform symmetric fixed-point quantisation: a tensor is scaled by a power of
two chosen from its dynamic range and rounded to ``bits``-bit signed
integers.  The same machinery drives both the per-layer precision search of
Fig. 6 and the quantised inference that feeds the Envision energy model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantizationConfig:
    """Per-layer quantisation setting.

    Attributes
    ----------
    weight_bits:
        Precision of the layer weights (None = keep floating point).
    activation_bits:
        Precision of the layer input activations (None = keep floating point).
    """

    weight_bits: int | None = None
    activation_bits: int | None = None

    def __post_init__(self) -> None:
        for name, value in (("weight_bits", self.weight_bits), ("activation_bits", self.activation_bits)):
            if value is not None and value < 1:
                raise ValueError(f"{name} must be positive or None")

    @property
    def required_bits(self) -> int:
        """Datapath precision needed by this configuration (max of the two)."""
        candidates = [bits for bits in (self.weight_bits, self.activation_bits) if bits]
        return max(candidates) if candidates else 16


def quantization_scale(tensor: np.ndarray, bits: int, *, max_abs: float | None = None) -> float:
    """Power-of-two scale mapping ``tensor`` onto ``bits``-bit signed integers.

    The scale is the smallest power of two that covers the tensor's maximum
    absolute value, which keeps dequantisation a pure shift (as fixed-point
    hardware does).  ``max_abs`` may carry a precomputed ``max(|tensor|)`` so
    repeated scans of one weight matrix (the precision search probes every
    candidate bit width) skip the reduction passes.
    """
    if bits < 1:
        raise ValueError("bits must be positive")
    tensor = np.asarray(tensor, dtype=np.float64)
    if max_abs is None:
        # max(|W|) via the two reductions instead of np.max(np.abs(...)):
        # same value, but no |W|-sized temporary (the fc-layer weight
        # matrices in the precision-search hot path are hundreds of
        # megabytes).
        max_abs = max(float(np.max(tensor)), -float(np.min(tensor))) if tensor.size else 0.0
    if max_abs == 0.0:
        return 1.0
    # Want max_abs <= scale * levels; choose scale = 2**e.  A 1-bit code has
    # a single magnitude level (BinaryNet-style +-scale).
    levels = max(1, 2 ** (bits - 1) - 1)
    ratio = max_abs / levels
    smallest_subnormal = float(np.nextafter(0.0, 1.0))
    if ratio < smallest_subnormal:
        # Denormal underflow: the smallest positive double still covers.
        return smallest_subnormal
    exponent = np.ceil(np.log2(ratio))
    return max(float(2.0**exponent), smallest_subnormal)


def quantize(
    tensor: np.ndarray,
    bits: int | None,
    *,
    scale: float | None = None,
    max_abs: float | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Quantise ``tensor`` to ``bits``-bit fixed point (returns dequantised floats).

    ``bits=None`` returns the tensor unchanged (floating-point reference).
    ``scale`` may carry a precomputed ``quantization_scale(tensor, bits)``
    (it is ignored by the 1-bit binary path, which scales by the mean
    magnitude instead).  ``max_abs`` may carry a precomputed
    ``max(|tensor|)``: it feeds the scale computation and lets the clip
    pass be skipped when provably an identity.  ``out``, when given,
    receives the result for
    ``bits >= 2`` (same float64 shape as ``tensor``); repeat quantisations of
    one large weight matrix then reuse a single buffer instead of paying a
    fresh multi-megabyte allocation per call.  (The 1-bit path uses ``out``
    only as a ``|tensor|`` workspace -- its result is a fresh array.)
    """
    if bits is None:
        return np.asarray(tensor, dtype=np.float64)
    tensor = np.asarray(tensor, dtype=np.float64)
    if bits == 1:
        # Binary quantisation (the Courbariaux et al. regime cited in the
        # paper): values become +-scale, with scale set by the mean magnitude.
        magnitude = np.abs(tensor, out=out) if out is not None else np.abs(tensor)
        scale = float(np.mean(magnitude)) if tensor.size else 1.0
        if scale == 0.0:
            return np.zeros_like(tensor)
        return np.where(tensor >= 0.0, scale, -scale)
    if scale is None:
        scale = quantization_scale(tensor, bits, max_abs=max_abs)
    lo = -(2 ** (bits - 1))
    hi = 2 ** (bits - 1) - 1
    # One working buffer, mutated in place: the float operations are
    # element-wise identical to ``np.clip(np.round(t / scale), lo, hi) *
    # scale``, but the multi-megabyte temporaries (fc-layer weight matrices
    # dominate the precision-search hot path) are never allocated.  The
    # scale is a power of two, so its reciprocal is exact and multiplying
    # by it is the same correctly-rounded operation as dividing -- at a
    # fraction of the cost; the guard keeps the division for the subnormal
    # edge where the reciprocal would overflow.
    reciprocal = 1.0 / scale
    if np.isfinite(reciprocal) and reciprocal != 0.0:
        codes = np.multiply(tensor, reciprocal, out=out)
    else:  # pragma: no cover - subnormal/huge scales only
        codes = np.divide(tensor, scale, out=out)
    np.round(codes, out=codes)
    if max_abs is None or max_abs > scale * hi:
        # When a caller-supplied max(|tensor|) proves the scale covers the
        # range (max_abs <= scale * hi, so every rounded code already lies
        # inside [lo, hi]), the clip is an identity and the pass is skipped
        # -- the repeat weight-scan probes of the precision search use this.
        np.clip(codes, lo, hi, out=codes)
    codes *= scale
    return codes


def quantize_per_sample(tensor: np.ndarray, bits: int | None) -> np.ndarray:
    """Quantise each sample of a batch independently, in one vectorised pass.

    Equivalent to ``np.stack([quantize(sample, bits) for sample in tensor])``:
    every sample along axis 0 gets its own dynamic-range scale, exactly like
    the per-sample forward path, but scales, rounding and clipping are
    evaluated for the whole batch at once.
    """
    if bits is None:
        return np.asarray(tensor, dtype=np.float64)
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.ndim < 2:
        raise ValueError("per-sample quantisation needs a batch dimension")
    axes = tuple(range(1, tensor.ndim))
    if bits == 1:
        scale = np.mean(np.abs(tensor), axis=axes, keepdims=True)
        signs = np.where(tensor >= 0.0, 1.0, -1.0)
        return np.where(scale == 0.0, 0.0, signs * scale)
    max_abs = np.max(np.abs(tensor), axis=axes, keepdims=True)
    levels = max(1, 2 ** (bits - 1) - 1)
    with np.errstate(divide="ignore"):
        exponent = np.ceil(np.log2(max_abs / levels))
    scale = np.where(max_abs == 0.0, 1.0, 2.0**exponent)
    lo = -(2 ** (bits - 1))
    hi = 2 ** (bits - 1) - 1
    codes = np.clip(np.round(tensor / scale), lo, hi)
    return codes * scale


def quantize_to_codes(tensor: np.ndarray, bits: int) -> tuple[np.ndarray, float]:
    """Quantise and return ``(integer codes, scale)`` for integer pipelines."""
    if bits < 1:
        raise ValueError("bits must be positive")
    tensor = np.asarray(tensor, dtype=np.float64)
    scale = quantization_scale(tensor, bits)
    lo = -(2 ** (bits - 1))
    hi = max(1, 2 ** (bits - 1) - 1)
    codes = np.clip(np.round(tensor / scale), lo, hi).astype(np.int64)
    return codes, scale


def quantization_error(tensor: np.ndarray, bits: int) -> float:
    """RMS quantisation error of ``tensor`` at ``bits`` precision."""
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.size == 0:
        return 0.0
    return float(np.sqrt(np.mean((quantize(tensor, bits) - tensor) ** 2)))
