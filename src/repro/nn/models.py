"""Network topologies used in the paper: LeNet-5, AlexNet and VGG16.

The Table III workload figures depend only on the layer shapes (MACs per
frame), which these builders reproduce:

* **LeNet-5** -- the Caffe variant (20/50 conv filters, 500-unit classifier):
  0.29 and 1.60 MMAC in the two convolutional layers, matching the 0.3 / 1.6
  MMAC per frame of Table III.
* **AlexNet** -- 5 convolutional layers with the original grouping: 105 /
  224 / 150 / 112 / 75 MMAC (666 MMAC total), matching Table III's 104 / 224
  / 150 / 112 / 666.
* **VGG16** -- 13 convolutional layers between 87 and 1850 MMAC (15.3 GMAC
  total), matching Table III's 87 / 462-1850 / 15346.

Weights are synthetic (He-initialised); for the quantisation sweeps the
networks can be built at reduced input resolution (``input_size``) so the
numpy inference stays tractable while the layer structure -- and therefore
the error-propagation behaviour that sets the per-layer precision needs --
is preserved.  MAC accounting always uses the shapes the network was built
with, so Table III uses the full-resolution builders.
"""

from __future__ import annotations

import numpy as np

from .layers import Conv2D, Flatten, FullyConnected, MaxPool2D, ReLU
from .network import Network


def lenet5(*, input_size: int = 28, seed: int = 7) -> Network:
    """LeNet-5 (Caffe variant) for single-channel digit classification."""
    if input_size < 16:
        raise ValueError("input_size must be at least 16")
    rng = np.random.default_rng(seed)
    layers = [
        Conv2D(1, 20, 5, name="conv1", rng=rng),
        ReLU(name="relu1"),
        MaxPool2D(2, name="pool1"),
        Conv2D(20, 50, 5, name="conv2", rng=rng),
        ReLU(name="relu2"),
        MaxPool2D(2, name="pool2"),
        Flatten(name="flatten"),
    ]
    # Feature size after two conv(5)+pool(2) stages.
    spatial = ((input_size - 4) // 2 - 4) // 2
    layers.extend(
        [
            FullyConnected(50 * spatial * spatial, 500, name="fc1", rng=rng),
            ReLU(name="relu3"),
            FullyConnected(500, 10, name="fc2", rng=rng),
        ]
    )
    return Network(layers, (1, input_size, input_size), name="LeNet-5")


def alexnet(*, input_size: int = 224, num_classes: int = 1000, seed: int = 11) -> Network:
    """AlexNet with the original two-group convolutions.

    ``input_size`` below 224 builds a spatially reduced proxy (for the
    quantisation sweeps); the canonical 224 builder reproduces the paper's
    per-layer MMAC counts.
    """
    if input_size < 63:
        raise ValueError("input_size must be at least 63 for the AlexNet topology")
    rng = np.random.default_rng(seed)
    layers = [
        Conv2D(3, 96, 11, stride=4, padding=2, name="conv1", rng=rng),
        ReLU(name="relu1"),
        MaxPool2D(2, name="pool1"),
        Conv2D(96, 256, 5, padding=2, groups=2, name="conv2", rng=rng),
        ReLU(name="relu2"),
        MaxPool2D(2, name="pool2"),
        Conv2D(256, 384, 3, padding=1, name="conv3", rng=rng),
        ReLU(name="relu3"),
        Conv2D(384, 384, 3, padding=1, groups=2, name="conv4", rng=rng),
        ReLU(name="relu4"),
        Conv2D(384, 256, 3, padding=1, groups=2, name="conv5", rng=rng),
        ReLU(name="relu5"),
        MaxPool2D(2, name="pool3"),
        Flatten(name="flatten"),
    ]
    probe = Network(layers[:-1], (3, input_size, input_size), name="probe")
    channels, height, width = probe.output_shape
    feature_size = channels * height * width
    layers.extend(
        [
            FullyConnected(feature_size, 4096, name="fc6", rng=rng),
            ReLU(name="relu6"),
            FullyConnected(4096, 4096, name="fc7", rng=rng),
            ReLU(name="relu7"),
            FullyConnected(4096, num_classes, name="fc8", rng=rng),
        ]
    )
    return Network(layers, (3, input_size, input_size), name="AlexNet")


#: VGG16 convolutional configuration: (output channels, number of conv layers)
#: per block, each followed by 2x2 max pooling.
_VGG16_BLOCKS = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)]


def vgg16(*, input_size: int = 224, num_classes: int = 1000, seed: int = 13) -> Network:
    """VGG16 (configuration D) with 3x3 convolutions throughout."""
    if input_size < 32 or input_size % 32:
        raise ValueError("input_size must be a positive multiple of 32")
    rng = np.random.default_rng(seed)
    layers = []
    in_channels = 3
    conv_index = 0
    for block_index, (channels, count) in enumerate(_VGG16_BLOCKS, start=1):
        for position in range(1, count + 1):
            conv_index += 1
            layers.append(
                Conv2D(
                    in_channels,
                    channels,
                    3,
                    padding=1,
                    name=f"conv{block_index}_{position}",
                    rng=rng,
                )
            )
            layers.append(ReLU(name=f"relu{block_index}_{position}"))
            in_channels = channels
        layers.append(MaxPool2D(2, name=f"pool{block_index}"))
    layers.append(Flatten(name="flatten"))
    spatial = input_size // 32
    layers.extend(
        [
            FullyConnected(512 * spatial * spatial, 4096, name="fc6", rng=rng),
            ReLU(name="relu_fc6"),
            FullyConnected(4096, 4096, name="fc7", rng=rng),
            ReLU(name="relu_fc7"),
            FullyConnected(4096, num_classes, name="fc8", rng=rng),
        ]
    )
    return Network(layers, (3, input_size, input_size), name="VGG16")


#: Builders by canonical network name.
MODEL_BUILDERS = {
    "lenet5": lenet5,
    "alexnet": alexnet,
    "vgg16": vgg16,
}


def build_model(name: str, **kwargs) -> Network:
    """Build a network by name (``"lenet5"``, ``"alexnet"`` or ``"vgg16"``)."""
    try:
        builder = MODEL_BUILDERS[name.lower()]
    except KeyError as exc:
        known = ", ".join(sorted(MODEL_BUILDERS))
        raise KeyError(f"unknown model {name!r}; known: {known}") from exc
    return builder(**kwargs)
