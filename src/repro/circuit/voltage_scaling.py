"""Minimum-supply solvers for DVAS/DVAFS voltage scaling.

Given a critical path (in logic levels) and a target clock period, these
helpers find the lowest supply voltage at which the path still meets timing.
This is the mechanism that converts the *positive slack* created by precision
gating (Fig. 2b of the paper) into energy savings (Fig. 2c).
"""

from __future__ import annotations

from dataclasses import dataclass

from .delay import CriticalPath, path_delay_ns
from .technology import Technology


def minimum_voltage_for_period(
    technology: Technology,
    logic_levels: float,
    clock_period_ns: float,
    *,
    resolution_mv: float = 1.0,
    guard_band_mv: float = 0.0,
) -> float:
    """Lowest supply (V) at which ``logic_levels`` fit in ``clock_period_ns``.

    A bisection search over the characterised supply range is used; the delay
    model is monotonic in voltage so bisection converges unconditionally.

    Parameters
    ----------
    technology:
        Technology corner providing the delay model and voltage limits.
    logic_levels:
        Critical path depth in reference logic levels.
    clock_period_ns:
        Target clock period in nanoseconds.
    resolution_mv:
        Search resolution in millivolts.
    guard_band_mv:
        Extra voltage margin added on top of the exact solution, in
        millivolts (models on-chip supply noise margin).

    Raises
    ------
    ValueError
        If the path cannot meet the period even at the maximum supply.
    """
    if clock_period_ns <= 0:
        raise ValueError("clock_period_ns must be positive")
    if logic_levels < 0:
        raise ValueError("logic_levels must be non-negative")
    if resolution_mv <= 0:
        raise ValueError("resolution_mv must be positive")

    lo = technology.min_voltage
    hi = technology.max_voltage

    if path_delay_ns(technology, logic_levels, hi) > clock_period_ns:
        raise ValueError(
            f"critical path of {logic_levels:.1f} levels cannot meet a "
            f"{clock_period_ns:.3f} ns period even at {hi:.2f} V"
        )
    if path_delay_ns(technology, logic_levels, lo) <= clock_period_ns:
        return technology.clamp_voltage(lo + guard_band_mv / 1000.0)

    tolerance = resolution_mv / 1000.0
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if path_delay_ns(technology, logic_levels, mid) <= clock_period_ns:
            hi = mid
        else:
            lo = mid
    return technology.clamp_voltage(hi + guard_band_mv / 1000.0)


def minimum_voltage_for_frequency(
    technology: Technology,
    logic_levels: float,
    frequency_mhz: float,
    *,
    resolution_mv: float = 1.0,
    guard_band_mv: float = 0.0,
) -> float:
    """Lowest supply (V) at which the path runs at ``frequency_mhz``."""
    if frequency_mhz <= 0:
        raise ValueError("frequency_mhz must be positive")
    return minimum_voltage_for_period(
        technology,
        logic_levels,
        1000.0 / frequency_mhz,
        resolution_mv=resolution_mv,
        guard_band_mv=guard_band_mv,
    )


@dataclass(frozen=True)
class VoltageScalingResult:
    """Outcome of a voltage-scaling query for one operating mode.

    Attributes
    ----------
    voltage:
        Minimum supply voltage found (V).
    slack_ns:
        Positive slack remaining at that voltage for the target period (ns).
    slack_at_nominal_ns:
        Positive slack at the technology's nominal voltage (ns) -- this is
        the quantity plotted in Fig. 2b of the paper.
    clock_period_ns:
        Target clock period (ns).
    """

    voltage: float
    slack_ns: float
    slack_at_nominal_ns: float
    clock_period_ns: float


def scale_voltage(
    critical_path: CriticalPath,
    clock_period_ns: float,
    *,
    resolution_mv: float = 1.0,
    guard_band_mv: float = 0.0,
) -> VoltageScalingResult:
    """Solve for the minimum supply of ``critical_path`` at a target period."""
    technology = critical_path.technology
    voltage = minimum_voltage_for_period(
        technology,
        critical_path.logic_levels,
        clock_period_ns,
        resolution_mv=resolution_mv,
        guard_band_mv=guard_band_mv,
    )
    return VoltageScalingResult(
        voltage=voltage,
        slack_ns=critical_path.positive_slack_ns(voltage, clock_period_ns),
        slack_at_nominal_ns=critical_path.positive_slack_ns(
            technology.nominal_voltage, clock_period_ns
        ),
        clock_period_ns=clock_period_ns,
    )
