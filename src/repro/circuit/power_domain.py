"""Power domains for DVAS/DVAFS systems.

A DVAS design must be split into at least two supply domains: the
accuracy-scalable arithmetic (``as``) whose voltage tracks the shortened
critical path, and the non-accuracy-scalable rest (``nas``) which stays at
nominal.  DVAFS additionally lets the ``nas`` domain scale because the whole
system slows down by the subword-parallelism factor N.  Memories typically
keep a fixed retention-safe supply (``mem``), as in the SIMD processor of
Section III-B.

This module provides a small bookkeeping abstraction used by the SIMD and
Envision models to attribute power per domain and to reproduce the
percentage breakdowns of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .energy import dynamic_power_mw


@dataclass
class PowerDomain:
    """One supply domain with its own voltage and switched capacitance.

    Attributes
    ----------
    name:
        Domain identifier (``"as"``, ``"nas"``, ``"mem"``, ...).
    voltage:
        Supply voltage of the domain (V).
    switched_capacitance_pf:
        Effective switched capacitance per clock cycle at unit activity (pF).
    activity:
        Average switching activity factor of the domain (dimensionless).
    scalable_voltage:
        Whether the domain's supply may be lowered by the controller.  The
        memory domain of the SIMD processor is pinned at 1.1 V for reliable
        retention, so its ``scalable_voltage`` is ``False``.
    """

    name: str
    voltage: float
    switched_capacitance_pf: float
    activity: float = 1.0
    scalable_voltage: bool = True

    def __post_init__(self) -> None:
        if self.voltage <= 0:
            raise ValueError("voltage must be positive")
        if self.switched_capacitance_pf < 0:
            raise ValueError("switched_capacitance_pf must be non-negative")
        if self.activity < 0:
            raise ValueError("activity must be non-negative")

    def power_mw(self, frequency_mhz: float) -> float:
        """Dynamic power of the domain at ``frequency_mhz`` (mW)."""
        return dynamic_power_mw(
            self.switched_capacitance_pf, self.activity, frequency_mhz, self.voltage
        )

    def set_voltage(self, voltage: float) -> None:
        """Change the domain supply; refuses if the domain is not scalable."""
        if not self.scalable_voltage:
            raise ValueError(f"domain {self.name!r} has a fixed supply voltage")
        if voltage <= 0:
            raise ValueError("voltage must be positive")
        self.voltage = voltage


@dataclass
class PowerBreakdown:
    """Per-domain power figures for one operating point.

    ``fractions()`` returns the percentage split used in Table II.
    """

    domain_power_mw: dict[str, float] = field(default_factory=dict)

    @property
    def total_mw(self) -> float:
        """Total power across all domains (mW)."""
        return sum(self.domain_power_mw.values())

    def fraction(self, name: str) -> float:
        """Fraction of total power consumed by domain ``name`` (0..1)."""
        total = self.total_mw
        if total <= 0:
            return 0.0
        return self.domain_power_mw.get(name, 0.0) / total

    def fractions(self) -> dict[str, float]:
        """Fractions of total power per domain."""
        return {name: self.fraction(name) for name in self.domain_power_mw}

    def percentages(self) -> dict[str, float]:
        """Percentage split per domain, as printed in Table II."""
        return {name: 100.0 * frac for name, frac in self.fractions().items()}


class PowerDomainSet:
    """A collection of named power domains evaluated at a shared frequency."""

    def __init__(self, domains: list[PowerDomain]):
        names = [domain.name for domain in domains]
        if len(set(names)) != len(names):
            raise ValueError("power domain names must be unique")
        self._domains = {domain.name: domain for domain in domains}

    def __contains__(self, name: str) -> bool:
        return name in self._domains

    def __getitem__(self, name: str) -> PowerDomain:
        return self._domains[name]

    @property
    def names(self) -> list[str]:
        """Domain names in insertion order."""
        return list(self._domains)

    def breakdown(self, frequency_mhz: float) -> PowerBreakdown:
        """Evaluate every domain at ``frequency_mhz`` and return the split."""
        if frequency_mhz < 0:
            raise ValueError("frequency_mhz must be non-negative")
        return PowerBreakdown(
            domain_power_mw={
                name: domain.power_mw(frequency_mhz)
                for name, domain in self._domains.items()
            }
        )
