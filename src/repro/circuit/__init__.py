"""Circuit-level substrate: technology corners, delay, energy and power domains."""

from .clock import ClockConfig, constant_throughput_clock, constant_throughput_frequency
from .delay import CriticalPath, delay_stretch, path_delay_ns, unit_delay_ps
from .energy import (
    EnergyReport,
    dynamic_power_mw,
    leakage_power_uw,
    toggle_energy_pj,
    voltage_energy_scale,
)
from .power_domain import PowerBreakdown, PowerDomain, PowerDomainSet
from .technology import (
    TECH_28NM_FDSOI,
    TECH_40NM_LP_LVT,
    TECHNOLOGIES,
    Technology,
    get_technology,
)
from .voltage_scaling import (
    VoltageScalingResult,
    minimum_voltage_for_frequency,
    minimum_voltage_for_period,
    scale_voltage,
)

__all__ = [
    "ClockConfig",
    "constant_throughput_clock",
    "constant_throughput_frequency",
    "CriticalPath",
    "delay_stretch",
    "path_delay_ns",
    "unit_delay_ps",
    "EnergyReport",
    "dynamic_power_mw",
    "leakage_power_uw",
    "toggle_energy_pj",
    "voltage_energy_scale",
    "PowerBreakdown",
    "PowerDomain",
    "PowerDomainSet",
    "TECH_28NM_FDSOI",
    "TECH_40NM_LP_LVT",
    "TECHNOLOGIES",
    "Technology",
    "get_technology",
    "VoltageScalingResult",
    "minimum_voltage_for_frequency",
    "minimum_voltage_for_period",
    "scale_voltage",
]
