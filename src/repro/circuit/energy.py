"""Switched-capacitance energy and leakage models.

Dynamic energy of a digital block follows ``E = alpha * C * V^2`` where
``alpha`` is the switching activity, ``C`` the switched capacitance and ``V``
the supply voltage.  The structural arithmetic models count *cell toggles*
directly, so the energy of one operation is simply the number of toggles
multiplied by the per-toggle reference energy scaled quadratically with
voltage.

Leakage is modelled as a per-cell static power with an exponential supply
dependence; the paper neglects leakage in its analytical equations but it is
useful for the ablation studies, so it is available (and small) here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .technology import Technology


def voltage_energy_scale(technology: Technology, voltage: float) -> float:
    """Quadratic energy scale factor of ``voltage`` vs. the nominal supply."""
    if voltage <= 0:
        raise ValueError("voltage must be positive")
    return (voltage / technology.nominal_voltage) ** 2


def toggle_energy_pj(technology: Technology, toggles: float, voltage: float) -> float:
    """Dynamic energy (pJ) of ``toggles`` reference-cell toggles at ``voltage``."""
    if toggles < 0:
        raise ValueError("toggles must be non-negative")
    energy_fj = (
        toggles
        * technology.unit_energy_fj
        * technology.wire_factor
        * voltage_energy_scale(technology, voltage)
    )
    return energy_fj / 1000.0


def leakage_power_uw(technology: Technology, cells: float, voltage: float) -> float:
    """Leakage power (uW) of ``cells`` reference cells at ``voltage``.

    Uses a simple exponential DIBL-style dependence: leakage halves for every
    ~200 mV of supply reduction, which is adequate for the sensitivity studies
    (the paper's analytical model drops leakage altogether).
    """
    if cells < 0:
        raise ValueError("cells must be non-negative")
    if voltage <= 0:
        raise ValueError("voltage must be positive")
    dibl_scale = math.exp((voltage - technology.nominal_voltage) / 0.29)
    return cells * technology.leakage_per_cell_nw * dibl_scale / 1000.0


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting for one operation (or one batch of operations).

    Attributes
    ----------
    dynamic_pj:
        Dynamic (switching) energy in picojoules.
    leakage_pj:
        Leakage energy integrated over the operation's duration, picojoules.
    operations:
        Number of logical operations (words) covered by this report.
    """

    dynamic_pj: float
    leakage_pj: float
    operations: int = 1

    @property
    def total_pj(self) -> float:
        """Total energy in picojoules."""
        return self.dynamic_pj + self.leakage_pj

    @property
    def per_operation_pj(self) -> float:
        """Energy per logical operation in picojoules."""
        if self.operations <= 0:
            raise ValueError("operations must be positive")
        return self.total_pj / self.operations

    def __add__(self, other: "EnergyReport") -> "EnergyReport":
        return EnergyReport(
            dynamic_pj=self.dynamic_pj + other.dynamic_pj,
            leakage_pj=self.leakage_pj + other.leakage_pj,
            operations=self.operations + other.operations,
        )

    def scaled(self, factor: float) -> "EnergyReport":
        """Return a copy with energies multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return EnergyReport(
            dynamic_pj=self.dynamic_pj * factor,
            leakage_pj=self.leakage_pj * factor,
            operations=self.operations,
        )


def dynamic_power_mw(
    switched_capacitance_pf: float,
    activity: float,
    frequency_mhz: float,
    voltage: float,
) -> float:
    """Evaluate ``P = alpha * C * f * V^2`` in engineering units.

    Parameters are in pF, dimensionless activity, MHz and volts; the result
    is in milliwatts.  This is the primitive behind the analytical DAS/DVAS/
    DVAFS power equations of :mod:`repro.core.power_model`.
    """
    if switched_capacitance_pf < 0:
        raise ValueError("switched_capacitance_pf must be non-negative")
    if activity < 0:
        raise ValueError("activity must be non-negative")
    if frequency_mhz < 0:
        raise ValueError("frequency_mhz must be non-negative")
    if voltage < 0:
        raise ValueError("voltage must be non-negative")
    # pF * MHz * V^2 = 1e-12 F * 1e6 Hz * V^2 = 1e-6 W = uW; convert to mW.
    return activity * switched_capacitance_pf * frequency_mhz * voltage**2 * 1e-3
