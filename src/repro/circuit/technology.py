"""Technology parameter sets for the circuit-level models.

The paper evaluates DVAFS in two silicon technologies:

* a 40 nm LP (low-power) LVT library at a nominal 1.1 V supply for the
  stand-alone multiplier and the SIMD processor (Section III), and
* a 28 nm FDSOI technology for the Envision CNN processor (Section V).

We do not have access to the foundry libraries, so each technology is
described by a small set of behavioural parameters that feed the
alpha-power-law delay model (:mod:`repro.circuit.delay`) and the switched
capacitance energy model (:mod:`repro.circuit.energy`).  The parameters are
calibrated such that the paper's anchor points are reproduced:

* the 16 b Booth-Wallace multiplier meets a 2 ns cycle (500 MHz) at 1.1 V and
  consumes 2.16 pJ/word,
* scaling the supply from 1.1 V to roughly 0.9 V doubles the gate delay
  (the DVAS 4 b operating point), and scaling to roughly 0.75 V stretches it
  by about 8x (the DVAFS 4x4 b operating point).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Technology:
    """Behavioural description of a CMOS technology corner.

    Attributes
    ----------
    name:
        Human readable identifier, e.g. ``"40nm-LP-LVT"``.
    nominal_voltage:
        Nominal supply voltage in volts.  Delay and energy figures of the
        standard cells are referenced to this voltage.
    threshold_voltage:
        Effective threshold voltage in volts used by the alpha-power-law
        delay model.  For low-power libraries operated close to threshold
        this is intentionally high, which produces the steep delay increase
        at low supplies reported in the paper.
    min_voltage:
        Lowest supply the library is characterised for.  Voltage-scaling
        solvers clamp to this value.
    max_voltage:
        Highest supply the library is characterised for.
    alpha:
        Velocity-saturation exponent of the alpha-power-law delay model.
    unit_delay_ps:
        Delay of one reference logic level (a loaded full-adder stage
        including local wiring) at the nominal voltage, in picoseconds.
    unit_energy_fj:
        Switching energy of one reference cell toggle at the nominal
        voltage, in femtojoules.
    leakage_per_cell_nw:
        Leakage power per reference cell at the nominal voltage, in
        nanowatts.
    wire_factor:
        Multiplicative factor applied to delay and energy to account for the
        conservative wire models used for synthesis in the paper.
    """

    name: str
    nominal_voltage: float
    threshold_voltage: float
    min_voltage: float
    max_voltage: float
    alpha: float
    unit_delay_ps: float
    unit_energy_fj: float
    leakage_per_cell_nw: float
    wire_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.nominal_voltage <= self.threshold_voltage:
            raise ValueError(
                "nominal_voltage must exceed threshold_voltage "
                f"({self.nominal_voltage} <= {self.threshold_voltage})"
            )
        if self.min_voltage <= self.threshold_voltage:
            raise ValueError(
                "min_voltage must exceed threshold_voltage for the "
                "alpha-power-law model to stay finite"
            )
        if self.min_voltage > self.max_voltage:
            raise ValueError("min_voltage must not exceed max_voltage")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.unit_delay_ps <= 0 or self.unit_energy_fj <= 0:
            raise ValueError("unit delay and energy must be positive")

    def clamp_voltage(self, voltage: float) -> float:
        """Clamp ``voltage`` to the characterised supply range."""
        return min(max(voltage, self.min_voltage), self.max_voltage)

    def with_overrides(self, **kwargs: float) -> "Technology":
        """Return a copy of the technology with selected fields replaced."""
        return replace(self, **kwargs)


#: 40 nm low-power LVT corner used for the multiplier and SIMD studies
#: (Section III of the paper).  Calibrated so that the delay stretch from
#: 1.1 V to 0.9 V is ~2x and from 1.1 V to 0.75 V is ~8x, matching the DVAS
#: and DVAFS 4 b supply values reported in Fig. 2c.
TECH_40NM_LP_LVT = Technology(
    name="40nm-LP-LVT",
    nominal_voltage=1.1,
    threshold_voltage=0.65,
    min_voltage=0.70,
    max_voltage=1.21,
    alpha=1.5,
    unit_delay_ps=82.0,
    unit_energy_fj=2.45,
    leakage_per_cell_nw=0.5,
    wire_factor=1.15,
)

#: 28 nm FDSOI corner used for the Envision processor (Section V).  Envision
#: scales its core supply between 0.65 V and 1.1 V (Table III).
TECH_28NM_FDSOI = Technology(
    name="28nm-FDSOI",
    nominal_voltage=1.1,
    threshold_voltage=0.45,
    min_voltage=0.60,
    max_voltage=1.15,
    alpha=1.35,
    unit_delay_ps=70.0,
    unit_energy_fj=1.1,
    leakage_per_cell_nw=0.3,
    wire_factor=1.10,
)

#: Registry of known technologies keyed by name.
TECHNOLOGIES = {
    TECH_40NM_LP_LVT.name: TECH_40NM_LP_LVT,
    TECH_28NM_FDSOI.name: TECH_28NM_FDSOI,
}


def get_technology(name: str) -> Technology:
    """Look up a technology by name.

    Raises
    ------
    KeyError
        If ``name`` is not a registered technology.
    """
    try:
        return TECHNOLOGIES[name]
    except KeyError as exc:
        known = ", ".join(sorted(TECHNOLOGIES))
        raise KeyError(f"unknown technology {name!r}; known: {known}") from exc
