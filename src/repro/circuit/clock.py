"""Clock configuration helpers.

The DVAFS experiments keep computational *throughput* constant while varying
the number of words processed per cycle (the subword parallelism N); the
clock frequency therefore scales as ``f = f_base / N``.  These helpers keep
the unit conversions in one place.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClockConfig:
    """A clock operating point.

    Attributes
    ----------
    frequency_mhz:
        Clock frequency in MHz.
    words_per_cycle:
        Number of words processed per cycle (the subword parallelism N).
    """

    frequency_mhz: float
    words_per_cycle: int = 1

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise ValueError("frequency_mhz must be positive")
        if self.words_per_cycle < 1:
            raise ValueError("words_per_cycle must be at least 1")

    @property
    def period_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1000.0 / self.frequency_mhz

    @property
    def throughput_mops(self) -> float:
        """Computational throughput in million operations (words) per second."""
        return self.frequency_mhz * self.words_per_cycle


def constant_throughput_frequency(
    base_frequency_mhz: float, subword_parallelism: int
) -> float:
    """Frequency keeping throughput constant with ``subword_parallelism`` words/cycle.

    This is the paper's ``T = 1x500MHz = 2x250MHz = 4x125MHz = 500 MOPS``
    schedule for the multiplier study and the 200 MHz -> 50 MHz scaling of
    Envision at constant 76 GOPS.
    """
    if base_frequency_mhz <= 0:
        raise ValueError("base_frequency_mhz must be positive")
    if subword_parallelism < 1:
        raise ValueError("subword_parallelism must be at least 1")
    return base_frequency_mhz / subword_parallelism


def constant_throughput_clock(
    base_frequency_mhz: float, subword_parallelism: int
) -> ClockConfig:
    """Clock configuration at constant throughput for a given parallelism."""
    return ClockConfig(
        frequency_mhz=constant_throughput_frequency(
            base_frequency_mhz, subword_parallelism
        ),
        words_per_cycle=subword_parallelism,
    )
