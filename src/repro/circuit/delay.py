"""Alpha-power-law gate-delay model.

The DVAS/DVAFS voltage scaling gains hinge on how gate delay stretches as the
supply voltage is lowered.  We use the classic alpha-power-law MOSFET model
(Sakurai & Newton):

.. math::

    t_d(V) \\propto \\frac{V}{(V - V_{th})^{\\alpha}}

normalised so that the delay at the technology's nominal voltage equals the
characterised ``unit_delay_ps``.  Critical paths are expressed in *logic
levels* (reference cell delays); multiplying by the voltage-dependent unit
delay yields absolute path delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from .technology import Technology


def delay_stretch(technology: Technology, voltage: float) -> float:
    """Relative gate-delay stretch at ``voltage`` vs. the nominal supply.

    Returns a factor >= 1 for voltages below nominal and < 1 above nominal.

    Raises
    ------
    ValueError
        If ``voltage`` does not exceed the technology threshold voltage.
    """
    if voltage <= technology.threshold_voltage:
        raise ValueError(
            f"supply voltage {voltage:.3f} V must exceed the threshold "
            f"voltage {technology.threshold_voltage:.3f} V"
        )
    vdd0 = technology.nominal_voltage
    vth = technology.threshold_voltage
    alpha = technology.alpha
    nominal = vdd0 / (vdd0 - vth) ** alpha
    scaled = voltage / (voltage - vth) ** alpha
    return scaled / nominal


def unit_delay_ps(technology: Technology, voltage: float) -> float:
    """Absolute delay of one reference logic level at ``voltage`` (ps)."""
    return (
        technology.unit_delay_ps
        * technology.wire_factor
        * delay_stretch(technology, voltage)
    )


def path_delay_ns(technology: Technology, logic_levels: float, voltage: float) -> float:
    """Absolute delay of a path of ``logic_levels`` reference levels (ns)."""
    if logic_levels < 0:
        raise ValueError("logic_levels must be non-negative")
    return logic_levels * unit_delay_ps(technology, voltage) / 1000.0


@dataclass(frozen=True)
class CriticalPath:
    """A critical path expressed in reference logic levels.

    The structural arithmetic models (:mod:`repro.arithmetic`) report their
    critical paths as logic depths; this wrapper binds a depth to a
    technology and answers timing questions at arbitrary supply voltages.
    """

    logic_levels: float
    technology: Technology

    def delay_ns(self, voltage: float) -> float:
        """Path delay in nanoseconds at the given supply voltage."""
        return path_delay_ns(self.technology, self.logic_levels, voltage)

    def max_frequency_mhz(self, voltage: float) -> float:
        """Maximum clock frequency (MHz) this path supports at ``voltage``."""
        delay = self.delay_ns(voltage)
        if delay <= 0:
            return float("inf")
        return 1000.0 / delay

    def positive_slack_ns(self, voltage: float, clock_period_ns: float) -> float:
        """Positive slack against ``clock_period_ns`` (negative if failing)."""
        if clock_period_ns <= 0:
            raise ValueError("clock_period_ns must be positive")
        return clock_period_ns - self.delay_ns(voltage)

    def meets_timing(self, voltage: float, clock_period_ns: float) -> bool:
        """Whether the path meets timing at ``voltage`` for the given period."""
        return self.positive_slack_ns(voltage, clock_period_ns) >= 0.0
