"""``python -m repro`` -- unified entry point for the reproduction."""

from .runner.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
