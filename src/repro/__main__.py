"""``python -m repro`` -- unified entry point for the reproduction."""

import sys

from .runner.cli import CliError, main

if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except CliError as error:
        # CliError carries an integer exit code (2 usage / 3 validation /
        # 4 execution), so the interpreter would exit silently; print the
        # message ourselves before letting the code through.
        print(error, file=sys.stderr)
        raise
