"""DVAFS reproduction library.

A from-scratch Python implementation of the systems described in

    Moons, Uytterhoeven, Dehaene, Verhelst,
    "DVAFS: Trading Computational Accuracy for Energy Through
    Dynamic-Voltage-Accuracy-Frequency-Scaling", DATE 2017.

Subpackages
-----------
``repro.arithmetic``
    Fixed point, structural Booth-Wallace multipliers (DAS/DVAS), the
    subword-parallel DVAFS multiplier, MAC units and the approximate
    multiplier baselines of Fig. 3b.
``repro.circuit``
    Technology corners, alpha-power-law delay, energy, voltage scaling and
    power domains.
``repro.core``
    The DVAFS power equations, scaling-parameter extraction (Table I),
    operating points, precision scheduling and Pareto analysis.
``repro.simd``
    The DVAFS-compatible SIMD RISC vector processor of Section III-B
    (ISA, assembler, cycle-level simulator, calibrated power model).
``repro.nn``
    The CNN substrate: layers, LeNet-5/AlexNet/VGG16 topologies, synthetic
    datasets, training, quantisation search and sparsity analysis.
``repro.envision``
    The Envision CNN-processor model of Section V.
``repro.experiments``
    One driver per table/figure of the paper's evaluation.
``repro.runner``
    Experiment orchestration: typed registry, content-addressed result
    cache, process-parallel execution and the ``python -m repro`` CLI.
``repro.api``
    The stable public facade (``run``/``run_all``/``sweep``/``serve``/
    ``list_experiments`` plus the typed error taxonomy) that both the CLI
    and the HTTP service are thin renderers over.
``repro.service``
    The stdlib-only HTTP/JSON service behind ``python -m repro serve``.
"""

from . import analysis, arithmetic, circuit, core, envision, experiments, nn, runner, simd
from . import api
from .arithmetic import BoothWallaceMultiplier, MacUnit, SubwordParallelMultiplier
from .circuit import TECH_28NM_FDSOI, TECH_40NM_LP_LVT, Technology
from .core import (
    DvafsSystem,
    OperatingPoint,
    PAPER_TABLE_I,
    PrecisionScheduler,
    ScalingParameters,
    characterize_multiplier,
    multiplier_energy_curves,
)
from .envision import EnvisionChip, EnvisionScheduler
from .nn import Network, PrecisionSearch, alexnet, lenet5, vgg16
from .simd import SimdPowerModel, SimdProcessor, convolution_kernel

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "api",
    "arithmetic",
    "circuit",
    "core",
    "envision",
    "experiments",
    "nn",
    "runner",
    "simd",
    "BoothWallaceMultiplier",
    "MacUnit",
    "SubwordParallelMultiplier",
    "TECH_28NM_FDSOI",
    "TECH_40NM_LP_LVT",
    "Technology",
    "DvafsSystem",
    "OperatingPoint",
    "PAPER_TABLE_I",
    "PrecisionScheduler",
    "ScalingParameters",
    "characterize_multiplier",
    "multiplier_energy_curves",
    "EnvisionChip",
    "EnvisionScheduler",
    "Network",
    "PrecisionSearch",
    "alexnet",
    "lenet5",
    "vgg16",
    "SimdPowerModel",
    "SimdProcessor",
    "convolution_kernel",
    "__version__",
]
