"""Background jobs: cold runs and sweeps off the request path.

Warm-cache hits are answered synchronously by the run endpoint; anything
that must actually compute becomes a job here.  Jobs execute on a
single job thread (compute stays serialised service-side -- concurrency
*within* a job comes from the runner's existing process-pool executor via
its ``jobs=N`` fan-out) and report per-wave artifact progress through the
runner's observer hook.

Idempotency keys collapse duplicate submissions: re-submitting the same
key returns the original job (so network-level retries of a ``POST``
cannot double-compute), while the same key with a *different* payload is
a conflict.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from .models import ServiceError
from .. import api
from ..runner.service import ExperimentRunner

#: Job lifecycle states, in order.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


@dataclass
class JobRecord:
    """One submitted job and everything ``GET /v1/jobs/{id}`` reports."""

    id: str
    kind: str  # "run" | "sweep"
    experiments: list[str]
    params: dict[str, object]
    grid: dict[str, list[object]] | None
    jobs: int
    request_id: str
    idempotency_key: str | None
    state: str = QUEUED
    created_unix: float = field(default_factory=time.time)
    started_unix: float | None = None
    finished_unix: float | None = None
    error: dict[str, object] | None = None
    progress: dict[str, object] = field(default_factory=dict)
    reports: list[dict[str, object]] | None = None
    sweep: dict[str, object] | None = None

    def to_jsonable(self) -> dict[str, object]:
        document: dict[str, object] = {
            "id": self.id,
            "kind": self.kind,
            "experiments": list(self.experiments),
            "params": dict(self.params),
            "state": self.state,
            "jobs": self.jobs,
            "request_id": self.request_id,
            "created_unix": round(self.created_unix, 3),
            "started_unix": round(self.started_unix, 3) if self.started_unix else None,
            "finished_unix": round(self.finished_unix, 3) if self.finished_unix else None,
            "progress": dict(self.progress),
            "error": dict(self.error) if self.error else None,
        }
        if self.grid is not None:
            document["grid"] = dict(self.grid)
        if self.reports is not None:
            document["reports"] = self.reports
        if self.sweep is not None:
            document["sweep"] = self.sweep
        return document


class JobManager:
    """Submission, idempotency collapse and execution of background jobs."""

    def __init__(self, runner: ExperimentRunner, *, jobs: int = 1):
        self.runner = runner
        self.default_jobs = max(1, jobs)
        self._lock = threading.Lock()
        self._records: dict[str, JobRecord] = {}
        self._order: list[str] = []
        self._by_key: dict[str, tuple[str, str]] = {}  # idempotency key -> (job id, payload digest)
        self._pool = ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-job")
        self._in_flight = 0

    # -- submission -------------------------------------------------------------

    @staticmethod
    def _payload_digest(payload: dict[str, object]) -> str:
        return hashlib.sha256(json.dumps(payload, sort_keys=True, default=str).encode()).hexdigest()

    def submit(
        self,
        *,
        kind: str,
        experiments: list[str],
        params: dict[str, object],
        grid: dict[str, list[object]] | None = None,
        jobs: int | None = None,
        request_id: str = "",
        idempotency_key: str | None = None,
    ) -> tuple[JobRecord, bool]:
        """Queue a job; returns ``(record, created)``.

        ``created`` is ``False`` when an idempotency key collapsed the
        submission onto an existing job.  The same key with a different
        payload is a 409 conflict -- silently returning a job that computes
        something else would be worse than failing.
        """
        digest = self._payload_digest(
            {"kind": kind, "experiments": experiments, "params": params, "grid": grid}
        )
        with self._lock:
            if idempotency_key is not None:
                existing = self._by_key.get(idempotency_key)
                if existing is not None:
                    job_id, known_digest = existing
                    if known_digest != digest:
                        raise ServiceError(
                            409,
                            "idempotency_conflict",
                            f"idempotency key {idempotency_key!r} was already used with a different payload",
                        )
                    return self._records[job_id], False
            record = JobRecord(
                id=f"job-{uuid.uuid4().hex[:12]}",
                kind=kind,
                experiments=list(experiments),
                params=dict(params),
                grid=dict(grid) if grid is not None else None,
                jobs=min(self.default_jobs, jobs) if jobs else self.default_jobs,
                request_id=request_id,
                idempotency_key=idempotency_key,
            )
            self._records[record.id] = record
            self._order.append(record.id)
            if idempotency_key is not None:
                self._by_key[idempotency_key] = (record.id, digest)
            self._in_flight += 1
        self._pool.submit(self._execute, record.id)
        return record, True

    # -- queries ----------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise ServiceError(404, "unknown_job", f"no job {job_id!r}")
        return record

    def listing(self) -> list[dict[str, object]]:
        """Submission-order summaries (no report payloads)."""
        with self._lock:
            records = [self._records[job_id] for job_id in self._order]
        return [
            {
                "id": record.id,
                "kind": record.kind,
                "experiments": record.experiments,
                "state": record.state,
                "created_unix": round(record.created_unix, 3),
            }
            for record in records
        ]

    def counts(self) -> dict[str, int]:
        with self._lock:
            by_state = {state: 0 for state in (QUEUED, RUNNING, DONE, FAILED)}
            for record in self._records.values():
                by_state[record.state] = by_state.get(record.state, 0) + 1
            by_state["in_flight"] = self._in_flight
            return by_state

    # -- execution ---------------------------------------------------------------

    def _observer(self, job_id: str):
        """Bridge runner progress events into the job record, thread-safely."""

        def observe(event: dict[str, object]) -> None:
            with self._lock:
                record = self._records[job_id]
                kind = event.get("event")
                if kind == "planned":
                    record.progress.update(
                        phase="planned",
                        cached=event["cached"],
                        cold=event["cold"],
                        waves=[],
                    )
                elif kind == "artifact_wave":
                    record.progress["phase"] = "artifacts"
                    record.progress.setdefault("waves", []).append(
                        {
                            "level": event["level"],
                            "units": event["units"],
                            "missing": event["missing"],
                            "artifacts": event["artifacts"],
                            "done": False,
                        }
                    )
                elif kind == "artifact_wave_done":
                    for wave in record.progress.get("waves", []):
                        if wave["level"] == event["level"]:
                            wave["done"] = True
                elif kind == "executing":
                    record.progress["phase"] = "executing"
                    record.progress["experiments"] = event["experiments"]
                elif kind == "executed":
                    record.progress["phase"] = "finalizing"

        return observe

    def _execute(self, job_id: str) -> None:
        record = self.get(job_id)
        with self._lock:
            record.state = RUNNING
            record.started_unix = time.time()
        try:
            if record.kind == "sweep":
                outcome = api.sweep(
                    record.experiments[0],
                    record.grid or {},
                    record.params,
                    runner=self.runner,
                    jobs=record.jobs,
                    observer=self._observer(job_id),
                )
                with self._lock:
                    record.sweep = outcome.to_jsonable()
                    record.reports = [report.to_jsonable() for report in outcome.reports]
            else:
                reports = api.run_all(
                    record.experiments,
                    record.params or None,
                    runner=self.runner,
                    jobs=record.jobs,
                    observer=self._observer(job_id),
                )
                with self._lock:
                    record.reports = [report.to_jsonable() for report in reports]
            with self._lock:
                record.state = DONE
                record.progress["phase"] = "done"
        except BaseException as error:  # jobs must never take the worker thread down
            code = getattr(error, "code", "execution_error")
            with self._lock:
                record.state = FAILED
                record.error = {"code": code, "message": str(error)}
                record.progress["phase"] = "failed"
        finally:
            with self._lock:
                record.finished_unix = time.time()
                self._in_flight -= 1

    def close(self, *, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait, cancel_futures=True)
