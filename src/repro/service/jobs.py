"""Background jobs: cold runs and sweeps off the request path.

Warm-cache hits are answered synchronously by the run endpoint; anything
that must actually compute becomes a job here.  Jobs execute on a
single job thread (compute stays serialised service-side -- concurrency
*within* a job comes from the runner's existing process-pool executor via
its ``jobs=N`` fan-out) and report per-wave artifact progress through the
runner's observer hook.

Idempotency keys collapse duplicate submissions: re-submitting the same
key returns the original job (so network-level retries of a ``POST``
cannot double-compute), while the same key with a *different* payload is
a conflict.

Durability and overload (PR 7):

* with a ``state_dir``, every job state transition is journaled to disk
  (fsynced append to ``journal.jsonl``, compacted into ``snapshot.json``
  on startup), so ``GET /v1/jobs`` survives a service restart.  Jobs that
  were queued or running when the process died come back ``interrupted``
  and can be re-run via ``POST /v1/jobs/{id}/retry``.  Journaled records
  never include report/sweep payloads -- results live in the result
  cache, so a re-run of a finished config is a warm hit;
* the queue is bounded: submissions past ``max_queue`` are shed with a
  503 and the stable ``overloaded`` error code plus a ``Retry-After``
  hint, instead of accepting unbounded memory growth;
* :meth:`JobManager.close` drains in-flight jobs for a bounded deadline
  and marks whatever is still unfinished ``interrupted`` (journaled), so
  SIGTERM never silently loses a job.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from .models import ServiceError
from .. import api
from ..faults import fault_point
from ..runner.service import ExperimentRunner

logger = logging.getLogger(__name__)

#: Job lifecycle states, in order (``interrupted`` = the service died or
#: shut down while the job was queued/running; re-runnable via retry).
QUEUED, RUNNING, DONE, FAILED, INTERRUPTED = (
    "queued",
    "running",
    "done",
    "failed",
    "interrupted",
)


@dataclass
class JobRecord:
    """One submitted job and everything ``GET /v1/jobs/{id}`` reports."""

    id: str
    kind: str  # "run" | "sweep"
    experiments: list[str]
    params: dict[str, object]
    grid: dict[str, list[object]] | None
    jobs: int
    request_id: str
    idempotency_key: str | None
    state: str = QUEUED
    created_unix: float = field(default_factory=time.time)
    started_unix: float | None = None
    finished_unix: float | None = None
    error: dict[str, object] | None = None
    progress: dict[str, object] = field(default_factory=dict)
    reports: list[dict[str, object]] | None = None
    sweep: dict[str, object] | None = None

    def to_jsonable(self) -> dict[str, object]:
        document: dict[str, object] = {
            "id": self.id,
            "kind": self.kind,
            "experiments": list(self.experiments),
            "params": dict(self.params),
            "state": self.state,
            "jobs": self.jobs,
            "request_id": self.request_id,
            "created_unix": round(self.created_unix, 3),
            "started_unix": round(self.started_unix, 3) if self.started_unix else None,
            "finished_unix": round(self.finished_unix, 3) if self.finished_unix else None,
            "progress": dict(self.progress),
            "error": dict(self.error) if self.error else None,
        }
        if self.grid is not None:
            document["grid"] = dict(self.grid)
        if self.reports is not None:
            document["reports"] = self.reports
        if self.sweep is not None:
            document["sweep"] = self.sweep
        return document

    def to_journal(self) -> dict[str, object]:
        """The journaled form: full record minus report/sweep payloads.

        Results are reproducible from the result cache, so persisting them
        twice would only bloat the journal; a restarted service reports
        finished jobs with ``"results_persisted": false``.
        """
        document = self.to_jsonable()
        document.pop("reports", None)
        document.pop("sweep", None)
        document["idempotency_key"] = self.idempotency_key
        return document

    @classmethod
    def from_journal(cls, document: dict[str, object]) -> "JobRecord":
        """Rebuild a record from its journaled form (payloads stay absent)."""
        return cls(
            id=str(document["id"]),
            kind=str(document["kind"]),
            experiments=[str(name) for name in document["experiments"]],
            params=dict(document.get("params") or {}),
            grid=dict(document["grid"]) if document.get("grid") is not None else None,
            jobs=int(document.get("jobs") or 1),
            request_id=str(document.get("request_id") or ""),
            idempotency_key=document.get("idempotency_key"),
            state=str(document.get("state") or QUEUED),
            created_unix=float(document.get("created_unix") or 0.0),
            started_unix=document.get("started_unix"),
            finished_unix=document.get("finished_unix"),
            error=dict(document["error"]) if document.get("error") else None,
            progress=dict(document.get("progress") or {}),
        )


class JobJournal:
    """Crash-safe persistence of job records: fsynced append + snapshot.

    Every state transition appends the record's full journaled form as one
    JSON line; startup folds ``snapshot.json`` + ``journal.jsonl``
    (last write per id wins), rewrites the snapshot and truncates the
    journal.  A torn final line (crash mid-append) is skipped -- the
    previous write for that job still holds.
    """

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.snapshot_path = self.root / "snapshot.json"
        self.journal_path = self.root / "journal.jsonl"

    def append(self, document: dict[str, object]) -> None:
        """Durably append one record state (best-effort on a failing disk)."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(self.journal_path, "a") as handle:
                handle.write(json.dumps(document, default=str) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as error:
            logger.warning("job journal append failed (%s); record kept in memory", error)

    def load(self) -> list[dict[str, object]]:
        """Fold snapshot + journal into submission-ordered record documents."""
        documents: dict[str, dict[str, object]] = {}
        try:
            snapshot = json.loads(self.snapshot_path.read_text())
            if isinstance(snapshot, list):
                for document in snapshot:
                    if isinstance(document, dict) and "id" in document:
                        documents[str(document["id"])] = document
        except (OSError, ValueError):
            pass
        try:
            lines = self.journal_path.read_text().splitlines()
        except OSError:
            lines = []
        for line in lines:
            try:
                document = json.loads(line)
            except ValueError:  # torn tail line from a crash mid-append
                continue
            if isinstance(document, dict) and "id" in document:
                documents[str(document["id"])] = document
        return sorted(documents.values(), key=lambda doc: float(doc.get("created_unix") or 0.0))

    def compact(self, documents: list[dict[str, object]]) -> None:
        """Rewrite the snapshot atomically and truncate the journal."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(dir=self.root, prefix=".snapshot-", suffix=".tmp")
            with os.fdopen(descriptor, "w") as handle:
                handle.write(json.dumps(documents, default=str, indent=1))
            os.replace(temp_name, self.snapshot_path)
            with open(self.journal_path, "w") as handle:
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as error:
            logger.warning("job journal compaction failed (%s)", error)


class JobManager:
    """Submission, idempotency collapse and execution of background jobs."""

    def __init__(
        self,
        runner: ExperimentRunner,
        *,
        jobs: int = 1,
        max_queue: int = 64,
        state_dir: Path | str | None = None,
    ):
        self.runner = runner
        self.default_jobs = max(1, jobs)
        self.max_queue = max(1, max_queue)
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._records: dict[str, JobRecord] = {}
        self._order: list[str] = []
        self._by_key: dict[str, tuple[str, str]] = {}  # idempotency key -> (job id, payload digest)
        self._pool = ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-job")
        self._in_flight = 0
        self._journal = JobJournal(state_dir) if state_dir is not None else None
        if self._journal is not None:
            self._restore()

    def _restore(self) -> None:
        """Replay the journal: finished jobs verbatim, unfinished -> interrupted."""
        for document in self._journal.load():
            try:
                record = JobRecord.from_journal(document)
            except (KeyError, TypeError, ValueError):
                logger.warning("skipping malformed journaled job record")
                continue
            if record.state in (QUEUED, RUNNING):
                record.state = INTERRUPTED
                record.finished_unix = record.finished_unix or time.time()
                record.error = {
                    "code": "interrupted",
                    "message": "the service stopped while this job was in flight; retry to re-run",
                }
                record.progress["phase"] = "interrupted"
            self._records[record.id] = record
            self._order.append(record.id)
            if record.idempotency_key is not None:
                digest = self._payload_digest(
                    {
                        "kind": record.kind,
                        "experiments": record.experiments,
                        "params": record.params,
                        "grid": record.grid,
                    }
                )
                self._by_key[record.idempotency_key] = (record.id, digest)
        self._journal.compact([self._records[job_id].to_journal() for job_id in self._order])

    def _journal_append(self, record: JobRecord) -> None:
        """Persist one state transition (no-op without a state dir)."""
        if self._journal is not None:
            self._journal.append(record.to_journal())

    # -- submission -------------------------------------------------------------

    @staticmethod
    def _payload_digest(payload: dict[str, object]) -> str:
        return hashlib.sha256(json.dumps(payload, sort_keys=True, default=str).encode()).hexdigest()

    def submit(
        self,
        *,
        kind: str,
        experiments: list[str],
        params: dict[str, object],
        grid: dict[str, list[object]] | None = None,
        jobs: int | None = None,
        request_id: str = "",
        idempotency_key: str | None = None,
    ) -> tuple[JobRecord, bool]:
        """Queue a job; returns ``(record, created)``.

        ``created`` is ``False`` when an idempotency key collapsed the
        submission onto an existing job.  The same key with a different
        payload is a 409 conflict -- silently returning a job that computes
        something else would be worse than failing.
        """
        digest = self._payload_digest(
            {"kind": kind, "experiments": experiments, "params": params, "grid": grid}
        )
        with self._lock:
            if idempotency_key is not None:
                existing = self._by_key.get(idempotency_key)
                if existing is not None:
                    job_id, known_digest = existing
                    if known_digest != digest:
                        raise ServiceError(
                            409,
                            "idempotency_conflict",
                            f"idempotency key {idempotency_key!r} was already used with a different payload",
                        )
                    return self._records[job_id], False
            self._check_capacity()
            record = JobRecord(
                id=f"job-{uuid.uuid4().hex[:12]}",
                kind=kind,
                experiments=list(experiments),
                params=dict(params),
                grid=dict(grid) if grid is not None else None,
                jobs=min(self.default_jobs, jobs) if jobs else self.default_jobs,
                request_id=request_id,
                idempotency_key=idempotency_key,
            )
            self._records[record.id] = record
            self._order.append(record.id)
            if idempotency_key is not None:
                self._by_key[idempotency_key] = (record.id, digest)
            self._in_flight += 1
            self._journal_append(record)
        self._pool.submit(self._execute, record.id)
        return record, True

    def _check_capacity(self) -> None:
        """Shed load once the queue is full (called with the lock held)."""
        if self._in_flight < self.max_queue:
            return
        # One in-flight job is actively computing; everything else waits
        # behind it, so "queue length x a nominal per-job minute" is an
        # honest first-order hint for when capacity frees up.
        raise ServiceError(
            503,
            "overloaded",
            f"job queue is full ({self._in_flight} in flight, limit {self.max_queue}); retry later",
            retry_after=min(300.0, 5.0 * self._in_flight),
        )

    def resubmit(self, job_id: str, *, request_id: str = "") -> JobRecord:
        """Re-queue an ``interrupted``/``failed`` job for a fresh run.

        The original record is reset in place (same id, same payload), so a
        client that discovered the interruption via ``GET /v1/jobs`` can
        retry without re-posting the payload.  Finished configs replay
        from the result cache, so retrying a job whose work actually
        completed before the crash is a warm no-op.
        """
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise ServiceError(404, "unknown_job", f"no job {job_id!r}")
            if record.state not in (INTERRUPTED, FAILED):
                raise ServiceError(
                    409,
                    "not_retryable",
                    f"job {job_id!r} is {record.state}; only interrupted/failed jobs can be retried",
                )
            self._check_capacity()
            record.state = QUEUED
            record.started_unix = None
            record.finished_unix = None
            record.error = None
            record.progress = {}
            record.reports = None
            record.sweep = None
            if request_id:
                record.request_id = request_id
            self._in_flight += 1
            self._journal_append(record)
        self._pool.submit(self._execute, record.id)
        return record

    # -- queries ----------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise ServiceError(404, "unknown_job", f"no job {job_id!r}")
        return record

    def listing(self) -> list[dict[str, object]]:
        """Submission-order summaries (no report payloads)."""
        with self._lock:
            records = [self._records[job_id] for job_id in self._order]
        return [
            {
                "id": record.id,
                "kind": record.kind,
                "experiments": record.experiments,
                "state": record.state,
                "created_unix": round(record.created_unix, 3),
            }
            for record in records
        ]

    def counts(self) -> dict[str, int]:
        with self._lock:
            by_state = {state: 0 for state in (QUEUED, RUNNING, DONE, FAILED, INTERRUPTED)}
            for record in self._records.values():
                by_state[record.state] = by_state.get(record.state, 0) + 1
            by_state["in_flight"] = self._in_flight
            return by_state

    # -- execution ---------------------------------------------------------------

    def _observer(self, job_id: str):
        """Bridge runner progress events into the job record, thread-safely."""

        def observe(event: dict[str, object]) -> None:
            with self._lock:
                record = self._records[job_id]
                kind = event.get("event")
                if kind == "planned":
                    record.progress.update(
                        phase="planned",
                        cached=event["cached"],
                        cold=event["cold"],
                        waves=[],
                    )
                elif kind == "artifact_wave":
                    record.progress["phase"] = "artifacts"
                    record.progress.setdefault("waves", []).append(
                        {
                            "level": event["level"],
                            "units": event["units"],
                            "missing": event["missing"],
                            "artifacts": event["artifacts"],
                            "done": False,
                        }
                    )
                elif kind == "artifact_wave_done":
                    for wave in record.progress.get("waves", []):
                        if wave["level"] == event["level"]:
                            wave["done"] = True
                elif kind == "executing":
                    record.progress["phase"] = "executing"
                    record.progress["experiments"] = event["experiments"]
                elif kind == "executed":
                    record.progress["phase"] = "finalizing"

        return observe

    def _execute(self, job_id: str) -> None:
        record = self.get(job_id)
        with self._lock:
            if record.state != QUEUED:  # cancelled/interrupted while queued
                return
            record.state = RUNNING
            record.started_unix = time.time()
            self._journal_append(record)
        try:
            fault_point("service.job", key=job_id)
            if record.kind == "sweep":
                outcome = api.sweep(
                    record.experiments[0],
                    record.grid or {},
                    record.params,
                    runner=self.runner,
                    jobs=record.jobs,
                    observer=self._observer(job_id),
                )
                with self._lock:
                    record.sweep = outcome.to_jsonable()
                    record.reports = [report.to_jsonable() for report in outcome.reports]
            else:
                reports = api.run_all(
                    record.experiments,
                    record.params or None,
                    runner=self.runner,
                    jobs=record.jobs,
                    observer=self._observer(job_id),
                )
                with self._lock:
                    record.reports = [report.to_jsonable() for report in reports]
            with self._lock:
                record.state = DONE
                record.progress["phase"] = "done"
        except BaseException as error:  # jobs must never take the worker thread down
            code = getattr(error, "code", "execution_error")
            with self._lock:
                record.state = FAILED
                record.error = {"code": code, "message": str(error)}
                record.progress["phase"] = "failed"
        finally:
            with self._lock:
                record.finished_unix = time.time()
                self._in_flight -= 1
                self._journal_append(record)
                self._drained.notify_all()

    def close(self, *, wait: bool = True, drain_seconds: float = 10.0) -> int:
        """Drain in-flight jobs, then shut the worker thread down.

        Waits up to ``drain_seconds`` (``wait=False`` skips the wait) for
        in-flight jobs to finish; whatever is still queued or running at
        the deadline is marked ``interrupted`` (and journaled) so a client
        polling ``GET /v1/jobs`` sees an honest terminal state and can
        retry.  Returns the number of jobs interrupted.
        """
        if wait and drain_seconds > 0:
            deadline = time.monotonic() + drain_seconds
            with self._drained:
                while self._in_flight > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._drained.wait(timeout=remaining):
                        break
        interrupted = 0
        with self._lock:
            for record in self._records.values():
                if record.state in (QUEUED, RUNNING):
                    record.state = INTERRUPTED
                    record.finished_unix = time.time()
                    record.error = {
                        "code": "interrupted",
                        "message": "the service shut down before this job finished; retry to re-run",
                    }
                    record.progress["phase"] = "interrupted"
                    interrupted += 1
                    self._journal_append(record)
        # cancel_futures drops still-queued work; a genuinely hung running
        # job cannot be force-killed (it is a thread), so we do not block
        # on it -- its record already says interrupted.
        self._pool.shutdown(wait=False, cancel_futures=True)
        return interrupted
