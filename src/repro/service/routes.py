"""Route table and middleware pipeline of the reproduction service.

:class:`ServiceApp` is the *app* the transport layer drives: it owns the
route table (method + path template -> handler) and runs every request
through one pipeline -- request-ID assignment, token-bucket rate
limiting (``/v1/health`` exempt so load-balancer probes always pass),
dispatch, error mapping, metrics and the access log.  Handlers stay tiny
because validation and execution live in :mod:`repro.api`; blocking work
(cache probes) is pushed off the event loop onto a thread.
"""

from __future__ import annotations

import asyncio
import math
import os
import re
import time
from typing import Awaitable, Callable

from .jobs import JobManager
from .metrics import ServiceMetrics
from .middleware import TokenBucket, log_request, make_request_id
from .models import (
    JobRequest,
    RunRequest,
    ServiceError,
    error_body,
    error_from_exception,
    experiments_response,
    run_response,
)
from .server import Request, Response
from .. import api
from ..runner.artifacts import load_stats
from ..runner.backends import MemoryBackend
from ..runner.cache import ResultCache
from ..runner.service import ExperimentRunner, RunReport

#: Byte budget of the in-memory warm-path L1 (0 disables it).
WARM_CACHE_ENV = "REPRO_WARM_CACHE_BYTES"
DEFAULT_WARM_CACHE_BYTES = 32 * 1024 * 1024


def _warm_cache_bytes() -> int:
    value = os.environ.get(WARM_CACHE_ENV)
    if not value:
        return DEFAULT_WARM_CACHE_BYTES
    try:
        return max(0, int(value))
    except ValueError:
        return DEFAULT_WARM_CACHE_BYTES

Handler = Callable[[Request, dict[str, str]], Awaitable[Response]]


def _compile(template: str) -> re.Pattern[str]:
    """``/v1/jobs/{id}`` -> a regex capturing ``id`` (no slashes inside)."""
    pattern = re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", template)
    return re.compile(f"^{pattern}$")


class ServiceApp:
    """The HTTP application: routes + the per-request middleware pipeline."""

    def __init__(
        self,
        runner: ExperimentRunner,
        *,
        jobs: int = 1,
        rate_limit: float = 0.0,
        rate_burst: int | None = None,
        max_queue: int = 64,
        drain_seconds: float = 10.0,
        state_dir: str | None = None,
    ):
        self.runner = runner
        self.metrics = ServiceMetrics()
        # In-memory L1 in front of the disk store: repeated warm probes for
        # the same address skip the disk read entirely.  Entries are
        # content-addressed, so a stale L1 entry can never serve wrong rows.
        warm_bytes = _warm_cache_bytes()
        self.warm_cache: ResultCache | None = (
            ResultCache(backend=MemoryBackend(), max_bytes=warm_bytes)
            if warm_bytes > 0 and runner.use_cache
            else None
        )
        self.jobs = JobManager(runner, jobs=jobs, max_queue=max_queue, state_dir=state_dir)
        self.drain_seconds = drain_seconds
        self.metrics.job_counts = self.jobs.counts
        self.limiter = TokenBucket(rate_limit, rate_burst) if rate_limit > 0 else None
        self._routes: list[tuple[str, str, re.Pattern[str], Handler]] = [
            (method, template, _compile(template), handler)
            for method, template, handler in (
                ("GET", "/v1/health", self.get_health),
                ("GET", "/v1/health/live", self.get_health_live),
                ("GET", "/v1/health/ready", self.get_health_ready),
                ("GET", "/v1/experiments", self.get_experiments),
                ("GET", "/v1/metrics", self.get_metrics),
                ("POST", "/v1/experiments/{name}/run", self.post_run),
                ("POST", "/v1/jobs", self.post_job),
                ("GET", "/v1/jobs", self.get_jobs),
                ("GET", "/v1/jobs/{id}", self.get_job),
                ("POST", "/v1/jobs/{id}/retry", self.post_job_retry),
            )
        ]

    # -- middleware pipeline -----------------------------------------------------

    def _match(self, request: Request) -> tuple[str, Handler, dict[str, str]]:
        """Route label (``"METHOD /template"``), handler and path params.

        The label is what metrics are recorded under -- always the
        template, never the raw path, so cardinality stays bounded.
        Raises 405 (with the allowed methods) when the path exists under
        another method, 404 when no template matches at all.
        """
        allowed: list[str] = []
        for method, template, pattern, handler in self._routes:
            found = pattern.match(request.path)
            if not found:
                continue
            if method == request.method:
                return f"{method} {template}", handler, found.groupdict()
            allowed.append(method)
        if allowed:
            raise ServiceError(
                405,
                "method_not_allowed",
                f"{request.method} not allowed on {request.path}; allowed: {', '.join(sorted(set(allowed)))}",
            )
        raise ServiceError(404, "unknown_route", f"no route for {request.method} {request.path}")

    async def handle(self, request: Request) -> Response:
        """One request through the full pipeline; never raises."""
        loop = asyncio.get_running_loop()
        start = loop.time()
        request.request_id = make_request_id(request.header("x-request-id"))
        route = "unmatched"
        try:
            route, handler, path_params = self._match(request)
            # Bound-method equality (not identity: each attribute access
            # builds a fresh method object) keeps the health probes exempt.
            if self.limiter is not None and handler not in (
                self.get_health,
                self.get_health_live,
                self.get_health_ready,
            ):
                retry_after = self.limiter.check(request.client)
                if retry_after > 0:
                    raise ServiceError(
                        429,
                        "rate_limited",
                        f"request rate exceeds {self.limiter.rate:g}/s per client; retry later",
                        retry_after=retry_after,
                    )
            response = await handler(request, path_params)
        except BaseException as error:
            failure = error_from_exception(error)
            response = Response(failure.status, error_body(failure, request.request_id))
            if failure.retry_after is not None:
                response.headers["retry-after"] = str(max(1, math.ceil(failure.retry_after)))
        response.headers.setdefault("x-request-id", request.request_id)
        elapsed = loop.time() - start
        self.metrics.record_request(route, response.status, elapsed)
        log_request(request.request_id, request.client, request.method, request.path, response.status, elapsed)
        return response

    # -- handlers ----------------------------------------------------------------

    async def get_health(self, request: Request, _params: dict[str, str]) -> Response:
        return Response(200, {"status": "ok", "request_id": request.request_id})

    async def get_health_live(self, request: Request, _params: dict[str, str]) -> Response:
        """Liveness: the process is up and serving its event loop.  Nothing else."""
        return Response(200, {"status": "ok", "request_id": request.request_id})

    async def get_health_ready(self, request: Request, _params: dict[str, str]) -> Response:
        """Readiness: liveness plus store-backend reachability.

        A tiered store with its circuit open (or an unreachable server)
        reports ``degraded`` -- still HTTP 200, because a degraded service
        keeps answering from the local tier; degraded is not dead.  Plain
        local backends are always ``ready``.
        """
        body: dict[str, object] = {"status": "ready", "request_id": request.request_id}
        probe = getattr(self.runner.cache.backend, "health", None)
        if probe is not None:
            # The probe talks TCP (when the breaker allows): off the loop.
            health = await asyncio.get_running_loop().run_in_executor(None, probe)
            body["store_backend"] = health
            if not health.get("reachable") or health.get("breaker_state") != "closed":
                body["status"] = "degraded"
        return Response(200, body)

    async def get_experiments(self, request: Request, _params: dict[str, str]) -> Response:
        listing = await asyncio.get_running_loop().run_in_executor(
            None, lambda: api.list_experiments(runner=self.runner)
        )
        return Response(200, experiments_response(listing))

    async def get_metrics(self, _request: Request, _params: dict[str, str]) -> Response:
        snapshot = self.metrics.snapshot()
        root = self.runner.cache.root
        if root is not None:
            # Persisted store counters (hits/claims/evictions across *all*
            # processes sharing the store), distinct from the per-service
            # request counters above.
            stats = await asyncio.get_running_loop().run_in_executor(None, lambda: load_stats(root))
            snapshot["stores"] = {"root": str(root), **stats.to_document()}
        status = getattr(self.runner.cache.backend, "remote_status", None)
        if status is not None:
            # Live networked-store gauges (no TCP probe): breaker state,
            # degraded wall-clock, cumulative remote traffic.
            snapshot["store_backend"] = status()
        return Response(200, snapshot)

    def _warm_lookup(self, name: str, params: dict[str, object] | None) -> tuple[RunReport | None, bool]:
        """``(cached report or None, served from the in-memory L1?)``.

        Probes the L1 first, falls back to the disk store (populating the
        L1 on a hit) and raises the same validation errors as
        :meth:`ExperimentRunner.lookup`.
        """
        if self.warm_cache is None:
            return self.runner.lookup(name, params), False
        config, key, _fingerprint = self.runner.address(name, params)
        start = time.perf_counter()
        entry = self.warm_cache.get(name, key)
        from_memory = entry is not None
        if entry is None:
            entry = self.runner.cache.get(name, key)
            if entry is not None:
                try:
                    self.warm_cache.put(key, entry)
                except Exception:  # best effort: L1 population never fails a probe
                    pass
        if entry is None:
            return None, False
        report = RunReport(
            name=name,
            rows=entry.rows,
            config=config,
            cached=True,
            elapsed_seconds=time.perf_counter() - start,
            compute_seconds=entry.elapsed_seconds,
            key=key,
            fingerprint=entry.fingerprint,
        )
        return report, from_memory

    async def post_run(self, request: Request, path_params: dict[str, str]) -> Response:
        """Warm hits answer synchronously; cold configs become jobs."""
        name = path_params["name"]
        body = RunRequest.from_body(request.body)
        report, from_memory = await asyncio.get_running_loop().run_in_executor(
            None, lambda: self._warm_lookup(name, body.params)
        )
        self.metrics.record_cache(hit=report is not None, warm=from_memory)
        if report is not None:
            return Response(200, run_response(report, request.request_id))
        record, _created = self.jobs.submit(
            kind="run",
            experiments=[name],
            params=body.params,
            request_id=request.request_id,
            idempotency_key=request.header("idempotency-key"),
        )
        return Response(
            202,
            {"job": record.to_jsonable(), "request_id": request.request_id},
            headers={"location": f"/v1/jobs/{record.id}"},
        )

    async def post_job(self, request: Request, _params: dict[str, str]) -> Response:
        body = JobRequest.from_body(request.body)
        loop = asyncio.get_running_loop()
        if body.grid is not None:
            # Validate before queueing so schema errors are a synchronous 400.
            await loop.run_in_executor(
                None, lambda: api.validate_grid(body.experiment, body.grid, runner=self.runner)
            )
            await loop.run_in_executor(
                None, lambda: api.validate_params(body.experiment, body.params, runner=self.runner)
            )
            experiments = [body.experiment]
            kind = "sweep"
        else:
            experiments = (
                list(self.runner.registry) if body.experiment == "all" else [body.experiment]
            )
            if body.params and len(experiments) != 1:
                raise ServiceError(
                    400, "invalid_body", "shared params require a single experiment, not 'all'"
                )
            for target in experiments:
                await loop.run_in_executor(
                    None, lambda t=target: api.validate_params(t, body.params, runner=self.runner)
                )
            kind = "run"
        record, created = self.jobs.submit(
            kind=kind,
            experiments=experiments,
            params=body.params,
            grid=body.grid,
            jobs=body.jobs,
            request_id=request.request_id,
            idempotency_key=request.header("idempotency-key"),
        )
        return Response(
            202 if created else 200,
            {"job": record.to_jsonable(), "created": created, "request_id": request.request_id},
            headers={"location": f"/v1/jobs/{record.id}"},
        )

    async def get_jobs(self, _request: Request, _params: dict[str, str]) -> Response:
        return Response(200, {"jobs": self.jobs.listing()})

    async def get_job(self, _request: Request, path_params: dict[str, str]) -> Response:
        return Response(200, self.jobs.get(path_params["id"]).to_jsonable())

    async def post_job_retry(self, request: Request, path_params: dict[str, str]) -> Response:
        """Re-queue an interrupted/failed job (202) under its original id."""
        record = self.jobs.resubmit(path_params["id"], request_id=request.request_id)
        return Response(
            202,
            {"job": record.to_jsonable(), "request_id": request.request_id},
            headers={"location": f"/v1/jobs/{record.id}"},
        )

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        self.jobs.close(drain_seconds=self.drain_seconds)


def build_app(
    runner: ExperimentRunner | None = None,
    *,
    jobs: int = 1,
    rate_limit: float = 0.0,
    rate_burst: int | None = None,
    max_queue: int = 64,
    drain_seconds: float = 10.0,
    state_dir: str | None = None,
) -> ServiceApp:
    """The app ``repro.api.serve`` (and the test harness) boots."""
    return ServiceApp(
        runner if runner is not None else api.make_runner(),
        jobs=jobs,
        rate_limit=rate_limit,
        rate_burst=rate_burst,
        max_queue=max_queue,
        drain_seconds=drain_seconds,
        state_dir=state_dir,
    )
