"""Minimal asyncio HTTP/1.1 transport for the reproduction service.

Hand-rolled on ``asyncio.start_server`` because the repo's policy is zero
runtime dependencies beyond numpy: requests are parsed from the raw
stream (request line + headers + ``Content-Length`` body), responses are
JSON with explicit lengths, and HTTP/1.1 keep-alive is honoured so a
client can pipeline warm-cache hits over one connection.

The transport knows nothing about experiments -- it hands
:class:`Request` objects to an *app* exposing ``async handle(request) ->
Response`` (see :class:`repro.service.routes.ServiceApp`) and writes
whatever comes back.  :class:`BackgroundServer` runs the same loop on a
daemon thread for tests and benchmarks.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

#: Hard caps keeping a misbehaving client from ballooning memory.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request as the routing layer sees it."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes
    client: str = ""
    request_id: str = ""

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)


@dataclass
class Response:
    """One response: status + JSON-ready payload (+ extra headers)."""

    status: int
    payload: object = None
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def reason(self) -> str:
        return _REASONS.get(self.status, "Unknown")

    def encode(self, *, keep_alive: bool) -> bytes:
        body = json.dumps(self.payload, indent=1).encode() + b"\n" if self.payload is not None else b""
        lines = [f"HTTP/1.1 {self.status} {self.reason}"]
        headers = {
            "content-type": "application/json",
            "content-length": str(len(body)),
            "connection": "keep-alive" if keep_alive else "close",
            **self.headers,
        }
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


class _BadRequest(Exception):
    """Malformed transport-level input; carries the response to send."""

    def __init__(self, response: Response):
        super().__init__(response.status)
        self.response = response


def _parse_head(blob: bytes) -> tuple[str, str, str, dict[str, str]]:
    """``(method, target, version, headers)`` from the raw request head."""
    try:
        text = blob.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes all bytes
        raise _BadRequest(_error_response(400, "bad_request", "undecodable request head")) from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise _BadRequest(_error_response(400, "bad_request", f"malformed request line {lines[0]!r}"))
    method, target, version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise _BadRequest(_error_response(400, "bad_request", f"malformed header line {line!r}"))
        headers[name.strip().lower()] = value.strip()
    return method.upper(), target, version, headers


def _error_response(status: int, code: str, message: str) -> Response:
    return Response(status, {"error": {"code": code, "message": message}})


async def _read_request(reader: asyncio.StreamReader, client: str) -> Request | None:
    """The next request on the connection, or ``None`` when the peer closed."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError:
        return None
    except asyncio.LimitOverrunError:
        raise _BadRequest(_error_response(431, "headers_too_large", "request head exceeds 64 KiB")) from None
    method, target, _version, headers = _parse_head(head[:-4])
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise _BadRequest(_error_response(400, "bad_request", f"invalid Content-Length {length_text!r}")) from None
    if length > MAX_BODY_BYTES:
        raise _BadRequest(_error_response(413, "body_too_large", "request body exceeds 8 MiB"))
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return None
    split = urlsplit(target)
    return Request(
        method=method,
        path=unquote(split.path),
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
        client=client,
    )


async def _serve_connection(app, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
    peer = writer.get_extra_info("peername")
    client = peer[0] if isinstance(peer, tuple) else str(peer or "")
    try:
        while True:
            keep_alive = False
            try:
                request = await _read_request(reader, client)
                if request is None:
                    break
                keep_alive = request.header("connection", "keep-alive").lower() != "close"
                response = await app.handle(request)
            except _BadRequest as bad:
                response = bad.response
            writer.write(response.encode(keep_alive=keep_alive))
            await writer.drain()
            if not keep_alive:
                break
    except asyncio.CancelledError:
        pass  # server shutdown cancelled this connection mid-read; close quietly
    except (ConnectionResetError, BrokenPipeError):  # pragma: no cover - client vanished
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass  # shutdown can cancel the close waiter itself


async def start_http_server(app, host: str = "127.0.0.1", port: int = 0) -> asyncio.base_events.Server:
    """Bind and start serving ``app``; ``port=0`` picks an ephemeral port."""

    async def on_connection(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        await _serve_connection(app, reader, writer)

    return await asyncio.start_server(on_connection, host, port, limit=MAX_HEADER_BYTES)


def bound_port(server: asyncio.base_events.Server) -> int:
    return server.sockets[0].getsockname()[1]


def serve_forever(app, *, host: str = "127.0.0.1", port: int = 8080) -> int:
    """Blocking server loop behind ``python -m repro serve``.

    Returns 0 on a clean shutdown (Ctrl-C, or SIGTERM from a supervisor).
    SIGTERM/SIGINT stop the accept loop, then the app is closed -- which
    drains in-flight jobs for its configured deadline and journals
    whatever could not finish as ``interrupted`` -- so an orchestrator's
    ordinary stop signal never silently loses work.
    """

    async def main() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        installed: list[signal.Signals] = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover - non-Unix
                pass
        server = await start_http_server(app, host, port)
        actual = bound_port(server)
        print(f"serving the reproduction on http://{host}:{actual} (Ctrl-C to stop)", flush=True)
        try:
            async with server:
                if installed:
                    await stop.wait()
                    print("shutdown signal received; draining jobs", flush=True)
                else:  # pragma: no cover - platforms without signal handlers
                    await server.serve_forever()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        app.close()
    return 0


class BackgroundServer:
    """The same server on a daemon thread -- the test/benchmark harness.

    Usage::

        with BackgroundServer(app) as server:
            http.client.HTTPConnection("127.0.0.1", server.port)
    """

    def __init__(self, app, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self.host = host
        self.port: int | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._requested_port = port
        self._thread = threading.Thread(target=self._run, name="repro-service", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(start_http_server(self.app, self.host, self._requested_port))
        except BaseException as error:  # pragma: no cover - bind failure
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self.port = bound_port(server)
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            # Keep-alive connections may still have reader tasks parked on
            # the stream; cancel them so the loop closes without warnings.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(asyncio.gather(*pending, return_exceptions=True))
            loop.close()

    def close(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self.app.close()

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()
