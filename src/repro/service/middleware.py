"""Cross-cutting request middleware: request IDs, rate limiting, access logs.

These concerns apply to *every* route, so they live outside the handlers:
:class:`repro.service.routes.ServiceApp` assigns a request ID before
dispatch, consults the token bucket (except for ``/v1/health`` -- load
balancers must always be able to probe), and logs one structured line per
request with the ID echoed, so a response can be correlated with its log
line and its metrics sample.
"""

from __future__ import annotations

import logging
import re
import threading
import time
import uuid
from typing import Callable

logger = logging.getLogger("repro.service")

_REQUEST_ID_SHAPE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def make_request_id(client_supplied: str | None) -> str:
    """Honour a well-formed client ``X-Request-Id``; mint one otherwise."""
    if client_supplied and _REQUEST_ID_SHAPE.match(client_supplied):
        return client_supplied
    return f"req-{uuid.uuid4().hex[:12]}"


class TokenBucket:
    """Per-client token-bucket rate limiter.

    ``rate`` tokens/second refill up to ``burst`` capacity per client key;
    each request spends one token.  :meth:`check` returns 0.0 when the
    request may proceed, else the seconds to wait before a token is
    available (rendered as ``Retry-After``).

    Client state is bounded two ways.  Buckets idle past
    ``max_idle_seconds`` are expired (swept amortised, every
    :data:`SWEEP_EVERY` checks) -- an expired bucket and a fresh one are
    behaviourally identical, so expiry never changes a limiting decision,
    it only caps memory.  Past ``max_clients`` the bucket *closest to
    full* (after refill) is evicted: dropping a full bucket is a
    semantic no-op, so a burst of one-shot clients (e.g. a scan walking
    source addresses) can never evict the drained state of a client that
    is actively being limited -- which is exactly the state an attacker
    would want reset.
    """

    #: Amortisation period of the idle-bucket sweep, in ``check`` calls.
    SWEEP_EVERY = 64

    def __init__(
        self,
        rate: float,
        burst: int | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = 1024,
        max_idle_seconds: float = 300.0,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive (use no limiter to disable)")
        self.rate = float(rate)
        self.burst = float(burst if burst is not None else max(1, round(2 * rate)))
        self._clock = clock
        self._max_clients = max_clients
        self._max_idle = float(max_idle_seconds)
        self._lock = threading.Lock()
        self._buckets: dict[str, tuple[float, float]] = {}  # key -> (tokens, stamp)
        self._checks = 0

    def _expire(self, now: float) -> None:
        """Drop idle buckets (lock held).  An expired bucket = a full one."""
        cutoff = now - self._max_idle
        stale = [key for key, (_tokens, stamp) in self._buckets.items() if stamp <= cutoff]
        for key in stale:
            del self._buckets[key]

    def check(self, key: str = "") -> float:
        """Spend one token for ``key``; 0.0 = allowed, else retry-after seconds."""
        now = self._clock()
        with self._lock:
            self._checks += 1
            if self._checks % self.SWEEP_EVERY == 0:
                self._expire(now)
            tokens, stamp = self._buckets.pop(key, (self.burst, now))
            if now - stamp >= self._max_idle:  # idle past expiry = fresh bucket
                tokens, stamp = self.burst, now
            tokens = min(self.burst, tokens + (now - stamp) * self.rate)
            allowed = tokens >= 1.0
            if allowed:
                tokens -= 1.0
            self._buckets[key] = (tokens, now)  # reinsert last = most recently seen
            if len(self._buckets) > self._max_clients:
                self._expire(now)
            if len(self._buckets) > self._max_clients:
                # Still over: evict the fullest bucket (ties -> stalest),
                # i.e. the one whose loss changes future decisions least.
                def fullness(name: str) -> tuple[float, float]:
                    held, seen = self._buckets[name]
                    return (min(self.burst, held + (now - seen) * self.rate), -seen)

                del self._buckets[max(self._buckets, key=fullness)]
            return 0.0 if allowed else (1.0 - tokens) / self.rate


def log_request(request_id: str, client: str, method: str, path: str, status: int, seconds: float) -> None:
    """One access-log line per request, request ID first for correlation."""
    logger.info(
        "%s %s %s %s -> %d in %.1f ms", request_id, client or "-", method, path, status, seconds * 1e3
    )
