"""Reproduction-as-a-service: a stdlib-only asyncio HTTP/1.1 JSON layer.

``python -m repro serve`` puts this package on top of the experiment
runner: warm-cache hits are answered synchronously from the result store
(rows bit-identical to the CLI), cold runs and sweeps become background
jobs on the existing process-pool executor.  No runtime dependency beyond
the standard library -- the server, routing, models and middleware are all
hand-rolled asyncio.

Modules
-------
:mod:`~repro.service.server`
    The asyncio HTTP/1.1 transport: request parsing, keep-alive, the
    blocking ``serve_forever`` loop and a ``BackgroundServer`` harness for
    tests/benchmarks.
:mod:`~repro.service.routes`
    :class:`ServiceApp` -- the endpoint handlers behind ``/v1/...``.
:mod:`~repro.service.models`
    Request parsing/validation and response/error body builders.
:mod:`~repro.service.middleware`
    Cross-cutting request concerns: request IDs, token-bucket rate
    limiting, access logging.
:mod:`~repro.service.jobs`
    Background job manager with idempotency-key collapse and per-wave
    artifact progress.
:mod:`~repro.service.metrics`
    Thread-safe request/cache/job counters and latency histograms.
"""

from .jobs import JobManager, JobRecord
from .metrics import LatencyHistogram, ServiceMetrics
from .middleware import TokenBucket
from .models import ServiceError
from .routes import ServiceApp, build_app
from .server import BackgroundServer, Request, Response, serve_forever, start_http_server

__all__ = [
    "BackgroundServer",
    "JobManager",
    "JobRecord",
    "LatencyHistogram",
    "Request",
    "Response",
    "ServiceApp",
    "ServiceError",
    "ServiceMetrics",
    "TokenBucket",
    "build_app",
    "serve_forever",
    "start_http_server",
]
