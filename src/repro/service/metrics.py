"""Thread-safe service metrics: request counters, cache hit/miss, latency.

The service records every request under its *route template* (bounded
cardinality -- ``POST /v1/experiments/{name}/run``, never the raw path)
with its status code and end-to-end latency.  Latencies land in
fixed-bucket histograms, from which ``/v1/metrics`` reports count/sum and
p50/p95/max estimates; the benchmark gate reads the same snapshot.

Everything is guarded by one lock: handlers run on the event loop but
warm-path work and jobs execute on worker threads.
"""

from __future__ import annotations

import threading
import time
from typing import Callable


class LatencyHistogram:
    """Fixed-bucket latency histogram (milliseconds, log-ish spacing)."""

    BOUNDS_MS: tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000)

    def __init__(self):
        self.counts = [0] * (len(self.BOUNDS_MS) + 1)  # last bucket = overflow
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, seconds: float) -> None:
        ms = seconds * 1e3
        index = next(
            (i for i, bound in enumerate(self.BOUNDS_MS) if ms <= bound), len(self.BOUNDS_MS)
        )
        self.counts[index] += 1
        self.count += 1
        self.sum_ms += ms
        self.max_ms = max(self.max_ms, ms)

    def quantile_ms(self, q: float) -> float:
        """Upper-bound estimate of the ``q`` quantile (0 with no samples)."""
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                if index < len(self.BOUNDS_MS):
                    return float(self.BOUNDS_MS[index])
                return self.max_ms
        return self.max_ms  # pragma: no cover - unreachable

    def snapshot(self) -> dict[str, object]:
        buckets = {f"le_{bound:g}ms": count for bound, count in zip(self.BOUNDS_MS, self.counts)}
        buckets["overflow"] = self.counts[-1]
        return {
            "count": self.count,
            "sum_ms": round(self.sum_ms, 3),
            "mean_ms": round(self.sum_ms / self.count, 3) if self.count else 0.0,
            "p50_ms": self.quantile_ms(0.5),
            "p95_ms": self.quantile_ms(0.95),
            "max_ms": round(self.max_ms, 3),
            "buckets": buckets,
        }


class ServiceMetrics:
    """All service-side counters behind ``GET /v1/metrics``."""

    def __init__(self, *, clock: Callable[[], float] = time.time):
        self._lock = threading.Lock()
        self._clock = clock
        self.started_unix = clock()
        self.requests: dict[str, dict[str, int]] = {}
        self.latency: dict[str, LatencyHistogram] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.warm_hits = 0  # hits served from the in-memory L1, no disk read
        self.rate_limited = 0
        self.shed = 0  # 503s: submissions rejected by the bounded job queue
        #: Installed by the app; reports job-state counts and in-flight gauge.
        self.job_counts: Callable[[], dict[str, int]] = lambda: {}

    def record_request(self, route: str, status: int, seconds: float) -> None:
        with self._lock:
            by_status = self.requests.setdefault(route, {})
            by_status[str(status)] = by_status.get(str(status), 0) + 1
            self.latency.setdefault(route, LatencyHistogram()).observe(seconds)
            if status == 429:
                self.rate_limited += 1
            if status == 503:
                self.shed += 1

    def record_cache(self, hit: bool, *, warm: bool = False) -> None:
        """Tally one warm-path probe; ``warm`` marks an in-memory L1 hit."""
        with self._lock:
            if hit:
                self.cache_hits += 1
                if warm:
                    self.warm_hits += 1
            else:
                self.cache_misses += 1

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            total = sum(count for by_status in self.requests.values() for count in by_status.values())
            return {
                "uptime_seconds": round(self._clock() - self.started_unix, 3),
                "requests": {
                    "total": total,
                    "by_route": {route: dict(by_status) for route, by_status in sorted(self.requests.items())},
                    "rate_limited": self.rate_limited,
                    "shed": self.shed,
                },
                "cache": {
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                    "warm_hits": self.warm_hits,
                },
                "jobs": self.job_counts(),
                "latency": {route: histogram.snapshot() for route, histogram in sorted(self.latency.items())},
            }
