"""Request/response models of the HTTP service.

Every endpoint parses its body through one of the request models here and
renders through one of the response builders, so the wire format is
defined in exactly one place.  Validation failures surface as
:class:`ServiceError` (transport-level problems: bad JSON, wrong shapes)
or propagate the :mod:`repro.api` error taxonomy (schema-level problems:
unknown experiments/parameters, mistyped values); :func:`error_from_exception`
maps both onto status codes and stable ``code`` fields.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

from ..runner.errors import ExecutionError, ParamError, ReproError, UnknownExperimentError
from ..runner.service import RunReport


class ServiceError(Exception):
    """An HTTP-mappable failure with a stable machine-readable ``code``."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        param: str | None = None,
        expected: str | None = None,
        retry_after: float | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.param = param
        self.expected = expected
        self.retry_after = retry_after


def error_from_exception(error: BaseException) -> ServiceError:
    """The one mapping from the API error taxonomy to HTTP status codes."""
    if isinstance(error, ServiceError):
        return error
    if isinstance(error, UnknownExperimentError):
        return ServiceError(404, error.code, str(error))
    if isinstance(error, ParamError):
        return ServiceError(400, error.code, str(error), param=error.param, expected=error.expected)
    if isinstance(error, ExecutionError):
        return ServiceError(500, error.code, str(error))
    if isinstance(error, ReproError):
        return ServiceError(500, error.code, str(error))
    return ServiceError(500, "internal", f"{type(error).__name__}: {error}")


def error_body(error: ServiceError, request_id: str) -> dict[str, object]:
    """The structured JSON error body every non-2xx response carries."""
    detail: dict[str, object] = {"code": error.code, "message": str(error)}
    if error.param is not None:
        detail["param"] = error.param
    if error.expected is not None:
        detail["expected"] = error.expected
    detail["request_id"] = request_id
    return {"error": detail}


def _parse_json_object(body: bytes) -> dict[str, object]:
    """The request body as a JSON object (empty body = empty object)."""
    if not body.strip():
        return {}
    try:
        document = json.loads(body)
    except ValueError as error:
        raise ServiceError(400, "invalid_json", f"request body is not valid JSON: {error}") from None
    if not isinstance(document, dict):
        raise ServiceError(400, "invalid_body", "request body must be a JSON object")
    return document


def _params_field(document: Mapping[str, object], name: str = "params") -> dict[str, object]:
    params = document.get(name, {})
    if not isinstance(params, dict):
        raise ServiceError(400, "invalid_body", f"{name!r} must be a JSON object of parameter overrides")
    return dict(params)


@dataclass
class RunRequest:
    """Body of ``POST /v1/experiments/{name}/run``: ``{"params": {...}}``."""

    params: dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_body(cls, body: bytes) -> "RunRequest":
        document = _parse_json_object(body)
        unknown = set(document) - {"params"}
        if unknown:
            raise ServiceError(
                400, "invalid_body", f"unknown field(s) {sorted(unknown)}; accepted: params"
            )
        return cls(params=_params_field(document))


@dataclass
class JobRequest:
    """Body of ``POST /v1/jobs``.

    ``{"experiment": name | "all", "params": {...}}`` submits a run job;
    adding ``"grid": {param: [values...]}`` makes it a sweep job.
    ``"jobs"`` optionally requests a worker fan-out (clamped to the
    server's ``--jobs``).
    """

    experiment: str
    params: dict[str, object] = field(default_factory=dict)
    grid: dict[str, list[object]] | None = None
    jobs: int | None = None

    @classmethod
    def from_body(cls, body: bytes) -> "JobRequest":
        document = _parse_json_object(body)
        unknown = set(document) - {"experiment", "params", "grid", "jobs"}
        if unknown:
            raise ServiceError(
                400,
                "invalid_body",
                f"unknown field(s) {sorted(unknown)}; accepted: experiment, params, grid, jobs",
            )
        experiment = document.get("experiment")
        if not isinstance(experiment, str) or not experiment:
            raise ServiceError(400, "invalid_body", "'experiment' must name an experiment (or 'all')")
        grid = document.get("grid")
        if grid is not None and not isinstance(grid, dict):
            raise ServiceError(400, "invalid_body", "'grid' must be a JSON object of value lists")
        jobs = document.get("jobs")
        if jobs is not None and (isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1):
            raise ServiceError(400, "invalid_body", "'jobs' must be a positive integer")
        if grid is not None and experiment == "all":
            raise ServiceError(400, "invalid_body", "a sweep job needs a single experiment, not 'all'")
        return cls(
            experiment=experiment,
            params=_params_field(document),
            grid={str(key): value for key, value in grid.items()} if grid is not None else None,
            jobs=jobs,
        )


def run_response(report: RunReport, request_id: str) -> dict[str, object]:
    """Body of a warm ``POST .../run`` hit -- the canonical report document."""
    return {**report.to_jsonable(), "request_id": request_id}


def experiments_response(listing: list[dict[str, object]]) -> dict[str, object]:
    return {"experiments": listing}
