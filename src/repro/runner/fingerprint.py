"""Static code fingerprints for cache invalidation.

The result cache keys every entry on a *code fingerprint*: a digest over the
source of the experiment driver plus every in-package module it (transitively)
imports.  Editing any model an experiment depends on therefore invalidates
exactly the experiments that import it, while leaving unrelated cache entries
valid.

The import closure is resolved statically (``ast`` walk over ``import`` /
``from ... import`` statements) so computing a fingerprint never executes
experiment code; only modules inside the root package (``repro`` by default)
participate.
"""

from __future__ import annotations

import ast
import functools
import hashlib
import importlib.util
import threading
from pathlib import Path

# CPython's ``ast.parse`` keeps its AST-to-object recursion depth in shared
# interpreter state on some versions (3.11 raises ``SystemError: AST
# constructor recursion depth mismatch`` under concurrent parses), so parsing
# is serialised.  Cheap: ``_imported_modules`` is memoised per source text,
# so repeat fingerprints never reach the parser at all.
_PARSE_LOCK = threading.Lock()


def _parse_source(source: str) -> ast.AST:
    with _PARSE_LOCK:
        return ast.parse(source)


@functools.lru_cache(maxsize=None)
def _module_path(module_name: str) -> Path | None:
    """Source file of ``module_name``, or ``None`` if it has no .py origin."""
    try:
        spec = importlib.util.find_spec(module_name)
    except (ImportError, ValueError):
        return None
    if spec is None or spec.origin is None or not spec.origin.endswith(".py"):
        return None
    return Path(spec.origin)


@functools.lru_cache(maxsize=None)
def _is_package(module_name: str) -> bool:
    try:
        spec = importlib.util.find_spec(module_name)
    except (ImportError, ValueError):
        return False
    return spec is not None and spec.submodule_search_locations is not None


def _resolve_import_base(node: ast.ImportFrom, module_name: str) -> str | None:
    """Absolute module named by a ``from ... import`` statement."""
    if node.level == 0:
        return node.module
    # Relative import: resolve against the importing module's package.
    package = module_name if _is_package(module_name) else module_name.rpartition(".")[0]
    parts = package.split(".")
    if node.level - 1 >= len(parts):
        return None
    if node.level > 1:
        parts = parts[: len(parts) - (node.level - 1)]
    base = ".".join(parts)
    return f"{base}.{node.module}" if node.module else base


@functools.lru_cache(maxsize=None)
def _imported_modules(module_name: str, source: str, root: str) -> frozenset[str]:
    """Root-package modules imported directly by ``source``.

    Keyed on the source text itself, so edits re-parse while repeat
    fingerprints of unchanged modules skip the AST walk.  Module specs are
    memoised per process -- module files are assumed not to *move* while a
    process runs (edits to their contents are picked up, as the source is
    re-read on every fingerprint).
    """
    found: set[str] = set()

    def keep(candidate: str | None) -> None:
        if candidate and (candidate == root or candidate.startswith(root + ".")):
            if _module_path(candidate) is not None:
                found.add(candidate)

    for node in _walk_importable(_parse_source(source)):
        if isinstance(node, ast.Import):
            for alias in node.names:
                keep(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_import_base(node, module_name)
            keep(base)
            if base and (base == root or base.startswith(root + ".")):
                # ``from pkg import name`` may name a submodule.
                for alias in node.names:
                    keep(f"{base}.{alias.name}")
    return frozenset(found)


def _is_main_guard(node: ast.AST) -> bool:
    """Exactly ``if __name__ == "__main__":`` -- dead code for an imported module.

    The operator and comparator are both checked: ``if __name__ != ...`` or a
    comparison against anything but ``"__main__"`` *does* run on import and
    must keep contributing to the fingerprint.
    """
    return (
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and isinstance(node.test.left, ast.Name)
        and node.test.left.id == "__name__"
        and len(node.test.ops) == 1
        and isinstance(node.test.ops[0], ast.Eq)
        and len(node.test.comparators) == 1
        and isinstance(node.test.comparators[0], ast.Constant)
        and node.test.comparators[0].value == "__main__"
    )


def _is_type_checking_guard(node: ast.AST) -> bool:
    """``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:`` -- never runs.

    ``typing.TYPE_CHECKING`` is ``False`` at runtime, so imports under the
    guard exist only for annotations and cannot influence computed results;
    counting them would couple consumers of a *type* to the implementation
    module's whole closure.
    """
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


def _walk_importable(tree: ast.AST):
    """``ast.walk`` that skips ``__main__``-guard and ``TYPE_CHECKING`` bodies.

    Imports under those guards (the drivers' CLI shims, annotation-only type
    imports) never execute when the module is imported by the runner, so they
    must not contribute to the fingerprint -- otherwise editing the CLI would
    invalidate every cached experiment result.
    """
    pending = [tree]
    while pending:
        node = pending.pop()
        yield node
        if _is_main_guard(node) or _is_type_checking_guard(node):
            pending.extend(node.orelse)  # the else branch *does* run on import
            continue
        pending.extend(ast.iter_child_nodes(node))


def module_closure(module_name: str, *, root: str = "repro") -> list[str]:
    """Transitive in-package import closure of ``module_name``, sorted.

    Includes ``module_name`` itself.  Resolution is purely static; modules
    whose source cannot be located are skipped.
    """
    closure: set[str] = set()
    pending = [module_name]
    while pending:
        current = pending.pop()
        if current in closure:
            continue
        path = _module_path(current)
        if path is None:
            continue
        closure.add(current)
        source = path.read_text()
        for imported in _imported_modules(current, source, root):
            if imported not in closure:
                pending.append(imported)
    return sorted(closure)


def code_fingerprint(module_name: str, *, root: str = "repro") -> str:
    """Hex digest over the sources of ``module_name``'s import closure.

    Deterministic across processes and machines for identical sources: the
    closure is sorted and each module contributes ``name:sha256(source)``.
    """
    digest = hashlib.sha256()
    for name in module_closure(module_name, root=root):
        path = _module_path(name)
        if path is None:  # pragma: no cover - raced module removal
            continue
        source_hash = hashlib.sha256(path.read_bytes()).hexdigest()
        digest.update(f"{name}:{source_hash}\n".encode())
    return digest.hexdigest()
