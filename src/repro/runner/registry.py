"""Typed experiment registry with deterministic config canonicalization.

Wraps :data:`repro.experiments.EXPERIMENTS` with one :class:`ExperimentSpec`
per driver.  Every driver module declares its cacheable parameters in a
``PARAMS`` mapping (name -> default) and, optionally, the object-valued
injection parameters its ``run()`` also accepts in ``OBJECT_PARAMS``
(pre-built characterizations, chip models, ...).  Only ``PARAMS`` values
participate in cache keys; passing an object parameter bypasses the cache.

Canonicalization turns arbitrary override mixes into one normal form --
defaults merged in, values type-coerced (lists become tuples where the
default is a tuple), keys sorted -- so that semantically identical configs
always hash to the same cache key.
"""

from __future__ import annotations

import inspect
import json
import types
from dataclasses import dataclass
from typing import Mapping

from ..experiments import EXPERIMENTS


@dataclass(frozen=True)
class ParamSpec:
    """One declared experiment parameter: its type is fixed by its default."""

    name: str
    type: type
    default: object

    def coerce(self, value: object) -> object:
        """Validate/coerce one override to the declared type.

        Accepted coercions: ``int -> float`` and ``list -> tuple`` (with
        per-item coercion to the default tuple's item type).  Anything else
        that does not already match raises ``TypeError`` -- silently accepting
        a mistyped value would poison the cache key space.
        """
        if self.type is bool:
            if isinstance(value, bool):
                return value
            raise TypeError(f"parameter {self.name!r} expects bool, got {value!r}")
        if self.type is int:
            if isinstance(value, int) and not isinstance(value, bool):
                return value
            raise TypeError(f"parameter {self.name!r} expects int, got {value!r}")
        if self.type is float:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
            raise TypeError(f"parameter {self.name!r} expects float, got {value!r}")
        if self.type is str:
            if isinstance(value, str):
                return value
            raise TypeError(f"parameter {self.name!r} expects str, got {value!r}")
        if self.type is tuple:
            if not isinstance(value, (list, tuple)):
                raise TypeError(f"parameter {self.name!r} expects a sequence, got {value!r}")
            item_type = type(self.default[0]) if self.default else int
            item_spec = ParamSpec(f"{self.name}[]", item_type, None)
            return tuple(item_spec.coerce(item) for item in value)
        raise TypeError(f"unsupported parameter type {self.type.__name__} for {self.name!r}")

    def parse(self, text: str) -> object:
        """Parse a CLI-style string value to the declared type."""
        if self.type is bool:
            lowered = text.strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                return True
            if lowered in ("0", "false", "no", "off"):
                return False
            raise ValueError(f"parameter {self.name!r}: cannot parse bool from {text!r}")
        if self.type is int:
            return int(text)
        if self.type is float:
            return float(text)
        if self.type is tuple:
            item_type = type(self.default[0]) if self.default else int
            item_spec = ParamSpec(f"{self.name}[]", item_type, None)
            return tuple(item_spec.parse(part) for part in text.split(",") if part.strip())
        return text


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: driver module + declared parameter schema."""

    name: str
    module: types.ModuleType
    params: Mapping[str, ParamSpec]
    object_params: frozenset[str]

    @classmethod
    def from_module(cls, name: str, module: types.ModuleType) -> "ExperimentSpec":
        declared = getattr(module, "PARAMS", {})
        params = {
            pname: ParamSpec(pname, tuple if isinstance(default, (list, tuple)) else type(default), default)
            for pname, default in declared.items()
        }
        object_params = frozenset(getattr(module, "OBJECT_PARAMS", ()))
        spec = cls(name=name, module=module, params=params, object_params=object_params)
        spec._check_against_signature()
        return spec

    def _check_against_signature(self) -> None:
        """Declared defaults must agree with ``run()``'s actual signature."""
        signature = inspect.signature(self.module.run)
        accepts_kwargs = any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in signature.parameters.values()
        )
        for pname, spec in self.params.items():
            parameter = signature.parameters.get(pname)
            if parameter is None:
                if accepts_kwargs:
                    continue
                raise TypeError(f"{self.name}: declared parameter {pname!r} not accepted by run()")
            if (
                parameter.default is not inspect.Parameter.empty
                and parameter.default != spec.default
            ):
                raise TypeError(
                    f"{self.name}: declared default for {pname!r} ({spec.default!r}) "
                    f"disagrees with run() ({parameter.default!r})"
                )

    def canonical_config(self, overrides: Mapping[str, object] | None = None) -> dict[str, object]:
        """Full config in canonical form: defaults + coerced overrides, sorted keys.

        Rejects unknown parameter names (including object parameters -- a
        config containing those is not cacheable and must bypass this path).
        """
        overrides = dict(overrides or {})
        unknown = set(overrides) - set(self.params)
        if unknown:
            raise KeyError(
                f"{self.name}: unknown/uncacheable parameter(s) {sorted(unknown)}; "
                f"cacheable parameters are {sorted(self.params)}"
            )
        config: dict[str, object] = {}
        for pname in sorted(self.params):
            spec = self.params[pname]
            config[pname] = spec.coerce(overrides.get(pname, spec.default))
        return config

    def canonical_json(self, config: Mapping[str, object]) -> str:
        """Deterministic JSON form of a canonical config (tuples as arrays)."""
        return json.dumps(
            {key: list(value) if isinstance(value, tuple) else value for key, value in config.items()},
            sort_keys=True,
            separators=(",", ":"),
        )

    def execute(self, config: Mapping[str, object]) -> list[dict[str, object]]:
        """Run the driver with a canonical config."""
        return self.module.run(**dict(config))

    def render(self, rows: list[dict[str, object]]) -> str:
        """Format rows (live or cached) with the driver's renderer."""
        return self.module.render(rows)


def build_registry() -> dict[str, ExperimentSpec]:
    """One :class:`ExperimentSpec` per entry of ``EXPERIMENTS``."""
    return {name: ExperimentSpec.from_module(name, module) for name, module in EXPERIMENTS.items()}
