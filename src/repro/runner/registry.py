"""Typed experiment registry with deterministic config canonicalization.

Wraps :data:`repro.experiments.EXPERIMENTS` with one :class:`ExperimentSpec`
per driver.  Every driver module declares its cacheable parameters in a
``PARAMS`` mapping (name -> default) and, optionally, the object-valued
injection parameters its ``run()`` also accepts in ``OBJECT_PARAMS``
(pre-built characterizations, chip models, ...).  Only ``PARAMS`` values
participate in cache keys; passing an object parameter bypasses the cache.

Drivers additionally declare the sub-experiment intermediates they consume
in an ``ARTIFACTS`` mapping (see :class:`ArtifactBinding`): artifact name ->
``(producer, params-subset)`` with optional scheduling options.  The runner
service resolves those declarations into a producer/consumer DAG and fills
the artifact store in topological waves before cold experiments execute.

Canonicalization turns arbitrary override mixes into one normal form --
defaults merged in, values type-coerced (lists become tuples where the
default is a tuple), keys sorted -- so that semantically identical configs
always hash to the same cache key.
"""

from __future__ import annotations

import inspect
import json
import types
from dataclasses import dataclass
from typing import Mapping

from .artifacts import load_producer
from .errors import ParamTypeError, ParamValueError, UnknownParamError
from ..experiments import EXPERIMENTS


@dataclass(frozen=True)
class ParamSpec:
    """One declared experiment parameter: its type is fixed by its default."""

    name: str
    type: type
    default: object

    def describe(self) -> str:
        """Human/HTTP-facing name of the accepted type (``"tuple[int]"`` etc.)."""
        if self.type is tuple:
            item_type = type(self.default[0]) if self.default else int
            return f"tuple[{item_type.__name__}]"
        return self.type.__name__

    def _reject(self, value: object) -> ParamTypeError:
        return ParamTypeError(
            f"parameter {self.name!r} expects {self.describe()}, got {value!r}",
            param=self.name,
            expected=self.describe(),
        )

    def coerce(self, value: object) -> object:
        """Validate/coerce one override to the declared type.

        Accepted coercions: ``int -> float`` and ``list -> tuple`` (with
        per-item coercion to the default tuple's item type).  Anything else
        that does not already match raises :class:`ParamTypeError` --
        silently accepting a mistyped value would poison the cache key space.
        """
        if self.type is bool:
            if isinstance(value, bool):
                return value
            raise self._reject(value)
        if self.type is int:
            if isinstance(value, int) and not isinstance(value, bool):
                return value
            raise self._reject(value)
        if self.type is float:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
            raise self._reject(value)
        if self.type is str:
            if isinstance(value, str):
                return value
            raise self._reject(value)
        if self.type is tuple:
            if not isinstance(value, (list, tuple)):
                raise self._reject(value)
            item_type = type(self.default[0]) if self.default else int
            item_spec = ParamSpec(f"{self.name}[]", item_type, None)
            return tuple(item_spec.coerce(item) for item in value)
        raise ParamTypeError(
            f"unsupported parameter type {self.type.__name__} for {self.name!r}",
            param=self.name,
            expected=self.describe(),
        )

    def parse(self, text: str) -> object:
        """Parse a CLI-style string value to the declared type.

        Unparsable text raises :class:`ParamValueError` with the parameter
        name and expected type attached, so every front end reports the same
        diagnosis.
        """
        if self.type is bool:
            lowered = text.strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                return True
            if lowered in ("0", "false", "no", "off"):
                return False
            raise ParamValueError(
                f"parameter {self.name!r}: cannot parse bool from {text!r}",
                param=self.name,
                expected="bool",
            )
        try:
            if self.type is int:
                return int(text)
            if self.type is float:
                return float(text)
        except ValueError:
            raise ParamValueError(
                f"parameter {self.name!r}: cannot parse {self.describe()} from {text!r}",
                param=self.name,
                expected=self.describe(),
            ) from None
        if self.type is tuple:
            item_type = type(self.default[0]) if self.default else int
            item_spec = ParamSpec(f"{self.name}[]", item_type, None)
            return tuple(item_spec.parse(part) for part in text.split(",") if part.strip())
        return text


@dataclass(frozen=True)
class ArtifactBinding:
    """One declared sub-experiment artifact a driver consumes.

    Attributes
    ----------
    name:
        Global artifact name (drivers sharing a name with identical producer
        and parameters share the stored entries).
    producer:
        ``"package.module:function"`` path of the module-level producer; its
        module's import-closure fingerprint is part of the artifact key.
    params:
        Subset of the driver's ``PARAMS`` forwarded to the producer.
    when:
        Optional name of a bool parameter gating the artifact: it is only
        produced for configs where that parameter is true.
    after:
        Artifact names (of the same driver) that must be produced first;
        this is what gives the schedule its topological waves.
    level:
        Dependency depth derived from ``after`` (0 = no prerequisites).
    """

    name: str
    producer: str
    params: tuple[str, ...]
    when: str | None = None
    after: tuple[str, ...] = ()
    level: int = 0


def _parse_artifacts(
    experiment: str, module: types.ModuleType, params: Mapping[str, ParamSpec]
) -> dict[str, ArtifactBinding]:
    """Validate and normalise a driver's ``ARTIFACTS`` declaration."""
    declared = getattr(module, "ARTIFACTS", {})
    bindings: dict[str, ArtifactBinding] = {}
    for name, declaration in declared.items():
        if not (isinstance(declaration, tuple) and len(declaration) in (2, 3)):
            raise TypeError(
                f"{experiment}: ARTIFACTS[{name!r}] must be (producer, params[, options])"
            )
        producer, subset = declaration[0], tuple(declaration[1])
        options = dict(declaration[2]) if len(declaration) == 3 else {}
        unknown_options = set(options) - {"when", "after"}
        if unknown_options:
            raise TypeError(
                f"{experiment}: ARTIFACTS[{name!r}] has unknown option(s) {sorted(unknown_options)}"
            )
        missing = [pname for pname in subset if pname not in params]
        if missing:
            raise TypeError(
                f"{experiment}: ARTIFACTS[{name!r}] names undeclared parameter(s) {missing}"
            )
        when = options.get("when")
        if when is not None and (when not in params or params[when].type is not bool):
            raise TypeError(
                f"{experiment}: ARTIFACTS[{name!r}] 'when' must name a bool parameter"
            )
        load_producer(producer)  # fails fast on unimportable producers
        bindings[name] = ArtifactBinding(
            name=name,
            producer=producer,
            params=subset,
            when=when,
            after=tuple(options.get("after", ())),
        )
    # Resolve `after` references into dependency levels (topological depth).
    levels: dict[str, int] = {}

    def level_of(name: str, trail: tuple[str, ...] = ()) -> int:
        if name in trail:
            raise TypeError(f"{experiment}: ARTIFACTS dependency cycle through {name!r}")
        if name not in bindings:
            raise TypeError(f"{experiment}: ARTIFACTS 'after' names unknown artifact {name!r}")
        if name not in levels:
            binding = bindings[name]
            levels[name] = (
                1 + max(level_of(dep, trail + (name,)) for dep in binding.after)
                if binding.after
                else 0
            )
        return levels[name]

    for name in bindings:
        level_of(name)
    return {
        name: ArtifactBinding(
            name=binding.name,
            producer=binding.producer,
            params=binding.params,
            when=binding.when,
            after=binding.after,
            level=levels[name],
        )
        for name, binding in bindings.items()
    }


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: driver module + declared parameter schema."""

    name: str
    module: types.ModuleType
    params: Mapping[str, ParamSpec]
    object_params: frozenset[str]
    artifacts: Mapping[str, ArtifactBinding]

    @classmethod
    def from_module(cls, name: str, module: types.ModuleType) -> "ExperimentSpec":
        declared = getattr(module, "PARAMS", {})
        params = {
            pname: ParamSpec(pname, tuple if isinstance(default, (list, tuple)) else type(default), default)
            for pname, default in declared.items()
        }
        object_params = frozenset(getattr(module, "OBJECT_PARAMS", ()))
        spec = cls(
            name=name,
            module=module,
            params=params,
            object_params=object_params,
            artifacts=_parse_artifacts(name, module, params),
        )
        spec._check_against_signature()
        return spec

    def _check_against_signature(self) -> None:
        """Declared defaults must agree with ``run()``'s actual signature."""
        signature = inspect.signature(self.module.run)
        accepts_kwargs = any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in signature.parameters.values()
        )
        for pname, spec in self.params.items():
            parameter = signature.parameters.get(pname)
            if parameter is None:
                if accepts_kwargs:
                    continue
                raise TypeError(f"{self.name}: declared parameter {pname!r} not accepted by run()")
            if (
                parameter.default is not inspect.Parameter.empty
                and parameter.default != spec.default
            ):
                raise TypeError(
                    f"{self.name}: declared default for {pname!r} ({spec.default!r}) "
                    f"disagrees with run() ({parameter.default!r})"
                )

    def canonical_config(self, overrides: Mapping[str, object] | None = None) -> dict[str, object]:
        """Full config in canonical form: defaults + coerced overrides, sorted keys.

        Rejects unknown parameter names (including object parameters -- a
        config containing those is not cacheable and must bypass this path).
        """
        overrides = dict(overrides or {})
        unknown = set(overrides) - set(self.params)
        if unknown:
            raise UnknownParamError(
                f"{self.name}: unknown/uncacheable parameter(s) {sorted(unknown)}; "
                f"cacheable parameters are {sorted(self.params)}",
                param=sorted(unknown)[0],
                expected=f"one of: {', '.join(sorted(self.params)) or '(none)'}",
            )
        config: dict[str, object] = {}
        for pname in sorted(self.params):
            spec = self.params[pname]
            config[pname] = spec.coerce(overrides.get(pname, spec.default))
        return config

    def canonical_json(self, config: Mapping[str, object]) -> str:
        """Deterministic JSON form of a canonical config (tuples as arrays)."""
        return json.dumps(
            {key: list(value) if isinstance(value, tuple) else value for key, value in config.items()},
            sort_keys=True,
            separators=(",", ":"),
        )

    def schema(self) -> dict[str, object]:
        """JSON-ready description of the experiment's public parameter surface.

        This is the document ``GET /v1/experiments`` serves and what
        ``repro.api.list_experiments`` returns; tuple defaults appear as
        lists (their JSON canonical form).
        """
        return {
            "name": self.name,
            "params": {
                pname: {
                    "type": spec.describe(),
                    "default": list(spec.default) if isinstance(spec.default, tuple) else spec.default,
                }
                for pname, spec in sorted(self.params.items())
            },
            "object_params": sorted(self.object_params),
            "artifacts": [
                {
                    "name": binding.name,
                    "producer": binding.producer,
                    "params": list(binding.params),
                    "when": binding.when,
                    "after": list(binding.after),
                    "level": binding.level,
                }
                for binding in self.artifacts.values()
            ],
        }

    def execute(self, config: Mapping[str, object]) -> list[dict[str, object]]:
        """Run the driver with a canonical config."""
        return self.module.run(**dict(config))

    def render(self, rows: list[dict[str, object]]) -> str:
        """Format rows (live or cached) with the driver's renderer."""
        return self.module.render(rows)


def build_registry() -> dict[str, ExperimentSpec]:
    """One :class:`ExperimentSpec` per entry of ``EXPERIMENTS``."""
    return {name: ExperimentSpec.from_module(name, module) for name, module in EXPERIMENTS.items()}
