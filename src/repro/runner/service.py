"""The experiment runner: cache-aware, artifact-aware parallel execution.

:class:`ExperimentRunner` is the one code path behind ``python -m repro``,
the benchmarks and the examples: it canonicalises the requested config,
computes the content address (config + code fingerprint), replays from the
:class:`~repro.runner.cache.ResultCache` on a hit and executes + stores on a
miss.

Cold runs go through the cross-experiment artifact graph first: every
driver's declared ``ARTIFACTS`` (see
:class:`~repro.runner.registry.ArtifactBinding`) are resolved to
content-addressed units, deduplicated across the request batch, and the
missing ones are produced over worker processes in topological waves --
the shared multiplier characterisation is computed exactly once per cold
``run all``, and fig6's trained LeNet, its precision profile (a second
wave) and the AlexNet profile are produced through the incremental search
producers.  The experiments themselves then fan out with the store
active, so their resolvers replay the intermediates instead of
recomputing them.  Reports stay in request order and rows stay
bit-identical to a serial no-reuse run -- producers are deterministic
functions of their parameters and the incremental search is gated
bit-identical to the full-forward reference.

Cached and live paths return identical (sanitised) rows, so downstream
rendering/export code never needs to know which path produced them.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import dataclass
from typing import Callable, Mapping

from .artifacts import ArtifactStore, StoreStats, artifact_key, record_stats
from .cache import CacheEntry, ResultCache, cache_key, run_provenance
from .errors import UnknownExperimentError
from .executor import ExecutionOutcome, ExecutionPolicy, execute_requests, produce_artifacts
from .fingerprint import code_fingerprint
from .registry import ExperimentSpec, build_registry
from ..analysis.sweep import SweepResult, sanitize_value

logger = logging.getLogger(__name__)

#: Progress callback for :meth:`ExperimentRunner.run_many`: receives one dict
#: per lifecycle event (``planned`` / ``artifact_wave`` / ``artifact_wave_done``
#: / ``executing`` / ``executed``).  Used by the HTTP job layer for per-wave
#: progress reporting; callers that do not care pass ``None``.
Observer = Callable[[dict[str, object]], None]


@dataclass
class RunReport:
    """Outcome of one experiment run: rows plus cache/provenance facts.

    ``elapsed_seconds`` is what *this* run spent (the replay time on a cache
    hit); ``compute_seconds`` is what the underlying computation cost when it
    actually ran (equal to ``elapsed_seconds`` on a miss, the stored cold
    time on a hit).
    """

    name: str
    rows: list[dict[str, object]]
    config: dict[str, object]
    cached: bool
    elapsed_seconds: float
    compute_seconds: float = 0.0
    key: str | None = None
    fingerprint: str | None = None

    @property
    def result(self) -> SweepResult:
        return SweepResult(records=self.rows)

    def to_jsonable(self) -> dict[str, object]:
        """One canonical JSON document for a report (mirrors ``SweepResult``).

        The CLI's ``--json`` output, the HTTP run/job responses and the job
        store all serialise reports through here, so rows compare
        byte-identical across every front end.  Tuple-typed config values
        appear as lists (their JSON canonical form).
        """
        return {
            "experiment": self.name,
            "config": {key: sanitize_value(value) for key, value in self.config.items()},
            "rows": [dict(row) for row in self.rows],
            "cached": self.cached,
            "elapsed_seconds": self.elapsed_seconds,
            "compute_seconds": self.compute_seconds,
            "key": self.key,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_jsonable(cls, document: Mapping[str, object]) -> "RunReport":
        """Rebuild a report from :meth:`to_jsonable` output."""
        return cls(
            name=str(document["experiment"]),
            rows=[dict(row) for row in document["rows"]],
            config=dict(document["config"]),
            cached=bool(document["cached"]),
            elapsed_seconds=float(document["elapsed_seconds"]),
            compute_seconds=float(document["compute_seconds"]),
            key=document.get("key"),
            fingerprint=document.get("fingerprint"),
        )


@dataclass(frozen=True)
class ArtifactUnit:
    """One producible unit of the deduplicated artifact plan."""

    artifact: str
    producer: str
    params: tuple[tuple[str, object], ...]
    key: str
    fingerprint: str
    level: int

    def task(self, store_root: str) -> tuple[str, str, dict[str, object], str, str, str]:
        return (
            self.artifact,
            self.producer,
            dict(self.params),
            self.key,
            self.fingerprint,
            store_root,
        )


class ExperimentRunner:
    """Unified, cache-aware front end over the experiment registry.

    ``use_artifacts`` controls the cross-experiment artifact graph; it
    defaults to ``use_cache`` so ``--no-cache`` style runs stay genuinely
    reuse-free unless artifacts are enabled explicitly.  The store defaults
    to ``<cache root>/artifacts`` so isolated cache directories (tests,
    benchmarks) isolate their artifacts too.
    """

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        use_cache: bool = True,
        registry: Mapping[str, ExperimentSpec] | None = None,
        artifacts: ArtifactStore | None = None,
        use_artifacts: bool | None = None,
    ):
        self.registry = dict(registry) if registry is not None else build_registry()
        self.cache = cache if cache is not None else ResultCache()
        self.use_cache = use_cache
        self.artifacts = (
            artifacts if artifacts is not None else ArtifactStore(self.cache.root / "artifacts")
        )
        self.use_artifacts = use_cache if use_artifacts is None else use_artifacts

    def spec(self, name: str) -> ExperimentSpec:
        try:
            return self.registry[name]
        except KeyError:
            known = ", ".join(sorted(self.registry))
            raise UnknownExperimentError(f"unknown experiment {name!r}; known: {known}") from None

    def address(self, name: str, overrides: Mapping[str, object] | None = None) -> tuple[dict[str, object], str, str]:
        """``(canonical config, cache key, fingerprint)`` for one request.

        This is the single addressing path every consumer shares: the CLI,
        the batch scheduler and the HTTP warm path all hash configs through
        here, so a request can never address a different entry than the run
        that stored it.
        """
        spec = self.spec(name)
        config = spec.canonical_config(overrides)
        fingerprint = code_fingerprint(spec.module.__name__)
        return config, cache_key(name, spec.canonical_json(config), fingerprint), fingerprint

    def lookup(self, name: str, overrides: Mapping[str, object] | None = None) -> RunReport | None:
        """Warm-path probe: the cached report for a config, or ``None``.

        Never executes anything and never mutates the persisted hit/miss
        counters (it is a read-only probe; the HTTP service keeps its own
        per-request cache counters).  Raises the same validation errors as
        :meth:`run`, so a front end can validate-and-probe in one call.
        """
        config, key, fingerprint = self.address(name, overrides)
        if not self.use_cache:
            return None
        start = time.perf_counter()
        entry = self.cache.get(name, key)
        if entry is None:
            return None
        return RunReport(
            name=name,
            rows=entry.rows,
            config=config,
            cached=True,
            elapsed_seconds=time.perf_counter() - start,
            compute_seconds=entry.elapsed_seconds,
            key=key,
            fingerprint=entry.fingerprint,
        )

    def run(self, name: str, **overrides: object) -> RunReport:
        """Run one experiment (cache-aware).

        Overrides naming object parameters (pre-built models) or unknown
        keys fall through to the driver directly and bypass the cache --
        object identity cannot participate in a content address.
        """
        spec = self.spec(name)
        if any(key not in spec.params for key in overrides):
            start = time.perf_counter()
            rows = SweepResult(records=spec.module.run(**overrides)).to_jsonable()
            elapsed = time.perf_counter() - start
            return RunReport(
                name=name,
                rows=rows,
                config=dict(overrides),
                cached=False,
                elapsed_seconds=elapsed,
                compute_seconds=elapsed,
            )
        return self.run_many([(name, dict(overrides))])[0]

    # -- artifact graph ---------------------------------------------------------

    def _plan_artifacts(
        self, cold: list[tuple[str, dict[str, object]]]
    ) -> list[ArtifactUnit]:
        """Deduplicated artifact units the cold requests need, plan order.

        Units are keyed like the result cache: artifact name + canonical
        params + the *producer's* code fingerprint.  Identical units required
        by several experiments collapse onto one entry -- that is the
        cross-experiment reuse.
        """
        units: dict[str, ArtifactUnit] = {}
        fingerprints: dict[str, str] = {}
        for name, config in cold:
            spec = self.spec(name)
            for binding in spec.artifacts.values():
                if binding.when is not None and not config.get(binding.when):
                    continue
                params = {pname: config[pname] for pname in binding.params}
                if binding.producer not in fingerprints:
                    module_name = binding.producer.partition(":")[0]
                    fingerprints[binding.producer] = code_fingerprint(module_name)
                fingerprint = fingerprints[binding.producer]
                key = artifact_key(binding.name, params, fingerprint)
                if key not in units:
                    units[key] = ArtifactUnit(
                        artifact=binding.name,
                        producer=binding.producer,
                        params=tuple(params.items()),
                        key=key,
                        fingerprint=fingerprint,
                        level=binding.level,
                    )
        return list(units.values())

    def _ensure_artifacts(
        self,
        units: list[ArtifactUnit],
        *,
        jobs: int | None,
        observer: Observer | None = None,
        policy: ExecutionPolicy | None = None,
        outcome: ExecutionOutcome | None = None,
    ) -> StoreStats:
        """Produce the missing units, one wave per topological level."""
        stats = StoreStats()
        store_root = str(self.artifacts.root)
        levels = sorted({unit.level for unit in units})
        for level in levels:
            wave = [unit for unit in units if unit.level == level]
            missing = [unit for unit in wave if not self.artifacts.exists(unit.artifact, unit.key)]
            stats.artifact_hits += len(wave) - len(missing)
            stats.artifact_misses += len(missing)
            if observer is not None:
                observer(
                    {
                        "event": "artifact_wave",
                        "level": level,
                        "waves": len(levels),
                        "units": len(wave),
                        "missing": len(missing),
                        "artifacts": sorted({unit.artifact for unit in missing}),
                    }
                )
            if missing:
                produce_artifacts(
                    [unit.task(store_root) for unit in missing],
                    jobs=jobs,
                    policy=policy,
                    outcome=outcome,
                )
            if observer is not None:
                observer({"event": "artifact_wave_done", "level": level, "produced": len(missing)})
        return stats

    # -- experiment execution ----------------------------------------------------

    def run_many(
        self,
        requests: list[tuple[str, dict[str, object]]],
        *,
        jobs: int | None = None,
        observer: Observer | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> list[RunReport]:
        """Run ``(name, overrides)`` requests; cold ones fan out over ``jobs``.

        Reports come back in request order.  Cache lookups happen up front in
        the parent, artifact waves and executions in workers, cache writes
        back in the parent -- a single writer keeps the on-disk store simple.
        ``observer`` (when given) receives progress events: the plan, each
        artifact wave, and the experiment fan-out.  ``policy`` tunes the
        executor's per-unit timeout / retry / respawn behaviour
        (:data:`~repro.runner.executor.DEFAULT_POLICY` when ``None``).
        """
        outcome = ExecutionOutcome()
        prepared: list[RunReport | None] = []
        cold: list[tuple[int, str, dict[str, object], str]] = []
        cold_position: dict[str, int] = {}  # key -> index into `cold` (dedupe)
        duplicates: list[tuple[int, str]] = []  # (request index, key)
        fingerprints: dict[str, str] = {}
        for index, (name, overrides) in enumerate(requests):
            spec = self.spec(name)
            config = spec.canonical_config(overrides)
            if name not in fingerprints:
                fingerprints[name] = code_fingerprint(spec.module.__name__)
            key = cache_key(name, spec.canonical_json(config), fingerprints[name])
            lookup_start = time.perf_counter()
            entry = self.cache.get(name, key) if self.use_cache else None
            if entry is not None:
                prepared.append(
                    RunReport(
                        name=name,
                        rows=entry.rows,
                        config=config,
                        cached=True,
                        elapsed_seconds=time.perf_counter() - lookup_start,
                        compute_seconds=entry.elapsed_seconds,
                        key=key,
                        fingerprint=entry.fingerprint,
                    )
                )
            else:
                prepared.append(None)
                # Identical cold requests in one call compute only once.
                if key in cold_position:
                    duplicates.append((index, key))
                else:
                    cold_position[key] = len(cold)
                    cold.append((index, name, config, key))
        stats = StoreStats(
            result_hits=sum(1 for report in prepared if report is not None),
            result_misses=len(cold) + len(duplicates),
        ) if self.use_cache else StoreStats()
        if observer is not None:
            observer(
                {
                    "event": "planned",
                    "requests": len(requests),
                    "cached": sum(1 for report in prepared if report is not None),
                    "cold": len(cold),
                    "duplicates": len(duplicates),
                }
            )
        if cold:
            artifacts_root: str | None = None
            if self.use_artifacts:
                units = self._plan_artifacts(
                    [(name, config) for _index, name, config, _key in cold]
                )
                stats = stats.add(
                    self._ensure_artifacts(
                        units, jobs=jobs, observer=observer, policy=policy, outcome=outcome
                    )
                )
                artifacts_root = str(self.artifacts.root)
            if observer is not None:
                observer({"event": "executing", "experiments": len(cold)})
            results = execute_requests(
                [(name, config) for _index, name, config, _key in cold],
                jobs=jobs,
                artifacts_root=artifacts_root,
                registry=self.registry,
                policy=policy,
                outcome=outcome,
            )
            for (index, name, config, key), (rows, elapsed) in zip(cold, results):
                spec = self.spec(name)
                if self.use_cache:
                    try:
                        self.cache.put(
                            key,
                            CacheEntry(
                                experiment=name,
                                params=json.loads(spec.canonical_json(config)),
                                fingerprint=fingerprints[name],
                                result=SweepResult(records=rows),
                                elapsed_seconds=elapsed,
                                provenance=run_provenance(),
                            ),
                        )
                    except OSError as error:  # full/read-only disk: serve uncached
                        logger.warning(
                            "result cache write failed for %s (%s); continuing uncached",
                            name,
                            error,
                        )
                prepared[index] = RunReport(
                    name=name,
                    rows=rows,
                    config=config,
                    cached=False,
                    elapsed_seconds=elapsed,
                    compute_seconds=elapsed,
                    key=key,
                    fingerprint=fingerprints[name],
                )
            for index, key in duplicates:
                source = prepared[cold[cold_position[key]][0]]
                prepared[index] = RunReport(
                    name=source.name,
                    rows=[dict(row) for row in source.rows],
                    config=dict(source.config),
                    cached=False,
                    elapsed_seconds=source.elapsed_seconds,
                    compute_seconds=source.compute_seconds,
                    key=source.key,
                    fingerprint=source.fingerprint,
                )
        result_corrupt, result_quarantined = self.cache.drain_stats()
        artifact_corrupt, artifact_quarantined = self.artifacts.drain_stats()
        stats.result_corrupt += result_corrupt
        stats.artifact_corrupt += artifact_corrupt
        stats.quarantined += result_quarantined + artifact_quarantined
        stats.retried += outcome.retries
        if self.use_cache or self.use_artifacts:
            try:
                record_stats(self.cache.root, stats)
            except OSError as error:  # stats are best-effort observability
                logger.warning("could not persist cache stats (%s)", error)
        if observer is not None:
            observer(
                {
                    "event": "executed",
                    "experiments": len(cold),
                    "retries": outcome.retries,
                    "crashes": outcome.crashes,
                    "timeouts": outcome.timeouts,
                    "degraded": outcome.degraded,
                }
            )
        return [report for report in prepared if report is not None]

    def run_all(
        self, *, jobs: int | None = None, policy: ExecutionPolicy | None = None
    ) -> list[RunReport]:
        """Every registered experiment with default configs, registry order."""
        return self.run_many([(name, {}) for name in self.registry], jobs=jobs, policy=policy)

    def render(self, report: RunReport) -> str:
        """Driver-formatted text for a report's rows (live or cached alike)."""
        return self.spec(report.name).render(report.rows)
