"""The experiment runner: cache-aware, artifact-aware parallel execution.

:class:`ExperimentRunner` is the one code path behind ``python -m repro``,
the benchmarks and the examples: it canonicalises the requested config,
computes the content address (config + code fingerprint), replays from the
:class:`~repro.runner.cache.ResultCache` on a hit and executes + stores on a
miss.

Cold runs go through the cross-experiment artifact graph first: every
driver's declared ``ARTIFACTS`` (see
:class:`~repro.runner.registry.ArtifactBinding`) are resolved to
content-addressed units, deduplicated across the request batch, and the
missing ones are produced over worker processes in topological waves --
the shared multiplier characterisation is computed exactly once per cold
``run all``, and fig6's trained LeNet, its precision profile (a second
wave) and the AlexNet profile are produced through the incremental search
producers.  The experiments themselves then fan out with the store
active, so their resolvers replay the intermediates instead of
recomputing them.  Reports stay in request order and rows stay
bit-identical to a serial no-reuse run -- producers are deterministic
functions of their parameters and the incremental search is gated
bit-identical to the full-forward reference.

Cached and live paths return identical (sanitised) rows, so downstream
rendering/export code never needs to know which path produced them.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import dataclass
from typing import Callable, Mapping

from .artifacts import (
    ArtifactStore,
    StoreStats,
    artifact_key,
    load_producer,
    produce_into,
    record_stats,
)
from .backends import MemoryBackend, claim_is_owned, wait_for_fill
from .cache import CacheEntry, ResultCache, cache_key, run_provenance
from .errors import UnknownExperimentError
from .executor import ExecutionOutcome, ExecutionPolicy, execute_requests, produce_artifacts
from .fingerprint import code_fingerprint
from .registry import ExperimentSpec, build_registry
from ..analysis.sweep import SweepResult, sanitize_value

logger = logging.getLogger(__name__)

#: Progress callback for :meth:`ExperimentRunner.run_many`: receives one dict
#: per lifecycle event (``planned`` / ``artifact_wave`` / ``artifact_wave_done``
#: / ``executing`` / ``executed``).  Used by the HTTP job layer for per-wave
#: progress reporting; callers that do not care pass ``None``.
Observer = Callable[[dict[str, object]], None]


@dataclass
class RunReport:
    """Outcome of one experiment run: rows plus cache/provenance facts.

    ``elapsed_seconds`` is what *this* run spent (the replay time on a cache
    hit); ``compute_seconds`` is what the underlying computation cost when it
    actually ran (equal to ``elapsed_seconds`` on a miss, the stored cold
    time on a hit).
    """

    name: str
    rows: list[dict[str, object]]
    config: dict[str, object]
    cached: bool
    elapsed_seconds: float
    compute_seconds: float = 0.0
    key: str | None = None
    fingerprint: str | None = None

    @property
    def result(self) -> SweepResult:
        return SweepResult(records=self.rows)

    def to_jsonable(self) -> dict[str, object]:
        """One canonical JSON document for a report (mirrors ``SweepResult``).

        The CLI's ``--json`` output, the HTTP run/job responses and the job
        store all serialise reports through here, so rows compare
        byte-identical across every front end.  Tuple-typed config values
        appear as lists (their JSON canonical form).
        """
        return {
            "experiment": self.name,
            "config": {key: sanitize_value(value) for key, value in self.config.items()},
            "rows": [dict(row) for row in self.rows],
            "cached": self.cached,
            "elapsed_seconds": self.elapsed_seconds,
            "compute_seconds": self.compute_seconds,
            "key": self.key,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_jsonable(cls, document: Mapping[str, object]) -> "RunReport":
        """Rebuild a report from :meth:`to_jsonable` output."""
        return cls(
            name=str(document["experiment"]),
            rows=[dict(row) for row in document["rows"]],
            config=dict(document["config"]),
            cached=bool(document["cached"]),
            elapsed_seconds=float(document["elapsed_seconds"]),
            compute_seconds=float(document["compute_seconds"]),
            key=document.get("key"),
            fingerprint=document.get("fingerprint"),
        )


@dataclass(frozen=True)
class ArtifactUnit:
    """One producible unit of the deduplicated artifact plan."""

    artifact: str
    producer: str
    params: tuple[tuple[str, object], ...]
    key: str
    fingerprint: str
    level: int

    def task(
        self, store_root: str, store_url: str | None = None
    ) -> tuple[str, str, dict[str, object], str, str, str, str | None]:
        return (
            self.artifact,
            self.producer,
            dict(self.params),
            self.key,
            self.fingerprint,
            store_root,
            store_url,
        )


class ExperimentRunner:
    """Unified, cache-aware front end over the experiment registry.

    ``use_artifacts`` controls the cross-experiment artifact graph; it
    defaults to ``use_cache`` so ``--no-cache`` style runs stay genuinely
    reuse-free unless artifacts are enabled explicitly.  The store defaults
    to ``<cache root>/artifacts`` so isolated cache directories (tests,
    benchmarks) isolate their artifacts too.
    """

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        use_cache: bool = True,
        registry: Mapping[str, ExperimentSpec] | None = None,
        artifacts: ArtifactStore | None = None,
        use_artifacts: bool | None = None,
    ):
        self.registry = dict(registry) if registry is not None else build_registry()
        self.cache = cache if cache is not None else ResultCache()
        self.use_cache = use_cache
        if artifacts is not None:
            self.artifacts = artifacts
        elif self.cache.root is not None:
            self.artifacts = ArtifactStore(self.cache.root / "artifacts")
        else:
            # Memory-backed result cache (tests, the service's warm L1):
            # keep the artifact store ephemeral too.
            self.artifacts = ArtifactStore(backend=MemoryBackend())
        self.use_artifacts = use_cache if use_artifacts is None else use_artifacts

    def _store_url(self) -> str | None:
        """The networked-store URL workers should tier onto, if any.

        A tiered/remote artifact backend exposes ``url``; plain disk and
        memory backends do not, and workers then rebuild a local store.
        """
        return getattr(self.artifacts.backend, "url", None)

    def spec(self, name: str) -> ExperimentSpec:
        try:
            return self.registry[name]
        except KeyError:
            known = ", ".join(sorted(self.registry))
            raise UnknownExperimentError(f"unknown experiment {name!r}; known: {known}") from None

    def address(self, name: str, overrides: Mapping[str, object] | None = None) -> tuple[dict[str, object], str, str]:
        """``(canonical config, cache key, fingerprint)`` for one request.

        This is the single addressing path every consumer shares: the CLI,
        the batch scheduler and the HTTP warm path all hash configs through
        here, so a request can never address a different entry than the run
        that stored it.
        """
        spec = self.spec(name)
        config = spec.canonical_config(overrides)
        fingerprint = code_fingerprint(spec.module.__name__)
        return config, cache_key(name, spec.canonical_json(config), fingerprint), fingerprint

    def lookup(self, name: str, overrides: Mapping[str, object] | None = None) -> RunReport | None:
        """Warm-path probe: the cached report for a config, or ``None``.

        Never executes anything and never mutates the persisted hit/miss
        counters (it is a read-only probe; the HTTP service keeps its own
        per-request cache counters).  Raises the same validation errors as
        :meth:`run`, so a front end can validate-and-probe in one call.
        """
        config, key, fingerprint = self.address(name, overrides)
        if not self.use_cache:
            return None
        start = time.perf_counter()
        entry = self.cache.get(name, key)
        if entry is None:
            return None
        return RunReport(
            name=name,
            rows=entry.rows,
            config=config,
            cached=True,
            elapsed_seconds=time.perf_counter() - start,
            compute_seconds=entry.elapsed_seconds,
            key=key,
            fingerprint=entry.fingerprint,
        )

    def run(self, name: str, **overrides: object) -> RunReport:
        """Run one experiment (cache-aware).

        Overrides naming object parameters (pre-built models) or unknown
        keys fall through to the driver directly and bypass the cache --
        object identity cannot participate in a content address.
        """
        spec = self.spec(name)
        if any(key not in spec.params for key in overrides):
            start = time.perf_counter()
            rows = SweepResult(records=spec.module.run(**overrides)).to_jsonable()
            elapsed = time.perf_counter() - start
            return RunReport(
                name=name,
                rows=rows,
                config=dict(overrides),
                cached=False,
                elapsed_seconds=elapsed,
                compute_seconds=elapsed,
            )
        return self.run_many([(name, dict(overrides))])[0]

    # -- artifact graph ---------------------------------------------------------

    def _plan_artifacts(
        self, cold: list[tuple[str, dict[str, object]]]
    ) -> list[ArtifactUnit]:
        """Deduplicated artifact units the cold requests need, plan order.

        Units are keyed like the result cache: artifact name + canonical
        params + the *producer's* code fingerprint.  Identical units required
        by several experiments collapse onto one entry -- that is the
        cross-experiment reuse.
        """
        units: dict[str, ArtifactUnit] = {}
        fingerprints: dict[str, str] = {}
        for name, config in cold:
            spec = self.spec(name)
            for binding in spec.artifacts.values():
                if binding.when is not None and not config.get(binding.when):
                    continue
                params = {pname: config[pname] for pname in binding.params}
                if binding.producer not in fingerprints:
                    module_name = binding.producer.partition(":")[0]
                    fingerprints[binding.producer] = code_fingerprint(module_name)
                fingerprint = fingerprints[binding.producer]
                key = artifact_key(binding.name, params, fingerprint)
                if key not in units:
                    units[key] = ArtifactUnit(
                        artifact=binding.name,
                        producer=binding.producer,
                        params=tuple(params.items()),
                        key=key,
                        fingerprint=fingerprint,
                        level=binding.level,
                    )
        return list(units.values())

    def _ensure_artifacts(
        self,
        units: list[ArtifactUnit],
        *,
        jobs: int | None,
        observer: Observer | None = None,
        policy: ExecutionPolicy | None = None,
        outcome: ExecutionOutcome | None = None,
    ) -> StoreStats:
        """Produce the missing units, one wave per topological level."""
        stats = StoreStats()
        store_root = str(self.artifacts.root) if self.artifacts.root is not None else None
        store_url = self._store_url()
        levels = sorted({unit.level for unit in units})
        for level in levels:
            wave = [unit for unit in units if unit.level == level]
            missing = [unit for unit in wave if not self.artifacts.exists(unit.artifact, unit.key)]
            stats.artifact_hits += len(wave) - len(missing)
            stats.artifact_misses += len(missing)
            if observer is not None:
                observer(
                    {
                        "event": "artifact_wave",
                        "level": level,
                        "waves": len(levels),
                        "units": len(wave),
                        "missing": len(missing),
                        "artifacts": sorted({unit.artifact for unit in missing}),
                    }
                )
            if missing and store_root is None:
                # Off-disk (memory-backed) store: workers cannot share it,
                # so produce inline in the parent.  Counters accrue on the
                # store itself and are drained by the caller.
                for unit in missing:
                    produce_into(
                        self.artifacts,
                        unit.artifact,
                        dict(unit.params),
                        load_producer(unit.producer),
                        key=unit.key,
                        fingerprint=unit.fingerprint,
                    )
            elif missing:
                produced = produce_artifacts(
                    [unit.task(store_root, store_url) for unit in missing],
                    jobs=jobs,
                    policy=policy,
                    outcome=outcome,
                )
                # Fold worker-side store telemetry (claims won/lost against
                # concurrent fillers, corruption, evictions, remote traffic)
                # into the stats the parent persists.
                for produced_unit in produced:
                    drained = produced_unit[2] if len(produced_unit) > 2 else {}
                    stats.artifact_claims += drained.get("claims", 0)
                    stats.artifact_claim_waits += drained.get("claim_waits", 0)
                    stats.artifact_corrupt += drained.get("corrupt", 0)
                    stats.quarantined += drained.get("quarantined", 0)
                    stats.artifact_evictions += drained.get("evictions", 0)
                    stats.artifact_evicted_bytes += drained.get("evicted_bytes", 0)
                    stats.claim_wait_timeouts += drained.get("claim_wait_timeouts", 0)
                    stats.remote_hits += drained.get("remote_hits", 0)
                    stats.remote_errors += drained.get("remote_errors", 0)
                    stats.breaker_opens += drained.get("breaker_opens", 0)
            if observer is not None:
                observer({"event": "artifact_wave_done", "level": level, "produced": len(missing)})
        return stats

    # -- experiment execution ----------------------------------------------------

    def _resolve_waiting(
        self,
        name: str,
        config: dict[str, object],
        key: str,
        fingerprint: str,
        policy: ExecutionPolicy | None,
        outcome: ExecutionOutcome,
    ) -> RunReport:
        """Resolve one cold request whose fill claim a concurrent runner won.

        Normally the winner's entry lands and this is a (slightly delayed)
        cache hit.  If the winner died, :func:`wait_for_fill` hands us its
        claim and we compute; if the wait deadline expired we compute
        *without* a claim -- duplicated, uncached work, but deterministic
        and never touching the claim the (slow, live) winner still owns.
        """
        start = time.perf_counter()
        entry = wait_for_fill(self.cache, name, key)
        if entry is not None:
            return RunReport(
                name=name,
                rows=entry.rows,
                config=config,
                cached=True,
                elapsed_seconds=time.perf_counter() - start,
                compute_seconds=entry.elapsed_seconds,
                key=key,
                fingerprint=entry.fingerprint,
            )
        owns_claim = claim_is_owned(self.cache, name, key)
        artifacts_root = (
            str(self.artifacts.root)
            if self.use_artifacts and self.artifacts.root is not None
            else None
        )
        try:
            ((rows, elapsed),) = execute_requests(
                [(name, config)],
                jobs=1,
                artifacts_root=artifacts_root,
                registry=self.registry,
                policy=policy,
                outcome=outcome,
                store_url=self._store_url() if self.use_artifacts else None,
            )
        except BaseException:
            if owns_claim:
                self.cache.release_claim(name, key)
            raise
        if owns_claim:
            try:
                self.cache.put(
                    key,
                    CacheEntry(
                        experiment=name,
                        params=json.loads(self.spec(name).canonical_json(config)),
                        fingerprint=fingerprint,
                        result=SweepResult(records=rows),
                        elapsed_seconds=elapsed,
                        provenance=run_provenance(),
                    ),
                )
            except OSError as error:  # full/read-only disk: serve uncached
                self.cache.release_claim(name, key)
                logger.warning(
                    "result cache write failed for %s (%s); continuing uncached", name, error
                )
        return RunReport(
            name=name,
            rows=rows,
            config=config,
            cached=False,
            elapsed_seconds=elapsed,
            compute_seconds=elapsed,
            key=key,
            fingerprint=fingerprint,
        )

    def run_many(
        self,
        requests: list[tuple[str, dict[str, object]]],
        *,
        jobs: int | None = None,
        observer: Observer | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> list[RunReport]:
        """Run ``(name, overrides)`` requests; cold ones fan out over ``jobs``.

        Reports come back in request order.  Cache lookups happen up front in
        the parent, artifact waves and executions in workers, cache writes
        back in the parent -- a single writer keeps the on-disk store simple.
        ``observer`` (when given) receives progress events: the plan, each
        artifact wave, and the experiment fan-out.  ``policy`` tunes the
        executor's per-unit timeout / retry / respawn behaviour
        (:data:`~repro.runner.executor.DEFAULT_POLICY` when ``None``).
        """
        outcome = ExecutionOutcome()
        prepared: list[RunReport | None] = []
        cold: list[tuple[int, str, dict[str, object], str]] = []
        cold_position: dict[str, int] = {}  # key -> index into `cold` (dedupe)
        duplicates: list[tuple[int, str]] = []  # (request index, key)
        fingerprints: dict[str, str] = {}
        for index, (name, overrides) in enumerate(requests):
            spec = self.spec(name)
            config = spec.canonical_config(overrides)
            if name not in fingerprints:
                fingerprints[name] = code_fingerprint(spec.module.__name__)
            key = cache_key(name, spec.canonical_json(config), fingerprints[name])
            lookup_start = time.perf_counter()
            entry = self.cache.get(name, key) if self.use_cache else None
            if entry is not None:
                prepared.append(
                    RunReport(
                        name=name,
                        rows=entry.rows,
                        config=config,
                        cached=True,
                        elapsed_seconds=time.perf_counter() - lookup_start,
                        compute_seconds=entry.elapsed_seconds,
                        key=key,
                        fingerprint=entry.fingerprint,
                    )
                )
            else:
                prepared.append(None)
                # Identical cold requests in one call compute only once.
                if key in cold_position:
                    duplicates.append((index, key))
                else:
                    cold_position[key] = len(cold)
                    cold.append((index, name, config, key))
        stats = StoreStats(
            result_hits=sum(1 for report in prepared if report is not None),
            result_misses=len(cold) + len(duplicates),
        ) if self.use_cache else StoreStats()
        if observer is not None:
            observer(
                {
                    "event": "planned",
                    "requests": len(requests),
                    "cached": sum(1 for report in prepared if report is not None),
                    "cold": len(cold),
                    "duplicates": len(duplicates),
                }
            )
        if cold:
            # First-writer-wins fill coordination: of N concurrent runners
            # cold-filling one content address, exactly one computes (it
            # `owns` the claim); the rest wait on the winner's entry.
            owned = cold
            waiting: list[tuple[int, str, dict[str, object], str]] = []
            if self.use_cache:
                owned = []
                for item in cold:
                    _index, name, _config, key = item
                    if self.cache.claim(name, key):
                        owned.append(item)
                    else:
                        self.cache.note_wait()
                        waiting.append(item)
            try:
                if owned:
                    artifacts_root: str | None = None
                    if self.use_artifacts:
                        units = self._plan_artifacts(
                            [(name, config) for _index, name, config, _key in owned]
                        )
                        stats = stats.add(
                            self._ensure_artifacts(
                                units, jobs=jobs, observer=observer, policy=policy, outcome=outcome
                            )
                        )
                        if self.artifacts.root is not None:
                            artifacts_root = str(self.artifacts.root)
                    if observer is not None:
                        observer(
                            {
                                "event": "executing",
                                "experiments": len(owned),
                                "waiting": len(waiting),
                            }
                        )
                    results = execute_requests(
                        [(name, config) for _index, name, config, _key in owned],
                        jobs=jobs,
                        artifacts_root=artifacts_root,
                        registry=self.registry,
                        policy=policy,
                        outcome=outcome,
                        store_url=self._store_url() if self.use_artifacts else None,
                    )
                    for (index, name, config, key), (rows, elapsed) in zip(owned, results):
                        spec = self.spec(name)
                        if self.use_cache:
                            try:
                                self.cache.put(
                                    key,
                                    CacheEntry(
                                        experiment=name,
                                        params=json.loads(spec.canonical_json(config)),
                                        fingerprint=fingerprints[name],
                                        result=SweepResult(records=rows),
                                        elapsed_seconds=elapsed,
                                        provenance=run_provenance(),
                                    ),
                                )
                            except OSError as error:  # full/read-only disk: serve uncached
                                self.cache.release_claim(name, key)
                                logger.warning(
                                    "result cache write failed for %s (%s); continuing uncached",
                                    name,
                                    error,
                                )
                        prepared[index] = RunReport(
                            name=name,
                            rows=rows,
                            config=config,
                            cached=False,
                            elapsed_seconds=elapsed,
                            compute_seconds=elapsed,
                            key=key,
                            fingerprint=fingerprints[name],
                        )
                for index, name, config, key in waiting:
                    prepared[index] = self._resolve_waiting(
                        name, config, key, fingerprints[name], policy, outcome
                    )
            except BaseException:
                # Never leak fill claims on the way out: waiters in other
                # processes would stall until the stale-claim TTL.  Claims
                # already cleared by a successful put are no-ops here.
                if self.use_cache:
                    for _index, name, _config, key in owned:
                        self.cache.release_claim(name, key)
                raise
            for index, key in duplicates:
                source = prepared[cold[cold_position[key]][0]]
                prepared[index] = RunReport(
                    name=source.name,
                    rows=[dict(row) for row in source.rows],
                    config=dict(source.config),
                    cached=source.cached,
                    elapsed_seconds=source.elapsed_seconds,
                    compute_seconds=source.compute_seconds,
                    key=source.key,
                    fingerprint=source.fingerprint,
                )
        result_drained = self.cache.drain_stats()
        artifact_drained = self.artifacts.drain_stats()
        stats.result_corrupt += result_drained["corrupt"]
        stats.artifact_corrupt += artifact_drained["corrupt"]
        stats.quarantined += result_drained["quarantined"] + artifact_drained["quarantined"]
        stats.result_claims += result_drained["claims"]
        stats.result_claim_waits += result_drained["claim_waits"]
        stats.result_evictions += result_drained["evictions"]
        stats.result_evicted_bytes += result_drained["evicted_bytes"]
        stats.artifact_claims += artifact_drained["claims"]
        stats.artifact_claim_waits += artifact_drained["claim_waits"]
        stats.artifact_evictions += artifact_drained["evictions"]
        stats.artifact_evicted_bytes += artifact_drained["evicted_bytes"]
        for drained in (result_drained, artifact_drained):
            stats.claim_wait_timeouts += drained.get("claim_wait_timeouts", 0)
            stats.remote_hits += drained.get("remote_hits", 0)
            stats.remote_errors += drained.get("remote_errors", 0)
            stats.breaker_opens += drained.get("breaker_opens", 0)
        stats.retried += outcome.retries
        if (self.use_cache or self.use_artifacts) and self.cache.root is not None:
            try:
                record_stats(self.cache.root, stats)
            except OSError as error:  # stats are best-effort observability
                logger.warning("could not persist cache stats (%s)", error)
        if observer is not None:
            observer(
                {
                    "event": "executed",
                    "experiments": len(cold),
                    "retries": outcome.retries,
                    "crashes": outcome.crashes,
                    "timeouts": outcome.timeouts,
                    "degraded": outcome.degraded,
                }
            )
        return [report for report in prepared if report is not None]

    def run_all(
        self, *, jobs: int | None = None, policy: ExecutionPolicy | None = None
    ) -> list[RunReport]:
        """Every registered experiment with default configs, registry order."""
        return self.run_many([(name, {}) for name in self.registry], jobs=jobs, policy=policy)

    def render(self, report: RunReport) -> str:
        """Driver-formatted text for a report's rows (live or cached alike)."""
        return self.spec(report.name).render(report.rows)
