"""Experiment orchestration: registry, result cache, parallel execution, CLI.

The runner unifies how the reproduction executes (PR 3):

* :mod:`repro.runner.registry` -- typed experiment specs with deterministic
  config canonicalization over ``repro.experiments.EXPERIMENTS``;
* :mod:`repro.runner.fingerprint` -- static import-closure code fingerprints;
* :mod:`repro.runner.cache` -- the content-addressed on-disk result cache
  (key = experiment + canonical params + code fingerprint);
* :mod:`repro.runner.executor` -- process-parallel sweep/experiment fan-out
  with deterministic record ordering;
* :mod:`repro.runner.service` -- the cache-aware :class:`ExperimentRunner`;
* :mod:`repro.runner.cli` -- the ``python -m repro`` entry point.
"""

from .cache import CacheEntry, ResultCache, cache_key, default_cache_root
from .cli import main
from .executor import execute_requests, parallel_sweep
from .fingerprint import code_fingerprint, module_closure
from .registry import ExperimentSpec, ParamSpec, build_registry
from .service import ExperimentRunner, RunReport

__all__ = [
    "CacheEntry",
    "ResultCache",
    "cache_key",
    "default_cache_root",
    "main",
    "execute_requests",
    "parallel_sweep",
    "code_fingerprint",
    "module_closure",
    "ExperimentSpec",
    "ParamSpec",
    "build_registry",
    "ExperimentRunner",
    "RunReport",
]
