"""Experiment orchestration: registry, caches, artifact graph, parallel execution, CLI.

The runner unifies how the reproduction executes (PR 3, extended in PR 5):

* :mod:`repro.runner.registry` -- typed experiment specs with deterministic
  config canonicalization over ``repro.experiments.EXPERIMENTS``, plus the
  drivers' declared ``ARTIFACTS`` bindings;
* :mod:`repro.runner.fingerprint` -- static import-closure code fingerprints;
* :mod:`repro.runner.backends` -- the pluggable :class:`StoreBackend`
  protocol (disk + in-memory), first-writer-wins fill claims and LRU
  eviction shared by both stores;
* :mod:`repro.runner.cache` -- the content-addressed result cache
  (key = experiment + canonical params + code fingerprint);
* :mod:`repro.runner.artifacts` -- the content-addressed store for shared
  sub-experiment intermediates (key = artifact + canonical params +
  producer fingerprint) with hit/miss statistics;
* :mod:`repro.runner.executor` -- process-parallel sweep/artifact/experiment
  fan-out with deterministic record ordering;
* :mod:`repro.runner.service` -- the cache- and artifact-aware
  :class:`ExperimentRunner` scheduling cold runs as topological DAG waves;
* :mod:`repro.runner.errors` -- the :class:`ReproError` taxonomy with
  stable ``code`` fields shared by the CLI and the HTTP service;
* :mod:`repro.runner.cli` -- the ``python -m repro`` entry point.
"""

from .artifacts import (
    ArtifactEntry,
    ArtifactStore,
    StoreStats,
    activated,
    active_store,
    artifact_key,
    default_artifact_root,
    load_stats,
    record_stats,
    reset_stats,
    resolve_artifact,
)
from .backends import (
    ClaimTicket,
    DiskBackend,
    MemoryBackend,
    StoreBackend,
    evict_lru,
    wait_for_fill,
)
from .cache import CacheEntry, ResultCache, cache_key, default_cache_root
from .cli import CliError, main
from .errors import (
    ExecutionError,
    ParamError,
    ParamTypeError,
    ParamValueError,
    ReproError,
    UnknownExperimentError,
    UnknownParamError,
)
from .executor import execute_requests, parallel_sweep, produce_artifacts
from .fingerprint import code_fingerprint, module_closure
from .registry import ArtifactBinding, ExperimentSpec, ParamSpec, build_registry
from .service import ArtifactUnit, ExperimentRunner, Observer, RunReport

__all__ = [
    "ArtifactBinding",
    "ArtifactEntry",
    "ArtifactStore",
    "ArtifactUnit",
    "CacheEntry",
    "ClaimTicket",
    "DiskBackend",
    "MemoryBackend",
    "ResultCache",
    "StoreBackend",
    "StoreStats",
    "evict_lru",
    "wait_for_fill",
    "activated",
    "active_store",
    "artifact_key",
    "cache_key",
    "default_artifact_root",
    "default_cache_root",
    "load_stats",
    "main",
    "execute_requests",
    "parallel_sweep",
    "produce_artifacts",
    "code_fingerprint",
    "module_closure",
    "record_stats",
    "reset_stats",
    "resolve_artifact",
    "ExperimentSpec",
    "ParamSpec",
    "build_registry",
    "ExperimentRunner",
    "Observer",
    "RunReport",
    "CliError",
    "ExecutionError",
    "ParamError",
    "ParamTypeError",
    "ParamValueError",
    "ReproError",
    "UnknownExperimentError",
    "UnknownParamError",
]
