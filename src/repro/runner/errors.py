"""Typed error taxonomy shared by the registry, the CLI and the HTTP service.

Every user-facing failure mode of the orchestration layer maps onto one
:class:`ReproError` subclass carrying a stable machine-readable ``code``.
The three front ends render the same exception three ways:

* the Python facade (:mod:`repro.api`) lets them propagate as-is;
* the CLI prints the message and exits with a distinct status
  (usage 2, validation 3, execution 4);
* the HTTP service serialises them as structured JSON error bodies
  (``{"error": {"code": ..., "param": ..., "expected": ...}}``).

Parameter errors additionally subclass the builtin exception a pre-facade
caller would have seen (``KeyError`` for unknown names, ``TypeError`` for
type mismatches, ``ValueError`` for unparsable text), so existing
``except``/test code keeps working while new code can catch the single
:class:`ParamError` base.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base of every typed error raised by the public API surface.

    ``code`` is a stable machine-readable identifier; subclasses override
    it and the HTTP layer echoes it verbatim in error bodies.
    """

    code: str = "error"

    def __str__(self) -> str:  # KeyError subclasses would otherwise repr() the message
        return self.args[0] if self.args else self.__class__.__name__


class ParamError(ReproError):
    """A parameter failed validation against an experiment's ``PARAMS`` schema.

    Attributes
    ----------
    param:
        The offending parameter name (``None`` when the failure is not
        attributable to a single parameter).
    expected:
        Human-readable description of what would have been accepted.
    """

    code = "invalid_param"

    def __init__(self, message: str, *, param: str | None = None, expected: str | None = None):
        super().__init__(message)
        self.param = param
        self.expected = expected


class UnknownParamError(ParamError, KeyError):
    """An override names a parameter the experiment does not declare."""

    code = "unknown_param"


class ParamTypeError(ParamError, TypeError):
    """An override value has the wrong type for its declared parameter."""

    code = "invalid_type"


class ParamValueError(ParamError, ValueError):
    """A textual parameter value (CLI/query form) cannot be parsed."""

    code = "invalid_value"


class UnknownExperimentError(ReproError, KeyError):
    """A request names an experiment that is not in the registry."""

    code = "unknown_experiment"


class ExecutionError(ReproError):
    """An experiment driver raised while computing; the cause is chained."""

    code = "execution_error"


class WorkerCrashError(ExecutionError):
    """A worker process died (kill/OOM/segfault) and the retry budget ran out.

    The executor retries crashed units on a respawned pool before raising
    this; seeing it means the crash reproduced past every retry.
    """

    code = "worker_crashed"


class UnitTimeoutError(ExecutionError):
    """A unit exceeded its wall-clock timeout on every allowed attempt."""

    code = "unit_timeout"
