"""Pluggable storage backends for the content-addressed stores.

Both stores (:class:`~repro.runner.cache.ResultCache` and
:class:`~repro.runner.artifacts.ArtifactStore`) speak one byte-level
:class:`StoreBackend` protocol: entries are opaque blobs addressed by a
``(namespace, filename)`` pair (namespace = experiment/artifact name,
filename = ``<content key> + suffix``).  The stores keep all semantics --
serialisation, schema checks, corruption quarantine, counters, fault
sites -- while backends own durability, atomicity and the concurrency
primitives:

* **first-writer-wins claims** -- ``claim()`` creates a per-entry claim
  ticket with ``O_CREAT | O_EXCL`` (the :mod:`repro.faults` ticket
  idiom), so exactly one of N processes cold-filling the same content
  address wins; losers poll :func:`wait_for_fill` and read the winner's
  entry instead of recomputing.  A claim records ``{pid, host,
  created_unix}`` so a dead winner (killed mid-fill) is detected and the
  claim taken over;
* **access-time sidecars** -- every read touches a per-entry ``.atime``
  sidecar, giving :func:`evict_lru` an LRU order without rewriting
  entries;
* **bounded stores** -- :func:`evict_lru` deletes least-recently-used
  entries past a byte budget, never touching in-flight fills (claimed
  entries), the entry just written, or anything under a reserved
  namespace (``corrupt/`` quarantine sidecars, ``artifacts/``,
  ``jobs/``).

Two backends ship here: :class:`DiskBackend` (the default; preserves the
exact on-disk layout the stores have always used, so existing caches
stay valid) and :class:`MemoryBackend` (lock-guarded dicts; used by
tests and the HTTP service's warm-path L1).  A networked/shared backend
plugs into the same seam later.

This module deliberately imports only the standard library, so adding it
to the stores' import closure does not drag the runner package into the
drivers' code fingerprints.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Protocol, runtime_checkable

#: Wait budget (seconds) of a claim loser polling for the winner's fill.
ENV_CLAIM_WAIT = "REPRO_CLAIM_WAIT_SECONDS"
DEFAULT_CLAIM_WAIT_SECONDS = 600.0

#: Age (seconds) past which a claim is considered abandoned even when its
#: owner cannot be probed (another host, unreadable ticket).
ENV_CLAIM_TTL = "REPRO_CLAIM_TTL_SECONDS"
DEFAULT_CLAIM_TTL_SECONDS = 900.0

#: Poll interval of :func:`wait_for_fill` (override via the environment so
#: claim-contention tests and chaos runs don't sleep full 50 ms ticks).
ENV_CLAIM_POLL = "REPRO_CLAIM_POLL_SECONDS"
CLAIM_POLL_SECONDS = 0.05

#: Directory names under a store root that iteration/eviction must never
#: touch: the corruption quarantine, the nested artifact store and the
#: service's job journal.
RESERVED_NAMESPACES = frozenset({"corrupt", "artifacts", "jobs"})

_HOST = socket.gethostname()


def _env_seconds(name: str, default: float) -> float:
    value = os.environ.get(name)
    if not value:
        return default
    try:
        return float(value)
    except ValueError:
        return default


def claim_wait_seconds() -> float:
    """How long a claim loser waits for the winner before computing anyway."""
    return _env_seconds(ENV_CLAIM_WAIT, DEFAULT_CLAIM_WAIT_SECONDS)


def claim_ttl_seconds() -> float:
    """Age past which any claim is treated as abandoned."""
    return _env_seconds(ENV_CLAIM_TTL, DEFAULT_CLAIM_TTL_SECONDS)


def claim_poll_seconds() -> float:
    """Poll interval of :func:`wait_for_fill` (``$REPRO_CLAIM_POLL_SECONDS``)."""
    interval = _env_seconds(ENV_CLAIM_POLL, CLAIM_POLL_SECONDS)
    return interval if interval > 0 else CLAIM_POLL_SECONDS


def env_max_bytes(name: str) -> int | None:
    """Parse a byte-budget environment variable (unset/empty/invalid/<=0 = None)."""
    value = os.environ.get(name)
    if not value:
        return None
    try:
        parsed = int(value)
    except ValueError:
        return None
    return parsed if parsed > 0 else None


@dataclass(frozen=True)
class EntryStat:
    """Size and last-access stamp of one stored entry."""

    size_bytes: int
    accessed_unix: float


@dataclass(frozen=True)
class ClaimTicket:
    """Provenance of one in-flight fill claim (who is computing the entry)."""

    pid: int
    host: str
    created_unix: float

    def is_stale(self, *, ttl_seconds: float | None = None) -> bool:
        """Whether the claiming process is provably (or presumably) gone.

        Same-host claims are probed directly (``kill -0``); claims from
        other hosts -- or unreadable tickets -- fall back to the age TTL.
        """
        ttl = ttl_seconds if ttl_seconds is not None else claim_ttl_seconds()
        if self.created_unix <= 0:  # unreadable/torn ticket: treat as abandoned
            return True
        if self.host == _HOST and self.pid > 0:
            try:
                os.kill(self.pid, 0)
            except ProcessLookupError:
                return True
            except OSError:  # pragma: no cover - e.g. EPERM: alive, not ours
                pass
            # The owner is alive; only a blown TTL (wedged fill) unseats it.
        return time.time() - self.created_unix > ttl


@runtime_checkable
class StoreBackend(Protocol):
    """Byte-level storage seam shared by the result cache and artifact store.

    Entries are opaque blobs under ``(namespace, filename)``.  ``put`` must
    be atomic (readers see the old blob, the new blob, or a miss -- never a
    torn write) and must clear any fill claim on the entry once the blob is
    visible.  ``iter`` must skip claim/atime sidecars and reserved
    namespaces.  ``root`` is the backing directory (``None`` for
    non-filesystem backends).
    """

    root: Path | None

    def get(self, namespace: str, filename: str, *, touch: bool = True) -> bytes | None: ...

    def put(self, namespace: str, filename: str, blob: bytes) -> None: ...

    def delete(self, namespace: str, filename: str) -> bool: ...

    def iter(self, namespace: str | None = None) -> Iterator[tuple[str, str]]: ...

    def stat(self, namespace: str, filename: str) -> EntryStat | None: ...

    def path(self, namespace: str, filename: str) -> Path | None: ...

    def touch(self, namespace: str, filename: str) -> None: ...

    def claim(self, namespace: str, filename: str, *, owner: ClaimTicket | None = None) -> bool: ...

    def claim_info(self, namespace: str, filename: str) -> ClaimTicket | None: ...

    def release(self, namespace: str, filename: str, *, owner: ClaimTicket | None = None) -> bool: ...

    def quarantine(self, namespace: str, filename: str) -> bool: ...


class DiskBackend:
    """The default backend: one directory per namespace, one file per entry.

    Layout is byte-for-byte the one the stores have always written
    (``<root>/<namespace>/<key>.<suffix>``, quarantine under
    ``<root>/corrupt/<namespace>/``), so existing caches remain valid.
    Two hidden sidecars ride next to each entry: ``.<filename>.atime``
    (mtime = last access, for LRU eviction) and ``.<filename>.claim``
    (the in-flight fill ticket).  Hidden files never match ``iter``.
    """

    def __init__(self, root: Path | str):
        self.root = Path(root)

    def _file(self, namespace: str, filename: str) -> Path:
        return self.root / namespace / filename

    def _sidecar(self, namespace: str, filename: str, kind: str) -> Path:
        return self.root / namespace / f".{filename}.{kind}"

    def path(self, namespace: str, filename: str) -> Path | None:
        return self._file(namespace, filename)

    def get(self, namespace: str, filename: str, *, touch: bool = True) -> bytes | None:
        try:
            blob = self._file(namespace, filename).read_bytes()
        except OSError:
            return None
        if touch:
            self.touch(namespace, filename)
        return blob

    def touch(self, namespace: str, filename: str) -> None:
        sidecar = self._sidecar(namespace, filename, "atime")
        try:
            os.utime(sidecar)
        except OSError:
            try:
                sidecar.parent.mkdir(parents=True, exist_ok=True)
                sidecar.touch()
            except OSError:  # read-only store: LRU order degrades to mtime
                pass

    def put(self, namespace: str, filename: str, blob: bytes) -> None:
        path = self._file(namespace, filename)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{filename[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(blob)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.touch(namespace, filename)
        # Entry first, claim second: a waiter that observes "no claim" is
        # then guaranteed to find the entry (or a writer that truly died).
        self.release(namespace, filename)

    def delete(self, namespace: str, filename: str) -> bool:
        removed = False
        try:
            os.unlink(self._file(namespace, filename))
            removed = True
        except OSError:
            pass
        for kind in ("atime", "claim"):
            try:
                os.unlink(self._sidecar(namespace, filename, kind))
            except OSError:
                pass
        return removed

    def iter(self, namespace: str | None = None) -> Iterator[tuple[str, str]]:
        if namespace is not None:
            directories = [self.root / namespace]
        elif self.root.is_dir():
            directories = sorted(
                child
                for child in self.root.iterdir()
                if child.is_dir() and child.name not in RESERVED_NAMESPACES
            )
        else:
            return
        for directory in directories:
            if not directory.is_dir():
                continue
            for path in sorted(directory.iterdir()):
                if path.name.startswith(".") or not path.is_file():
                    continue
                yield directory.name, path.name

    def stat(self, namespace: str, filename: str) -> EntryStat | None:
        try:
            stamp = self._file(namespace, filename).stat()
        except OSError:
            return None
        accessed = stamp.st_mtime
        try:
            accessed = self._sidecar(namespace, filename, "atime").stat().st_mtime
        except OSError:
            pass
        return EntryStat(size_bytes=stamp.st_size, accessed_unix=accessed)

    def claim(self, namespace: str, filename: str, *, owner: ClaimTicket | None = None) -> bool:
        token = self._sidecar(namespace, filename, "claim")
        try:
            token.parent.mkdir(parents=True, exist_ok=True)
            descriptor = os.open(str(token), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            # A store that cannot even create the ticket cannot coordinate;
            # pretend we won so work proceeds (the write degrades later).
            return True
        # ``owner`` lets a store *server* record the claiming client's
        # identity instead of its own, so staleness probing sees the real
        # owner.
        if owner is not None:
            ticket = {"pid": owner.pid, "host": owner.host, "created_unix": owner.created_unix}
        else:
            ticket = {"pid": os.getpid(), "host": _HOST, "created_unix": round(time.time(), 3)}
        with os.fdopen(descriptor, "w") as handle:
            handle.write(json.dumps(ticket))
        return True

    def claim_info(self, namespace: str, filename: str) -> ClaimTicket | None:
        token = self._sidecar(namespace, filename, "claim")
        try:
            text = token.read_text()
        except OSError:
            return None
        try:
            document = json.loads(text)
        except ValueError:
            document = {}
        if not isinstance(document, dict):
            document = {}
        try:
            ticket = ClaimTicket(
                pid=int(document.get("pid", -1)),
                host=str(document.get("host", "")),
                created_unix=float(document.get("created_unix", 0.0)),
            )
        except (TypeError, ValueError):
            ticket = ClaimTicket(pid=-1, host="", created_unix=0.0)
        if ticket.created_unix <= 0:
            # An unreadable ticket is either *mid-write* (``claim`` makes the
            # file visible via O_EXCL before its bytes land) or truly torn by
            # a killed writer.  The two are indistinguishable from the bytes,
            # so age it by file mtime: a just-created ticket stays fresh (no
            # stolen live claims), a genuinely torn one expires via the TTL.
            try:
                ticket = ClaimTicket(
                    pid=ticket.pid, host=ticket.host, created_unix=token.stat().st_mtime
                )
            except OSError:  # raced away: report the torn ticket as-is
                pass
        return ticket

    def release(self, namespace: str, filename: str, *, owner: ClaimTicket | None = None) -> bool:
        if owner is not None:
            current = self.claim_info(namespace, filename)
            if current != owner:  # somebody else re-claimed already
                return False
        try:
            os.unlink(self._sidecar(namespace, filename, "claim"))
        except OSError:
            return False
        return True

    def quarantine(self, namespace: str, filename: str) -> bool:
        """Move a corrupt entry under ``<root>/corrupt/``; same-fs ``os.replace``."""
        destination = self.root / "corrupt" / namespace / filename
        try:
            destination.parent.mkdir(parents=True, exist_ok=True)
            os.replace(self._file(namespace, filename), destination)
        except OSError:  # lost the race; the entry is gone either way
            return False
        for kind in ("atime", "claim"):
            try:
                os.unlink(self._sidecar(namespace, filename, kind))
            except OSError:
                pass
        return True


class MemoryBackend:
    """In-memory backend: lock-guarded dicts, monotonic-counter LRU order.

    Used by tests and as the HTTP service's warm-path L1 in front of the
    on-disk store.  ``root`` is ``None``; quarantine simply drops the
    corrupt blob (there is nothing durable to keep for forensics).
    """

    def __init__(self):
        self.root: Path | None = None
        self._lock = threading.Lock()
        self._blobs: dict[tuple[str, str], bytes] = {}
        self._accessed: dict[tuple[str, str], float] = {}
        self._claims: dict[tuple[str, str], ClaimTicket] = {}
        self._tick = 0.0

    def _touch_locked(self, address: tuple[str, str]) -> None:
        self._tick += 1.0
        self._accessed[address] = self._tick

    def path(self, namespace: str, filename: str) -> Path | None:
        return None

    def get(self, namespace: str, filename: str, *, touch: bool = True) -> bytes | None:
        with self._lock:
            blob = self._blobs.get((namespace, filename))
            if blob is not None and touch:
                self._touch_locked((namespace, filename))
            return blob

    def touch(self, namespace: str, filename: str) -> None:
        with self._lock:
            if (namespace, filename) in self._blobs:
                self._touch_locked((namespace, filename))

    def put(self, namespace: str, filename: str, blob: bytes) -> None:
        with self._lock:
            self._blobs[(namespace, filename)] = bytes(blob)
            self._touch_locked((namespace, filename))
            self._claims.pop((namespace, filename), None)

    def delete(self, namespace: str, filename: str) -> bool:
        with self._lock:
            self._accessed.pop((namespace, filename), None)
            self._claims.pop((namespace, filename), None)
            return self._blobs.pop((namespace, filename), None) is not None

    def iter(self, namespace: str | None = None) -> Iterator[tuple[str, str]]:
        with self._lock:
            addresses = sorted(self._blobs)
        for stored_namespace, filename in addresses:
            if namespace is not None and stored_namespace != namespace:
                continue
            if stored_namespace in RESERVED_NAMESPACES:
                continue
            yield stored_namespace, filename

    def stat(self, namespace: str, filename: str) -> EntryStat | None:
        with self._lock:
            blob = self._blobs.get((namespace, filename))
            if blob is None:
                return None
            return EntryStat(
                size_bytes=len(blob),
                accessed_unix=self._accessed.get((namespace, filename), 0.0),
            )

    def claim(self, namespace: str, filename: str, *, owner: ClaimTicket | None = None) -> bool:
        with self._lock:
            if (namespace, filename) in self._claims:
                return False
            self._claims[(namespace, filename)] = owner if owner is not None else ClaimTicket(
                pid=os.getpid(), host=_HOST, created_unix=round(time.time(), 3)
            )
            return True

    def claim_info(self, namespace: str, filename: str) -> ClaimTicket | None:
        with self._lock:
            return self._claims.get((namespace, filename))

    def release(self, namespace: str, filename: str, *, owner: ClaimTicket | None = None) -> bool:
        with self._lock:
            current = self._claims.get((namespace, filename))
            if current is None or (owner is not None and current != owner):
                return False
            del self._claims[(namespace, filename)]
            return True

    def quarantine(self, namespace: str, filename: str) -> bool:
        return self.delete(namespace, filename)


def evict_lru(
    backend: StoreBackend,
    max_bytes: int,
    *,
    keep: Iterable[tuple[str, str]] = (),
    on_evict: Callable[[str, str], None] | None = None,
) -> tuple[int, int]:
    """Delete least-recently-used entries until the store fits ``max_bytes``.

    Never evicts entries named in ``keep`` (the entry just written), entries
    with a live fill claim (in-flight refills), or anything a backend's
    ``iter`` hides (reserved namespaces -- quarantine sidecars do not count
    toward the budget and are never deleted here).  An entry larger than
    the whole budget therefore survives while protected: the store is
    bounded by ``max(max_bytes, largest single entry)``.  Returns
    ``(entries evicted, bytes freed)``; deletions are best-effort.
    """
    protected = set(keep)
    candidates: list[tuple[float, str, str, int]] = []
    total = 0
    for namespace, filename in backend.iter():
        stamp = backend.stat(namespace, filename)
        if stamp is None:  # raced away mid-scan
            continue
        total += stamp.size_bytes
        candidates.append((stamp.accessed_unix, namespace, filename, stamp.size_bytes))
    if total <= max_bytes:
        return 0, 0
    evicted = 0
    freed = 0
    for _accessed, namespace, filename, size in sorted(candidates):
        if total - freed <= max_bytes:
            break
        if (namespace, filename) in protected:
            continue
        if backend.claim_info(namespace, filename) is not None:
            continue  # an in-flight fill owns this address
        if on_evict is not None:
            on_evict(namespace, filename)
        if backend.delete(namespace, filename):
            evicted += 1
            freed += size
    return evicted, freed


def claim_is_owned(store, namespace: str, key: str) -> bool:
    """Whether the current ticket on ``(namespace, key)`` belongs to *us*.

    Callers that got ``None`` from :func:`wait_for_fill` use this to tell
    a takeover (we own the claim; release/fill it) from a deadline expiry
    (someone else still owns it; compute without touching the claim).
    """
    ticket = store.claim_info(namespace, key)
    return ticket is not None and ticket.pid == os.getpid() and ticket.host == _HOST


def wait_for_fill(store, namespace: str, key: str, *, poll_seconds: float | None = None):
    """Poll until a concurrent filler's entry lands, or the caller must compute.

    ``store`` is a :class:`~repro.runner.cache.ResultCache` /
    :class:`~repro.runner.artifacts.ArtifactStore` (anything exposing
    ``get``/``claim``/``claim_info``/``break_claim``/``release_claim``).
    Returns the winner's entry when the fill completes.  Returns ``None``
    when the caller should compute instead -- either it now *owns* the
    claim (the previous winner died or released without filling) or the
    wait deadline (``$REPRO_CLAIM_WAIT_SECONDS``) expired, in which case
    the duplicate fill is wasteful but deterministic, never corrupting.
    Deadline expiries tally the store's ``note_wait_timeout`` counter when
    it has one; :func:`claim_is_owned` distinguishes the two ``None``
    cases for the caller.
    """
    if poll_seconds is None:
        poll_seconds = claim_poll_seconds()
    deadline = time.monotonic() + claim_wait_seconds()
    ttl = claim_ttl_seconds()
    while True:
        entry = store.get(namespace, key)
        if entry is not None:
            return entry
        ticket = store.claim_info(namespace, key)
        if ticket is None or ticket.is_stale(ttl_seconds=ttl):
            # The writer vanished (released without filling) or died
            # mid-fill.  Entries land before claims clear, so first re-check
            # for a fill that completed between the ``get`` above and the
            # ticket read -- claiming in that window would tally a spurious
            # takeover in the store's claim counters.
            entry = store.get(namespace, key)
            if entry is not None:
                return entry
            # Break exactly that ticket and take the claim over.
            if ticket is not None:
                store.break_claim(namespace, key, ticket)
            if store.claim(namespace, key):
                # Re-check once more: a full fill cycle squeezing between the
                # re-check above and this claim is near-impossible but cheap
                # to rule out.
                entry = store.get(namespace, key)
                if entry is None:
                    return None  # we own the claim: compute
                store.release_claim(namespace, key)
                return entry
        if time.monotonic() >= deadline:
            # Hard-deadline exhaustion: degrade to computing locally rather
            # than raising or spinning forever.  The caller does NOT own the
            # claim here -- its result lands uncached (the winner's entry,
            # whenever it arrives, stays authoritative).
            note_timeout = getattr(store, "note_wait_timeout", None)
            if note_timeout is not None:
                note_timeout()
            return None
        time.sleep(poll_seconds)
