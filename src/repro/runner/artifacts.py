"""Content-addressed store for cross-experiment *sub-experiment* artifacts.

The result cache (PR 3) deduplicates whole experiment runs, but a cold
``run all`` still recomputes shared intermediates: table1, fig2 and fig3
each need the same multiplier characterisation, and fig6's AlexNet
precision search re-derives one layer profile after another on a single
core.  This module stores those intermediates -- multiplier
characterisations, trained networks, per-layer precision profiles,
sparsity workloads -- under content addresses mirroring the result-cache
keying::

    sha256(schema version + artifact name + canonical params + producer fingerprint)

The *producer fingerprint* is the static import-closure digest
(:func:`repro.runner.fingerprint.code_fingerprint`) of the producer's
module, so an edit to ``core/scaling.py`` invalidates exactly the
characterisation artifact and its consumers' result entries -- never
fig6's trained weights.

Two layers use the store:

* the scheduler (:mod:`repro.runner.service`) resolves each driver's
  declared ``ARTIFACTS`` into a producer/consumer DAG and fills the store
  in topological waves over worker processes before cold experiments run;
* producer modules expose *resolvers* built on :func:`resolve_artifact`:
  with a store active they load-or-compute (and therefore hit after the
  scheduler's wave); without one they compute inline, so direct driver
  calls behave exactly as before the store existed.

Concurrent fillers (workers in one run, or whole fleets sharing a store)
coordinate through the same first-writer-wins claims as the result cache:
:func:`produce_into` computes only after winning the fill claim, and
losers wait for the winner's entry instead of duplicating the work.  A
``max_bytes`` budget (``$REPRO_ARTIFACTS_MAX_BYTES``; deliberately
separate from the result cache's cap, so a tight result budget cannot
thrash multi-MB trained networks) bounds the store with LRU eviction.

Entries are pickles, which is safe here for the same reason the result
cache's JSON is trusted: the store root is a local directory owned by the
user running the experiments.  This module deliberately imports nothing
from the runner package except :mod:`~repro.runner.fingerprint` and the
stdlib-only :mod:`~repro.runner.backends`, so a driver's lazy
``from ..runner.artifacts import ...`` keeps the result cache and CLI
out of its fingerprint closure.
"""

from __future__ import annotations

import contextlib
import hashlib
import importlib
import json
import logging
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Mapping

from ..faults import fault_point
from .backends import (
    ClaimTicket,
    DiskBackend,
    StoreBackend,
    claim_is_owned,
    env_max_bytes,
    evict_lru,
    wait_for_fill,
)
from .fingerprint import code_fingerprint

logger = logging.getLogger(__name__)

#: Bumped when the on-disk artifact layout changes; part of every key.
ARTIFACT_SCHEMA_VERSION = 1

#: Sidecar directory (under the store root) corrupt entries are moved into.
QUARANTINE_DIRNAME = "corrupt"

#: Legacy snapshot file (under the shared cache root) of the counters.
#: Still read for totals; new deltas land in :data:`STATS_LOG_FILENAME`.
STATS_FILENAME = "_stats.json"

#: Append-only counter log: one JSON delta per line, written with
#: ``O_APPEND`` so concurrent recorders never lose increments (the old
#: read-modify-write snapshot dropped updates under contention).
STATS_LOG_FILENAME = "_stats.jsonl"

#: Size budget (bytes) of the artifact store; unset/0 = unbounded.
ENV_ARTIFACTS_MAX_BYTES = "REPRO_ARTIFACTS_MAX_BYTES"


def default_artifact_root() -> Path:
    """``<result-cache root>/artifacts`` (honours ``$REPRO_CACHE_DIR``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    base = Path(env) if env else Path.home() / ".cache" / "dvafs-repro"
    return base / "artifacts"


def canonical_params_json(params: Mapping[str, object]) -> str:
    """Deterministic JSON form of artifact parameters (tuples as arrays)."""
    return json.dumps(
        {key: list(value) if isinstance(value, tuple) else value for key, value in params.items()},
        sort_keys=True,
        separators=(",", ":"),
    )


def artifact_key(artifact: str, params: Mapping[str, object], fingerprint: str) -> str:
    """Content address of one artifact: name + canonical params + producer code."""
    blob = json.dumps(
        {
            "schema": ARTIFACT_SCHEMA_VERSION,
            "artifact": artifact,
            "params": canonical_params_json(params),
            "fingerprint": fingerprint,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def load_producer(producer: str) -> Callable[..., object]:
    """Resolve a ``"package.module:function"`` producer path to its callable."""
    module_name, separator, function_name = producer.partition(":")
    if not separator or not module_name or not function_name:
        raise ValueError(f"producer {producer!r} is not of the form 'module:function'")
    module = importlib.import_module(module_name)
    function = getattr(module, function_name, None)
    if not callable(function):
        raise TypeError(f"producer {producer!r} does not name a callable")
    return function


@dataclass
class ArtifactEntry:
    """One stored artifact: payload plus the provenance to trust it."""

    artifact: str
    params: dict[str, object]
    fingerprint: str
    payload: object
    elapsed_seconds: float
    provenance: dict[str, object] = field(default_factory=dict)

    def to_document(self) -> dict[str, object]:
        return {
            "schema": ARTIFACT_SCHEMA_VERSION,
            "artifact": self.artifact,
            "params": self.params,
            "fingerprint": self.fingerprint,
            "elapsed_seconds": self.elapsed_seconds,
            "provenance": self.provenance,
            "payload": self.payload,
        }

    @classmethod
    def from_document(cls, document: Mapping[str, object]) -> "ArtifactEntry":
        return cls(
            artifact=str(document["artifact"]),
            params=dict(document["params"]),
            fingerprint=str(document["fingerprint"]),
            payload=document["payload"],
            elapsed_seconds=float(document["elapsed_seconds"]),
            provenance=dict(document.get("provenance", {})),
        )


class ArtifactStore:
    """Content-addressed store of sub-experiment intermediates.

    Mirrors :class:`~repro.runner.cache.ResultCache` over the same
    :class:`~repro.runner.backends.StoreBackend` seam: pickled entries,
    first-writer-wins fill claims, optional LRU byte budget
    (``$REPRO_ARTIFACTS_MAX_BYTES``).
    """

    #: Fault-plan site names of this store's claim/evict hooks.
    CLAIM_SITE = "artifact.claim"
    EVICT_SITE = "artifact.evict"

    def __init__(
        self,
        root: Path | str | None = None,
        *,
        backend: StoreBackend | None = None,
        max_bytes: int | None = None,
    ):
        if backend is not None:
            self.backend = backend
        else:
            self.backend = DiskBackend(Path(root) if root is not None else default_artifact_root())
        self.root = self.backend.root
        self.max_bytes = (
            max_bytes if max_bytes is not None else env_max_bytes(ENV_ARTIFACTS_MAX_BYTES)
        )
        #: Tallies since the last :meth:`drain_stats`.
        self.recent_corrupt = 0
        self.recent_quarantined = 0
        self.recent_claims = 0
        self.recent_claim_waits = 0
        self.recent_claim_wait_timeouts = 0
        self.recent_evictions = 0
        self.recent_evicted_bytes = 0

    def drain_stats(self) -> dict[str, int]:
        """Counters tallied since the last drain; resets them.

        Keys: ``corrupt``, ``quarantined``, ``claims``, ``claim_waits``,
        ``claim_wait_timeouts``, ``evictions``, ``evicted_bytes`` -- plus
        the backend's drained remote counters when it is networked.
        """
        drained = {
            "corrupt": self.recent_corrupt,
            "quarantined": self.recent_quarantined,
            "claims": self.recent_claims,
            "claim_waits": self.recent_claim_waits,
            "claim_wait_timeouts": self.recent_claim_wait_timeouts,
            "evictions": self.recent_evictions,
            "evicted_bytes": self.recent_evicted_bytes,
        }
        self.recent_corrupt = 0
        self.recent_quarantined = 0
        self.recent_claims = 0
        self.recent_claim_waits = 0
        self.recent_claim_wait_timeouts = 0
        self.recent_evictions = 0
        self.recent_evicted_bytes = 0
        drain_remote = getattr(self.backend, "drain_remote_counters", None)
        if drain_remote is not None:
            drained.update(drain_remote())
        return drained

    @staticmethod
    def _check_artifact_name(artifact: str) -> str:
        """Artifact names are single path components -- never traversal."""
        if Path(artifact).name != artifact or artifact in ("", ".", ".."):
            raise ValueError(f"invalid artifact name {artifact!r}")
        return artifact

    @staticmethod
    def _filename(key: str) -> str:
        return f"{key}.pkl"

    def _path(self, artifact: str, key: str) -> Path | None:
        return self.backend.path(self._check_artifact_name(artifact), self._filename(key))

    def exists(self, artifact: str, key: str) -> bool:
        """Cheap presence probe (no unpickling, no LRU touch)."""
        return (
            self.backend.stat(self._check_artifact_name(artifact), self._filename(key))
            is not None
        )

    def _quarantine(self, artifact: str, key: str) -> None:
        """Record + move one corrupt entry to the ``corrupt/`` sidecar dir."""
        self.recent_corrupt += 1
        if self.backend.quarantine(artifact, self._filename(key)):
            self.recent_quarantined += 1

    def get(self, artifact: str, key: str) -> ArtifactEntry | None:
        """The stored entry, or ``None`` on a miss.

        Corrupt entries (readable bytes that fail to unpickle into a
        current-schema document) are quarantined rather than silently
        treated as misses forever; the caller recomputes.
        """
        blob = self.backend.get(self._check_artifact_name(artifact), self._filename(key))
        if blob is None:  # missing or unreadable: a plain miss, not corruption
            return None
        try:
            document = pickle.loads(blob)
        except (pickle.UnpicklingError, EOFError, AttributeError, ImportError, ValueError):
            self._quarantine(artifact, key)
            return None
        if not isinstance(document, dict) or document.get("schema") != ARTIFACT_SCHEMA_VERSION:
            self._quarantine(artifact, key)
            return None
        try:
            return ArtifactEntry.from_document(document)
        except (KeyError, TypeError, ValueError):
            self._quarantine(artifact, key)
            return None

    def put(self, key: str, entry: ArtifactEntry) -> Path | None:
        """Atomically persist one entry; returns its path (``None`` off-disk).

        Clears any fill claim on the address (entry first, claim second)
        and then enforces the store's byte budget.
        """
        artifact = self._check_artifact_name(entry.artifact)
        filename = self._filename(key)
        fault_point("artifact.write", key=artifact)
        blob = pickle.dumps(entry.to_document())
        self.backend.put(artifact, filename, blob)
        path = self.backend.path(artifact, filename)
        fault_point("artifact.written", key=artifact, path=path)
        self._enforce_budget(artifact, filename)
        return path

    # -- concurrent-fill claims -----------------------------------------------------

    def claim(self, artifact: str, key: str) -> bool:
        """Try to win the fill claim for one address (see ``ResultCache.claim``)."""
        won = self.backend.claim(self._check_artifact_name(artifact), self._filename(key))
        if not won:
            return False
        try:
            fault_point(self.CLAIM_SITE, key=artifact)
        except BaseException:
            self.backend.release(artifact, self._filename(key))
            raise
        self.recent_claims += 1
        return True

    def claim_info(self, artifact: str, key: str) -> ClaimTicket | None:
        return self.backend.claim_info(self._check_artifact_name(artifact), self._filename(key))

    def release_claim(self, artifact: str, key: str) -> bool:
        return self.backend.release(self._check_artifact_name(artifact), self._filename(key))

    def break_claim(self, artifact: str, key: str, ticket: ClaimTicket) -> bool:
        return self.backend.release(
            self._check_artifact_name(artifact), self._filename(key), owner=ticket
        )

    def note_wait(self) -> None:
        self.recent_claim_waits += 1

    def note_wait_timeout(self) -> None:
        self.recent_claim_wait_timeouts += 1

    # -- bounded store ----------------------------------------------------------------

    def _enforce_budget(self, artifact: str, filename: str) -> None:
        """LRU-evict past ``max_bytes``, protecting the entry just written."""
        if not self.max_bytes:
            return

        def on_evict(namespace: str, name: str) -> None:
            fault_point(self.EVICT_SITE, key=f"{namespace}/{name}")

        evicted, freed = evict_lru(
            self.backend,
            self.max_bytes,
            keep={(artifact, filename)},
            on_evict=on_evict,
        )
        self.recent_evictions += evicted
        self.recent_evicted_bytes += freed

    # -- listings ---------------------------------------------------------------------

    def entries(self, artifact: str | None = None) -> Iterator[tuple[str, Path | None]]:
        """(key, path) pairs of stored entries, sorted for stable listings."""
        if artifact is not None:
            self._check_artifact_name(artifact)
        for namespace, filename in self.backend.iter(artifact):
            if not filename.endswith(".pkl"):
                continue
            yield filename[: -len(".pkl")], self.backend.path(namespace, filename)

    def ls(self, artifact: str | None = None) -> list[dict[str, object]]:
        """Metadata summary of stored entries.

        Each entry is unpickled to read its provenance -- acceptable while
        stores hold a handful of artifacts; a metadata sidecar would be the
        upgrade path if listings ever get hot.
        """
        listing = []
        for namespace, filename in self.backend.iter(artifact):
            if not filename.endswith(".pkl"):
                continue
            key = filename[: -len(".pkl")]
            entry = self.get(namespace, key)
            stamp = self.backend.stat(namespace, filename)
            listing.append(
                {
                    "artifact": entry.artifact if entry else namespace,
                    "key": key,
                    "elapsed_seconds": entry.elapsed_seconds if entry else None,
                    "created_unix": entry.provenance.get("created_unix") if entry else None,
                    "size_bytes": stamp.size_bytes if stamp else 0,
                }
            )
        return listing

    def clear(self, artifact: str | None = None) -> int:
        """Delete stored entries (optionally of one artifact); returns count."""
        if artifact is not None:
            self._check_artifact_name(artifact)
        removed = 0
        for namespace, filename in list(self.backend.iter(artifact)):
            if filename.endswith(".pkl") and self.backend.delete(namespace, filename):
                removed += 1
        return removed


# -- active store -------------------------------------------------------------------
#
# Producer-module resolvers find the store through this process-wide slot:
# the scheduler activates it around in-process executions, and workers
# activate it from the store root shipped with their task.  When nothing is
# active (direct driver calls, tests), resolvers compute inline.

#: Sentinel for "nothing activated": fall through to ``$REPRO_ARTIFACTS_DIR``.
#: Distinct from ``None``, which means *explicitly disabled* -- the no-reuse
#: paths (``use_artifacts=False``, workers handed ``artifacts_root=None``)
#: must stay reuse-free even when the environment variable is set.
_INHERIT: object = object()

_ACTIVE_STORE: ArtifactStore | None | object = _INHERIT


def active_store() -> ArtifactStore | None:
    """The store resolvers should use, or ``None`` to compute inline.

    Priority: whatever ``activated`` installed (a store, or ``None`` for an
    explicit no-reuse scope), else a store at ``$REPRO_ARTIFACTS_DIR`` when
    that variable is set, else none.
    """
    if _ACTIVE_STORE is not _INHERIT:
        return _ACTIVE_STORE
    env = os.environ.get("REPRO_ARTIFACTS_DIR")
    if env:
        return ArtifactStore(env)
    return None


@contextlib.contextmanager
def activated(store: ArtifactStore | None):
    """Temporarily make ``store`` the active one (``None`` disables reuse).

    Passing ``None`` is an explicit *no-store* scope: resolvers compute
    inline even if ``$REPRO_ARTIFACTS_DIR`` is set, so no-reuse runs stay
    genuinely reuse-free.
    """
    global _ACTIVE_STORE
    previous = _ACTIVE_STORE
    _ACTIVE_STORE = store
    try:
        yield store
    finally:
        _ACTIVE_STORE = previous


def _artifact_provenance() -> dict[str, object]:
    import platform

    return {"created_unix": round(time.time(), 3), "python": platform.python_version()}


def produce_into(
    store: ArtifactStore,
    artifact: str,
    params: Mapping[str, object],
    producer: Callable[..., object],
    *,
    key: str | None = None,
    fingerprint: str | None = None,
) -> ArtifactEntry:
    """Compute one artifact (store active for nested resolvers) and persist it.

    First-writer-wins: losing the fill claim means a concurrent producer is
    already computing this address, so wait for its entry instead of
    duplicating the work.  A stale claim (dead producer) is taken over; a
    blown wait deadline falls back to computing *uncached* -- wasteful but
    deterministic, never corrupting, and never touching the claim some
    live producer still owns.
    """
    if fingerprint is None:
        fingerprint = code_fingerprint(producer.__module__)
    if key is None:
        key = artifact_key(artifact, params, fingerprint)
    owns_claim = store.claim(artifact, key)
    if not owns_claim:
        store.note_wait()
        entry = wait_for_fill(store, artifact, key)
        if entry is not None:
            return entry
        # Either we took the claim over (dead producer) or the wait deadline
        # expired and someone else still owns it; only an owned claim may be
        # released or cleared by our put.
        owns_claim = claim_is_owned(store, artifact, key)
    try:
        with activated(store):
            start = time.perf_counter()
            payload = producer(**dict(params))
            elapsed = time.perf_counter() - start
    except BaseException:
        if owns_claim:
            store.release_claim(artifact, key)
        raise
    entry = ArtifactEntry(
        artifact=artifact,
        params=dict(params),
        fingerprint=fingerprint,
        payload=payload,
        elapsed_seconds=elapsed,
        provenance=_artifact_provenance(),
    )
    if owns_claim:
        try:
            store.put(key, entry)
        except OSError as error:  # full/read-only disk: degrade to uncached
            store.release_claim(artifact, key)
            logger.warning("artifact store write failed for %s (%s); continuing uncached",
                           artifact, error)
    return entry


def resolve_artifact(
    artifact: str,
    params: Mapping[str, object],
    *,
    producer: Callable[..., object],
) -> object:
    """Load-or-compute one artifact through the active store.

    With no active store the producer runs inline and nothing is persisted
    -- results are bit-identical either way, because producers are
    deterministic functions of their parameters.
    """
    store = active_store()
    if store is None:
        return producer(**dict(params))
    fingerprint = code_fingerprint(producer.__module__)
    key = artifact_key(artifact, params, fingerprint)
    entry = store.get(artifact, key)
    if entry is not None:
        return entry.payload
    return produce_into(
        store, artifact, params, producer, key=key, fingerprint=fingerprint
    ).payload


# -- hit/miss statistics ------------------------------------------------------------


@dataclass
class StoreStats:
    """Counters of the result cache and the artifact store.

    Persisted under the shared cache root and reset by ``python -m repro
    cache clear``.  Deltas are *appended* to ``_stats.jsonl`` (one JSON
    line per drain, ``O_APPEND``), so concurrent recorders -- several
    runners sharing one store -- never lose increments; totals are the sum
    of the legacy ``_stats.json`` snapshot and every logged delta.
    """

    FIELDS = (
        "result_hits",
        "result_misses",
        "artifact_hits",
        "artifact_misses",
        "result_corrupt",
        "artifact_corrupt",
        "quarantined",
        "retried",
        "result_claims",
        "artifact_claims",
        "result_claim_waits",
        "artifact_claim_waits",
        "result_evictions",
        "artifact_evictions",
        "result_evicted_bytes",
        "artifact_evicted_bytes",
        "claim_wait_timeouts",
        "remote_hits",
        "remote_errors",
        "breaker_opens",
    )

    result_hits: int = 0
    result_misses: int = 0
    artifact_hits: int = 0
    artifact_misses: int = 0
    #: Corrupt entries detected (and treated as misses) per store.
    result_corrupt: int = 0
    artifact_corrupt: int = 0
    #: Corrupt entries successfully moved into a ``corrupt/`` sidecar dir.
    quarantined: int = 0
    #: Execution units re-attempted after a crash or timeout.
    retried: int = 0
    #: Fill claims won (exactly-once computes under concurrent writers).
    result_claims: int = 0
    artifact_claims: int = 0
    #: Fills lost to a concurrent winner (waited instead of recomputing).
    result_claim_waits: int = 0
    artifact_claim_waits: int = 0
    #: Entries evicted past the store byte budgets, and the bytes freed.
    result_evictions: int = 0
    artifact_evictions: int = 0
    result_evicted_bytes: int = 0
    artifact_evicted_bytes: int = 0
    #: Fill waits that exhausted the hard deadline and computed uncached
    #: (both stores combined).
    claim_wait_timeouts: int = 0
    #: Networked-store traffic (both stores combined): entries served by
    #: the remote tier, operations that exhausted their retries, and times
    #: the circuit breaker opened (degradation to local-only).
    remote_hits: int = 0
    remote_errors: int = 0
    breaker_opens: int = 0

    def to_document(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.FIELDS}

    def add(self, other: "StoreStats") -> "StoreStats":
        return StoreStats(
            **{name: getattr(self, name) + getattr(other, name) for name in self.FIELDS}
        )

    @classmethod
    def from_document(cls, document: Mapping[str, object]) -> "StoreStats":
        return cls(
            **{
                name: int(document.get(name, 0))
                for name in cls.FIELDS
                if isinstance(document.get(name, 0), int)
            }
        )


def load_stats(root: Path | str) -> StoreStats:
    """The persisted counters at ``root`` (zeros when absent/corrupt).

    Totals = the legacy ``_stats.json`` snapshot (pre-append-log caches)
    plus every delta line in ``_stats.jsonl``; torn/invalid lines are
    skipped rather than poisoning the total.
    """
    root = Path(root)
    total = StoreStats()
    try:
        document = json.loads((root / STATS_FILENAME).read_text())
    except (OSError, ValueError):
        document = None
    if isinstance(document, dict):
        total = StoreStats.from_document(document)
    try:
        log_text = (root / STATS_LOG_FILENAME).read_text()
    except OSError:
        return total
    for line in log_text.splitlines():
        try:
            delta = json.loads(line)
        except ValueError:  # torn final line from a killed writer
            continue
        if isinstance(delta, dict):
            total = total.add(StoreStats.from_document(delta))
    return total


def record_stats(root: Path | str, delta: StoreStats) -> StoreStats:
    """Append ``delta`` to the persisted counters; returns the new total.

    One compact JSON line per call, written with ``O_APPEND`` (well under
    ``PIPE_BUF``, so concurrent appends never interleave): recorders from
    many processes sharing one store root all land, where the previous
    read-modify-write snapshot silently dropped concurrent increments.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    line = json.dumps(delta.to_document(), sort_keys=True, separators=(",", ":")) + "\n"
    descriptor = os.open(
        str(root / STATS_LOG_FILENAME), os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644
    )
    try:
        os.write(descriptor, line.encode())
    finally:
        os.close(descriptor)
    return load_stats(root)


def reset_stats(root: Path | str) -> None:
    """Delete the persisted counters (the next run starts from zero)."""
    for filename in (STATS_FILENAME, STATS_LOG_FILENAME):
        try:
            (Path(root) / filename).unlink()
        except OSError:
            pass
