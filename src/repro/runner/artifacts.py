"""Content-addressed store for cross-experiment *sub-experiment* artifacts.

The result cache (PR 3) deduplicates whole experiment runs, but a cold
``run all`` still recomputes shared intermediates: table1, fig2 and fig3
each need the same multiplier characterisation, and fig6's AlexNet
precision search re-derives one layer profile after another on a single
core.  This module stores those intermediates -- multiplier
characterisations, trained networks, per-layer precision profiles,
sparsity workloads -- under content addresses mirroring the result-cache
keying::

    sha256(schema version + artifact name + canonical params + producer fingerprint)

The *producer fingerprint* is the static import-closure digest
(:func:`repro.runner.fingerprint.code_fingerprint`) of the producer's
module, so an edit to ``core/scaling.py`` invalidates exactly the
characterisation artifact and its consumers' result entries -- never
fig6's trained weights.

Two layers use the store:

* the scheduler (:mod:`repro.runner.service`) resolves each driver's
  declared ``ARTIFACTS`` into a producer/consumer DAG and fills the store
  in topological waves over worker processes before cold experiments run;
* producer modules expose *resolvers* built on :func:`resolve_artifact`:
  with a store active they load-or-compute (and therefore hit after the
  scheduler's wave); without one they compute inline, so direct driver
  calls behave exactly as before the store existed.

Entries are pickles, which is safe here for the same reason the result
cache's JSON is trusted: the store root is a local directory owned by the
user running the experiments.  This module deliberately imports nothing
from the runner package except :mod:`~repro.runner.fingerprint`, so a
driver's lazy ``from ..runner.artifacts import ...`` keeps the result
cache and CLI out of its fingerprint closure.
"""

from __future__ import annotations

import contextlib
import hashlib
import importlib
import json
import logging
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Mapping

from ..faults import fault_point
from .fingerprint import code_fingerprint

logger = logging.getLogger(__name__)

#: Bumped when the on-disk artifact layout changes; part of every key.
ARTIFACT_SCHEMA_VERSION = 1

#: Sidecar directory (under the store root) corrupt entries are moved into.
QUARANTINE_DIRNAME = "corrupt"

#: File name (under the shared cache root) of the hit/miss counters.
STATS_FILENAME = "_stats.json"


def default_artifact_root() -> Path:
    """``<result-cache root>/artifacts`` (honours ``$REPRO_CACHE_DIR``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    base = Path(env) if env else Path.home() / ".cache" / "dvafs-repro"
    return base / "artifacts"


def canonical_params_json(params: Mapping[str, object]) -> str:
    """Deterministic JSON form of artifact parameters (tuples as arrays)."""
    return json.dumps(
        {key: list(value) if isinstance(value, tuple) else value for key, value in params.items()},
        sort_keys=True,
        separators=(",", ":"),
    )


def artifact_key(artifact: str, params: Mapping[str, object], fingerprint: str) -> str:
    """Content address of one artifact: name + canonical params + producer code."""
    blob = json.dumps(
        {
            "schema": ARTIFACT_SCHEMA_VERSION,
            "artifact": artifact,
            "params": canonical_params_json(params),
            "fingerprint": fingerprint,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def load_producer(producer: str) -> Callable[..., object]:
    """Resolve a ``"package.module:function"`` producer path to its callable."""
    module_name, separator, function_name = producer.partition(":")
    if not separator or not module_name or not function_name:
        raise ValueError(f"producer {producer!r} is not of the form 'module:function'")
    module = importlib.import_module(module_name)
    function = getattr(module, function_name, None)
    if not callable(function):
        raise TypeError(f"producer {producer!r} does not name a callable")
    return function


@dataclass
class ArtifactEntry:
    """One stored artifact: payload plus the provenance to trust it."""

    artifact: str
    params: dict[str, object]
    fingerprint: str
    payload: object
    elapsed_seconds: float
    provenance: dict[str, object] = field(default_factory=dict)

    def to_document(self) -> dict[str, object]:
        return {
            "schema": ARTIFACT_SCHEMA_VERSION,
            "artifact": self.artifact,
            "params": self.params,
            "fingerprint": self.fingerprint,
            "elapsed_seconds": self.elapsed_seconds,
            "provenance": self.provenance,
            "payload": self.payload,
        }

    @classmethod
    def from_document(cls, document: Mapping[str, object]) -> "ArtifactEntry":
        return cls(
            artifact=str(document["artifact"]),
            params=dict(document["params"]),
            fingerprint=str(document["fingerprint"]),
            payload=document["payload"],
            elapsed_seconds=float(document["elapsed_seconds"]),
            provenance=dict(document.get("provenance", {})),
        )


class ArtifactStore:
    """Content-addressed store of sub-experiment intermediates."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_artifact_root()
        #: Corruption/quarantine tallies since the last :meth:`drain_stats`.
        self.recent_corrupt = 0
        self.recent_quarantined = 0

    def drain_stats(self) -> tuple[int, int]:
        """``(corrupt, quarantined)`` tallied since the last drain; resets."""
        drained = (self.recent_corrupt, self.recent_quarantined)
        self.recent_corrupt = 0
        self.recent_quarantined = 0
        return drained

    @staticmethod
    def _check_artifact_name(artifact: str) -> str:
        """Artifact names are single path components -- never traversal."""
        if Path(artifact).name != artifact or artifact in ("", ".", ".."):
            raise ValueError(f"invalid artifact name {artifact!r}")
        return artifact

    def _path(self, artifact: str, key: str) -> Path:
        return self.root / self._check_artifact_name(artifact) / f"{key}.pkl"

    def exists(self, artifact: str, key: str) -> bool:
        """Cheap presence probe (no unpickling)."""
        return self._path(artifact, key).is_file()

    def _quarantine(self, path: Path) -> None:
        """Record + move one corrupt entry to the ``corrupt/`` sidecar dir.

        Mirrors :func:`repro.runner.cache.quarantine_entry`; duplicated
        (it is one ``os.replace``) to keep this module's import closure
        down to ``fingerprint``, per the module docstring.
        """
        self.recent_corrupt += 1
        destination = self.root / QUARANTINE_DIRNAME / path.parent.name / path.name
        try:
            destination.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
        except OSError:  # lost the race; the entry is gone either way
            return
        self.recent_quarantined += 1

    def get(self, artifact: str, key: str) -> ArtifactEntry | None:
        """The stored entry, or ``None`` on a miss.

        Corrupt entries (readable bytes that fail to unpickle into a
        current-schema document) are quarantined rather than silently
        treated as misses forever; the caller recomputes.
        """
        path = self._path(artifact, key)
        try:
            blob = path.read_bytes()
        except OSError:  # missing or unreadable: a plain miss, not corruption
            return None
        try:
            document = pickle.loads(blob)
        except (pickle.UnpicklingError, EOFError, AttributeError, ImportError, ValueError):
            self._quarantine(path)
            return None
        if not isinstance(document, dict) or document.get("schema") != ARTIFACT_SCHEMA_VERSION:
            self._quarantine(path)
            return None
        try:
            return ArtifactEntry.from_document(document)
        except (KeyError, TypeError, ValueError):
            self._quarantine(path)
            return None

    def put(self, key: str, entry: ArtifactEntry) -> Path:
        """Atomically persist one entry; returns its path."""
        path = self._path(entry.artifact, key)
        fault_point("artifact.write", key=entry.artifact)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(entry.to_document())
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(blob)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        fault_point("artifact.written", key=entry.artifact, path=path)
        return path

    def entries(self, artifact: str | None = None) -> Iterator[tuple[str, Path]]:
        """(key, path) pairs of stored entries, sorted for stable listings."""
        if artifact is not None:
            self._check_artifact_name(artifact)
        if not self.root.is_dir():
            return
        directories = (
            [self.root / artifact]
            if artifact is not None
            else sorted(child for child in self.root.iterdir() if child.is_dir())
        )
        for directory in directories:
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*.pkl")):
                yield path.stem, path

    def ls(self, artifact: str | None = None) -> list[dict[str, object]]:
        """Metadata summary of stored entries.

        Each entry is unpickled to read its provenance -- acceptable while
        stores hold a handful of artifacts; a metadata sidecar would be the
        upgrade path if listings ever get hot.
        """
        listing = []
        for key, path in self.entries(artifact):
            entry = self.get(path.parent.name, key)
            listing.append(
                {
                    "artifact": entry.artifact if entry else path.parent.name,
                    "key": key,
                    "elapsed_seconds": entry.elapsed_seconds if entry else None,
                    "created_unix": entry.provenance.get("created_unix") if entry else None,
                    "size_bytes": path.stat().st_size if path.is_file() else 0,
                }
            )
        return listing

    def clear(self, artifact: str | None = None) -> int:
        """Delete stored entries (optionally of one artifact); returns count."""
        removed = 0
        for _key, path in list(self.entries(artifact)):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - raced deletion
                pass
        return removed


# -- active store -------------------------------------------------------------------
#
# Producer-module resolvers find the store through this process-wide slot:
# the scheduler activates it around in-process executions, and workers
# activate it from the store root shipped with their task.  When nothing is
# active (direct driver calls, tests), resolvers compute inline.

#: Sentinel for "nothing activated": fall through to ``$REPRO_ARTIFACTS_DIR``.
#: Distinct from ``None``, which means *explicitly disabled* -- the no-reuse
#: paths (``use_artifacts=False``, workers handed ``artifacts_root=None``)
#: must stay reuse-free even when the environment variable is set.
_INHERIT: object = object()

_ACTIVE_STORE: ArtifactStore | None | object = _INHERIT


def active_store() -> ArtifactStore | None:
    """The store resolvers should use, or ``None`` to compute inline.

    Priority: whatever ``activated`` installed (a store, or ``None`` for an
    explicit no-reuse scope), else a store at ``$REPRO_ARTIFACTS_DIR`` when
    that variable is set, else none.
    """
    if _ACTIVE_STORE is not _INHERIT:
        return _ACTIVE_STORE
    env = os.environ.get("REPRO_ARTIFACTS_DIR")
    if env:
        return ArtifactStore(env)
    return None


@contextlib.contextmanager
def activated(store: ArtifactStore | None):
    """Temporarily make ``store`` the active one (``None`` disables reuse).

    Passing ``None`` is an explicit *no-store* scope: resolvers compute
    inline even if ``$REPRO_ARTIFACTS_DIR`` is set, so no-reuse runs stay
    genuinely reuse-free.
    """
    global _ACTIVE_STORE
    previous = _ACTIVE_STORE
    _ACTIVE_STORE = store
    try:
        yield store
    finally:
        _ACTIVE_STORE = previous


def _artifact_provenance() -> dict[str, object]:
    import platform

    return {"created_unix": round(time.time(), 3), "python": platform.python_version()}


def produce_into(
    store: ArtifactStore,
    artifact: str,
    params: Mapping[str, object],
    producer: Callable[..., object],
    *,
    key: str | None = None,
    fingerprint: str | None = None,
) -> ArtifactEntry:
    """Compute one artifact (store active for nested resolvers) and persist it."""
    if fingerprint is None:
        fingerprint = code_fingerprint(producer.__module__)
    if key is None:
        key = artifact_key(artifact, params, fingerprint)
    with activated(store):
        start = time.perf_counter()
        payload = producer(**dict(params))
        elapsed = time.perf_counter() - start
    entry = ArtifactEntry(
        artifact=artifact,
        params=dict(params),
        fingerprint=fingerprint,
        payload=payload,
        elapsed_seconds=elapsed,
        provenance=_artifact_provenance(),
    )
    try:
        store.put(key, entry)
    except OSError as error:  # full/read-only disk: degrade to uncached
        logger.warning("artifact store write failed for %s (%s); continuing uncached",
                       artifact, error)
    return entry


def resolve_artifact(
    artifact: str,
    params: Mapping[str, object],
    *,
    producer: Callable[..., object],
) -> object:
    """Load-or-compute one artifact through the active store.

    With no active store the producer runs inline and nothing is persisted
    -- results are bit-identical either way, because producers are
    deterministic functions of their parameters.
    """
    store = active_store()
    if store is None:
        return producer(**dict(params))
    fingerprint = code_fingerprint(producer.__module__)
    key = artifact_key(artifact, params, fingerprint)
    entry = store.get(artifact, key)
    if entry is not None:
        return entry.payload
    return produce_into(
        store, artifact, params, producer, key=key, fingerprint=fingerprint
    ).payload


# -- hit/miss statistics ------------------------------------------------------------


@dataclass
class StoreStats:
    """Hit/miss counters of the result cache and the artifact store.

    Persisted as ``_stats.json`` under the shared cache root and reset by
    ``python -m repro cache clear``.  Counters are recorded by the parent
    process only (the scheduler's lookups), so concurrent workers never
    race on the file.
    """

    FIELDS = (
        "result_hits",
        "result_misses",
        "artifact_hits",
        "artifact_misses",
        "result_corrupt",
        "artifact_corrupt",
        "quarantined",
        "retried",
    )

    result_hits: int = 0
    result_misses: int = 0
    artifact_hits: int = 0
    artifact_misses: int = 0
    #: Corrupt entries detected (and treated as misses) per store.
    result_corrupt: int = 0
    artifact_corrupt: int = 0
    #: Corrupt entries successfully moved into a ``corrupt/`` sidecar dir.
    quarantined: int = 0
    #: Execution units re-attempted after a crash or timeout.
    retried: int = 0

    def to_document(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.FIELDS}

    def add(self, other: "StoreStats") -> "StoreStats":
        return StoreStats(
            **{name: getattr(self, name) + getattr(other, name) for name in self.FIELDS}
        )


def load_stats(root: Path | str) -> StoreStats:
    """The persisted counters at ``root`` (zeros when absent/corrupt)."""
    path = Path(root) / STATS_FILENAME
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError):
        return StoreStats()
    if not isinstance(document, dict):
        return StoreStats()
    return StoreStats(
        **{
            name: int(document.get(name, 0))
            for name in StoreStats.FIELDS
            if isinstance(document.get(name, 0), int)
        }
    )


def record_stats(root: Path | str, delta: StoreStats) -> StoreStats:
    """Accumulate ``delta`` into the persisted counters; returns the new total."""
    root = Path(root)
    total = load_stats(root).add(delta)
    root.mkdir(parents=True, exist_ok=True)
    path = root / STATS_FILENAME
    descriptor, temp_name = tempfile.mkstemp(dir=root, prefix=".stats-", suffix=".tmp")
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(json.dumps(total.to_document(), indent=1))
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return total


def reset_stats(root: Path | str) -> None:
    """Delete the persisted counters (the next run starts from zero)."""
    try:
        (Path(root) / STATS_FILENAME).unlink()
    except OSError:
        pass
