"""Process-parallel execution: sweep grids, artifact waves and experiment fan-out.

Three fan-out shapes live here:

* :func:`parallel_sweep` -- the engine behind
  ``repro.analysis.parameter_sweep(jobs=N)``: the Cartesian grid is mapped
  over a worker pool and the records are assembled **in grid order**, so
  the output is byte-identical to a serial sweep regardless of worker
  completion order.  Determinism inside each evaluation is the caller's
  contract (seeds travel in the parameters).

* :func:`produce_artifacts` -- computes missing sub-experiment artifacts
  (one worker per unit) and persists them into the content-addressed
  :class:`~repro.runner.artifacts.ArtifactStore`; the service calls it once
  per topological wave of the producer/consumer DAG.

* :func:`execute_requests` -- runs ``(experiment, canonical config)``
  requests, one worker process each, used by the runner service and the CLI
  for ``--jobs N``.

All three run through one fault-tolerant engine governed by an
:class:`ExecutionPolicy`:

* **timeouts** -- each unit gets a wall-clock budget; a hung worker is
  killed with its pool and the unit is retried on a fresh pool;
* **bounded retries** -- *retryable* failures (worker crash /
  ``BrokenProcessPool`` / unit timeout) are retried with exponential
  backoff plus deterministic jitter; driver exceptions are not retryable
  and propagate immediately;
* **pool respawn** -- a broken pool is torn down and respawned (bounded
  by ``pool_respawns``); completed units are never recomputed, so a
  recovered batch stays bit-identical to a clean one;
* **graceful degradation** -- when the pool is irrecoverable (respawn
  budget spent, or the pool cannot even be created) the remaining units
  run serially in-process rather than abandoning the batch.

Exhausted budgets surface as :class:`~repro.runner.errors.WorkerCrashError`
(code ``worker_crashed``) or :class:`~repro.runner.errors.UnitTimeoutError`
(code ``unit_timeout``) -- never as a raw ``BrokenProcessPool``.

Callables shipped to workers must be picklable, i.e. module-level.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Mapping

from ..analysis.sweep import SweepResult, sweep_grid
from ..faults import fault_point
from .errors import UnitTimeoutError, WorkerCrashError


@dataclass(frozen=True)
class ExecutionPolicy:
    """Fault-tolerance knobs of the execution engine.

    ``timeout`` is per-unit wall-clock seconds (``None`` = unbounded);
    ``retries`` bounds how often one unit may be re-attempted after a
    *retryable* failure (crash/timeout); ``pool_respawns`` bounds how many
    broken/hung pools are replaced before the engine degrades to serial
    in-process execution.  ``oversubscribe`` skips the CPU-count clamp on
    worker fan-out -- chaos tests need real worker processes even on a
    1-core box, where the clamp would silently fall back to the serial
    path (which cannot crash or hang a worker).
    """

    timeout: float | None = None
    retries: int = 2
    backoff_seconds: float = 0.05
    backoff_cap_seconds: float = 2.0
    pool_respawns: int = 3
    oversubscribe: bool = False

    def with_overrides(
        self, *, timeout: float | None = None, retries: int | None = None
    ) -> "ExecutionPolicy":
        """This policy with CLI/API-level overrides applied (None = keep)."""
        updated = self
        if timeout is not None:
            updated = replace(updated, timeout=timeout)
        if retries is not None:
            updated = replace(updated, retries=retries)
        return updated


#: The policy every entry point uses unless the caller overrides it.
DEFAULT_POLICY = ExecutionPolicy()


@dataclass
class ExecutionOutcome:
    """Recovery telemetry of one engine invocation (accumulates across calls).

    ``retries`` counts re-attempted units, ``crashes``/``timeouts`` the
    triggering failures, ``respawns`` replaced pools, and ``degraded`` is
    set when the engine fell back to serial in-process execution.
    """

    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    respawns: int = 0
    degraded: bool = False


def _worker_count(jobs: int, tasks: int, *, oversubscribe: bool = False) -> int:
    """Workers actually spawned: never more than tasks or available CPUs.

    Oversubscribing a small machine makes things *slower* -- concurrent
    producers thrash the caches (the precision-search workloads stream
    hundred-megabyte weight matrices) -- so ``--jobs 4`` on a 1-core box
    degrades to the serial in-process path while multi-core machines get
    the full fan-out.  ``oversubscribe`` (or ``$REPRO_EXECUTOR_OVERSUBSCRIBE``)
    lifts the CPU clamp for fault-injection runs that need real workers.
    """
    if oversubscribe or os.environ.get("REPRO_EXECUTOR_OVERSUBSCRIBE"):
        return min(jobs, tasks)
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or jobs
    return min(jobs, tasks, max(1, cpus))


def _backoff_delay(policy: ExecutionPolicy, attempt: int, seed: str) -> float:
    """Exponential backoff with deterministic jitter (seeded, not random).

    Jitter spreads simultaneous retries without sacrificing reproducible
    runs: the same (seed, attempt) always waits the same time.
    """
    base = min(policy.backoff_cap_seconds, policy.backoff_seconds * (2 ** max(0, attempt - 1)))
    digest = hashlib.sha256(f"{seed}:{attempt}".encode()).digest()
    jitter = digest[0] / 255.0  # [0, 1], deterministic in the seed
    return base * (0.5 + 0.5 * jitter)


def _teardown_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even when its workers are hung or already dead.

    ``shutdown`` alone would block forever behind a hung worker, so the
    worker processes are terminated explicitly (the private ``_processes``
    map is stable across CPython 3.8-3.13 and guarded here regardless).
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already reaped
            pass


class _ResilientRun:
    """State machine for one fault-tolerant batch over a worker pool."""

    def __init__(
        self,
        tasks: list,
        worker: Callable,
        *,
        workers: int,
        policy: ExecutionPolicy,
        outcome: ExecutionOutcome,
        label: str,
        serial_worker: Callable | None = None,
    ):
        self.tasks = tasks
        self.worker = worker
        self.serial_worker = serial_worker if serial_worker is not None else worker
        self.workers = workers
        self.policy = policy
        self.outcome = outcome
        self.label = label
        self.results: list = [None] * len(tasks)
        self.done = [False] * len(tasks)
        self.attempts = [0] * len(tasks)
        self.queue: deque[int] = deque(range(len(tasks)))
        self.in_flight: dict[Future, tuple[int, float]] = {}
        self.pool: ProcessPoolExecutor | None = None
        self.respawns_left = policy.pool_respawns

    # -- failure handling ---------------------------------------------------------

    def _requeue(self, index: int, *, reason: str, penalize: bool) -> None:
        """Put a unit back on the queue; raise the typed error when exhausted."""
        if penalize:
            self.attempts[index] += 1
            if self.attempts[index] > self.policy.retries:
                detail = f"{self.label}[{index}] failed {self.attempts[index]} attempt(s)"
                if reason == "unit_timeout":
                    raise UnitTimeoutError(
                        f"{detail}: exceeded the {self.policy.timeout:g}s unit timeout each time"
                    )
                raise WorkerCrashError(
                    f"{detail}: the worker process died each time (retries exhausted)"
                )
            self.outcome.retries += 1
        self.queue.append(index)

    def _replace_pool(self, *, seed: str, attempt: int) -> bool:
        """Tear down + account for a dead pool; ``False`` = budget spent."""
        if self.pool is not None:
            _teardown_pool(self.pool)
            self.pool = None
        self.respawns_left -= 1
        if self.respawns_left < 0:
            return False
        self.outcome.respawns += 1
        time.sleep(_backoff_delay(self.policy, attempt, seed))
        return True

    def _on_crash(self, victims: list[int]) -> None:
        """A worker died: the whole pool is broken, every in-flight unit with it."""
        self.outcome.crashes += 1
        for index in victims:
            self._requeue(index, reason="worker_crashed", penalize=True)
        for _future, (index, _start) in list(self.in_flight.items()):
            # Innocent bystanders of the broken pool: retried without
            # spending their own retry budget.
            self.queue.appendleft(index)
        self.in_flight.clear()
        if not self._replace_pool(seed=f"{self.label}:crash", attempt=max(self.attempts) or 1):
            self._degrade()

    def _on_timeouts(self, expired: list[int]) -> None:
        """Units blew their wall-clock budget: kill the pool, retry them."""
        self.outcome.timeouts += len(expired)
        for index in expired:
            self._requeue(index, reason="unit_timeout", penalize=True)
        for _future, (index, _start) in list(self.in_flight.items()):
            self.queue.appendleft(index)
        self.in_flight.clear()
        if not self._replace_pool(seed=f"{self.label}:timeout", attempt=max(self.attempts) or 1):
            self._degrade()

    def _degrade(self) -> None:
        """The pool is irrecoverable: finish the batch serially in-process."""
        self.outcome.degraded = True
        self.queue.clear()
        for index in range(len(self.tasks)):
            if not self.done[index]:
                self.results[index] = self.serial_worker(self.tasks[index])
                self.done[index] = True

    # -- main loop ----------------------------------------------------------------

    def _submit_window(self) -> bool:
        """Keep at most ``workers`` units in flight; ``False`` on a broken pool.

        Bounding in-flight work to the worker count means a submitted
        future starts (almost) immediately, so its submit stamp is an
        honest start-of-execution stamp for the timeout check.
        """
        while self.queue and len(self.in_flight) < self.workers:
            index = self.queue.popleft()
            try:
                future = self.pool.submit(self.worker, self.tasks[index])
            except (BrokenProcessPool, RuntimeError):
                self.queue.appendleft(index)
                return False
            self.in_flight[future] = (index, time.monotonic())
        return True

    def _wait_timeout(self) -> float | None:
        if self.policy.timeout is None or not self.in_flight:
            return None
        now = time.monotonic()
        deadlines = [start + self.policy.timeout for _index, start in self.in_flight.values()]
        return max(0.0, min(deadlines) - now)

    def run(self) -> list:
        try:
            while self.queue or self.in_flight:
                if self.pool is None:
                    try:
                        fault_point("executor.pool", key=self.label)
                        self.pool = ProcessPoolExecutor(max_workers=self.workers)
                    except Exception:
                        # The environment cannot even spawn workers (fd/PID
                        # exhaustion, injected spawn fault): degrade rather
                        # than abandon the batch.
                        self._degrade()
                        break
                if not self._submit_window():
                    self._on_crash(victims=[])
                    continue
                finished, _pending = wait(
                    set(self.in_flight), timeout=self._wait_timeout(), return_when=FIRST_COMPLETED
                )
                crash_victims: list[int] = []
                for future in finished:
                    index, _start = self.in_flight.pop(future)
                    try:
                        self.results[index] = future.result()
                        self.done[index] = True
                    except BrokenProcessPool:
                        crash_victims.append(index)
                if crash_victims:
                    self._on_crash(crash_victims)
                    continue
                if self.policy.timeout is not None and self.in_flight:
                    now = time.monotonic()
                    expired = []
                    for future, (index, start) in list(self.in_flight.items()):
                        if now - start >= self.policy.timeout:
                            del self.in_flight[future]
                            expired.append(index)
                    if expired:
                        self._on_timeouts(expired)
            return self.results
        finally:
            if self.pool is not None:
                _teardown_pool(self.pool)


def _run_resilient(
    tasks: list,
    worker: Callable,
    *,
    jobs: int | None,
    policy: ExecutionPolicy | None,
    outcome: ExecutionOutcome | None,
    label: str,
    serial_worker: Callable | None = None,
) -> list:
    """Run ``worker`` over ``tasks`` under the fault-tolerance policy.

    Results come back in task order.  ``serial_worker`` (when given) is
    used on the in-process paths -- the ``jobs<=1`` fast path and the
    degraded tail -- and may close over unpicklable state (the injected
    registry); the pooled path always ships the module-level ``worker``.
    """
    policy = policy if policy is not None else DEFAULT_POLICY
    outcome = outcome if outcome is not None else ExecutionOutcome()
    inline = serial_worker if serial_worker is not None else worker
    workers = _worker_count(jobs or 1, len(tasks), oversubscribe=policy.oversubscribe)
    if workers <= 1:
        # Serial in-process execution: no worker to crash and no safe way
        # to preempt ourselves, so timeouts/retries do not apply here.
        return [inline(task) for task in tasks]
    run = _ResilientRun(
        tasks,
        worker,
        workers=workers,
        policy=policy,
        outcome=outcome,
        label=label,
        serial_worker=serial_worker,
    )
    return run.run()


def _evaluate_combination(
    task: tuple[Callable[..., Mapping[str, object]], dict[str, object]],
) -> dict[str, object]:
    evaluate, assignment = task
    fault_point(
        "executor.sweep", key=",".join(f"{key}={value}" for key, value in assignment.items())
    )
    return dict(evaluate(**assignment))


def parallel_sweep(
    parameters: Mapping[str, Iterable[object]],
    evaluate: Callable[..., Mapping[str, object]],
    *,
    jobs: int | None = None,
    policy: ExecutionPolicy | None = None,
    outcome: ExecutionOutcome | None = None,
) -> SweepResult:
    """Cartesian sweep with the grid fanned out over worker processes.

    ``jobs`` of ``None``/``0``/``1`` runs serially in-process (identical to
    the classic ``parameter_sweep`` loop); records always come back in
    deterministic grid order.
    """
    assignments = sweep_grid(parameters)
    tasks = [(evaluate, assignment) for assignment in assignments]
    outcomes = _run_resilient(
        tasks, _evaluate_combination, jobs=jobs, policy=policy, outcome=outcome, label="sweep"
    )
    records = [
        {**assignment, **outcome} for assignment, outcome in zip(assignments, outcomes)
    ]
    return SweepResult(records=records)


def _build_artifact_store(store_root: str, store_url: str | None):
    """Rebuild a worker's artifact store: tiered onto ``store_url`` when set.

    The netstore import stays inside this function (and this module) so
    the networked backend never enters the drivers' static import closure
    -- driver fingerprints are identical with and without a shared store.
    """
    from .artifacts import ArtifactStore

    if store_url is None:
        return ArtifactStore(store_root)
    from .netstore import ARTIFACT_SUBROOT, make_store_backend

    return ArtifactStore(
        backend=make_store_backend(store_root, store_url, subroot=ARTIFACT_SUBROOT)
    )


def _produce_artifact(
    task: tuple[str, str, dict[str, object], str, str, str, str | None],
) -> tuple[str, float, dict[str, int]]:
    """Worker body: compute one artifact unit and persist it into the store.

    The store is activated around the producer call so producers that
    themselves resolve earlier-wave artifacts (``after`` dependencies) hit
    the entries those waves already wrote.  The worker store's drained
    counters (claims, claim waits, corruption, evictions, remote traffic)
    travel back with the result so the parent can fold them into the
    persisted stats.
    """
    from .artifacts import load_producer, produce_into

    artifact, producer_path, params, key, fingerprint, store_root, store_url = task
    fault_point("executor.artifact", key=artifact)
    store = _build_artifact_store(store_root, store_url)
    entry = produce_into(
        store,
        artifact,
        params,
        load_producer(producer_path),
        key=key,
        fingerprint=fingerprint,
    )
    return key, entry.elapsed_seconds, store.drain_stats()


def produce_artifacts(
    tasks: list[tuple[str, str, dict[str, object], str, str, str, str | None]],
    *,
    jobs: int | None = None,
    policy: ExecutionPolicy | None = None,
    outcome: ExecutionOutcome | None = None,
) -> list[tuple[str, float, dict[str, int]]]:
    """Produce artifact units (optionally in parallel); results in input order.

    Each task is ``(artifact, producer path, params, key, fingerprint,
    store root, store url)``.  Units inside one call must be independent --
    the service slices the DAG into topological waves and makes one call
    per wave.  Units that already persisted their entry before a crash are
    naturally skipped on retry (the store is content-addressed), so a
    recovered wave never recomputes finished work.
    """
    return _run_resilient(
        tasks, _produce_artifact, jobs=jobs, policy=policy, outcome=outcome, label="artifact"
    )


def _execute_request(
    task: tuple[str, dict[str, object], str | None, str | None],
    registry: Mapping[str, object] | None = None,
) -> tuple[list[dict[str, object]], float]:
    """Worker body: run one experiment with a canonical config.

    Imports happen here (inside the worker) so spawned processes build their
    own module state; rows are sanitised before crossing the process
    boundary so the parent sees exactly what the cache would store.  The
    artifact store root (``None`` = reuse disabled) is activated around the
    run so driver resolvers load the pre-produced intermediates; with a
    store URL the store tiers onto the shared networked one.
    """
    from .artifacts import activated
    from .registry import build_registry

    name, config, artifacts_root, store_url = task
    fault_point("executor.unit", key=name)
    spec = (registry if registry is not None else build_registry())[name]
    store = (
        _build_artifact_store(artifacts_root, store_url) if artifacts_root is not None else None
    )
    with activated(store):
        start = time.perf_counter()
        rows = spec.execute(config)
        elapsed = time.perf_counter() - start
    return SweepResult(records=rows).to_jsonable(), elapsed


def execute_requests(
    requests: list[tuple[str, dict[str, object]]],
    *,
    jobs: int | None = None,
    artifacts_root: str | None = None,
    registry: Mapping[str, object] | None = None,
    policy: ExecutionPolicy | None = None,
    outcome: ExecutionOutcome | None = None,
    store_url: str | None = None,
) -> list[tuple[list[dict[str, object]], float]]:
    """Run experiment requests, optionally in parallel; results in input order.

    ``registry`` (when given) resolves specs on the inline path, so runners
    with injected registries (tests, embedders) can execute experiments that
    ``build_registry`` does not know about.  Worker processes always rebuild
    the canonical registry -- custom specs are not shipped across the
    process boundary.
    """
    tasks = [(name, config, artifacts_root, store_url) for name, config in requests]
    return _run_resilient(
        tasks,
        _execute_request,
        jobs=jobs,
        policy=policy,
        outcome=outcome,
        label="experiment",
        serial_worker=lambda task: _execute_request(task, registry),
    )
