"""Process-parallel execution: sweep grids and experiment fan-out.

Two fan-out shapes live here:

* :func:`parallel_sweep` -- the engine behind
  ``repro.analysis.parameter_sweep(jobs=N)``: the Cartesian grid is mapped
  over a ``ProcessPoolExecutor`` and the records are assembled **in grid
  order**, so the output is byte-identical to a serial sweep regardless of
  worker completion order.  Determinism inside each evaluation is the
  caller's contract (seeds travel in the parameters).

* :func:`execute_requests` -- runs ``(experiment, canonical config)``
  requests, one worker process each, used by the runner service and the CLI
  for ``--jobs N``.  Workers re-import the driver modules (fork or spawn both
  work) and return sanitised rows plus the measured wall time.

Callables shipped to workers must be picklable, i.e. module-level.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Mapping

from ..analysis.sweep import SweepResult, sweep_grid


def _evaluate_combination(
    task: tuple[Callable[..., Mapping[str, object]], dict[str, object]],
) -> dict[str, object]:
    evaluate, assignment = task
    return dict(evaluate(**assignment))


def parallel_sweep(
    parameters: Mapping[str, Iterable[object]],
    evaluate: Callable[..., Mapping[str, object]],
    *,
    jobs: int | None = None,
) -> SweepResult:
    """Cartesian sweep with the grid fanned out over worker processes.

    ``jobs`` of ``None``/``0``/``1`` runs serially in-process (identical to
    the classic ``parameter_sweep`` loop); records always come back in
    deterministic grid order.
    """
    assignments = sweep_grid(parameters)
    tasks = [(evaluate, assignment) for assignment in assignments]
    if jobs is None or jobs <= 1 or len(tasks) <= 1:
        outcomes = [_evaluate_combination(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            outcomes = list(pool.map(_evaluate_combination, tasks))
    records = [
        {**assignment, **outcome} for assignment, outcome in zip(assignments, outcomes)
    ]
    return SweepResult(records=records)


def _execute_request(
    task: tuple[str, dict[str, object]],
) -> tuple[list[dict[str, object]], float]:
    """Worker body: run one experiment with a canonical config.

    Imports happen here (inside the worker) so spawned processes build their
    own module state; rows are sanitised before crossing the process
    boundary so the parent sees exactly what the cache would store.
    """
    from .registry import build_registry

    name, config = task
    spec = build_registry()[name]
    start = time.perf_counter()
    rows = spec.execute(config)
    elapsed = time.perf_counter() - start
    return SweepResult(records=rows).to_jsonable(), elapsed


def execute_requests(
    requests: list[tuple[str, dict[str, object]]],
    *,
    jobs: int | None = None,
) -> list[tuple[list[dict[str, object]], float]]:
    """Run experiment requests, optionally in parallel; results in input order."""
    if jobs is None or jobs <= 1 or len(requests) <= 1:
        return [_execute_request(request) for request in requests]
    with ProcessPoolExecutor(max_workers=min(jobs, len(requests))) as pool:
        return list(pool.map(_execute_request, requests))
