"""Process-parallel execution: sweep grids, artifact waves and experiment fan-out.

Three fan-out shapes live here:

* :func:`parallel_sweep` -- the engine behind
  ``repro.analysis.parameter_sweep(jobs=N)``: the Cartesian grid is mapped
  over a ``ProcessPoolExecutor`` and the records are assembled **in grid
  order**, so the output is byte-identical to a serial sweep regardless of
  worker completion order.  Determinism inside each evaluation is the
  caller's contract (seeds travel in the parameters).

* :func:`produce_artifacts` -- computes missing sub-experiment artifacts
  (one worker per unit) and persists them into the content-addressed
  :class:`~repro.runner.artifacts.ArtifactStore`; the service calls it once
  per topological wave of the producer/consumer DAG.

* :func:`execute_requests` -- runs ``(experiment, canonical config)``
  requests, one worker process each, used by the runner service and the CLI
  for ``--jobs N``.  Workers re-import the driver modules (fork or spawn both
  work), activate the artifact store they were handed (so driver resolvers
  hit the entries the artifact waves produced) and return sanitised rows
  plus the measured wall time.

Callables shipped to workers must be picklable, i.e. module-level.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Mapping

from ..analysis.sweep import SweepResult, sweep_grid


def _worker_count(jobs: int, tasks: int) -> int:
    """Workers actually spawned: never more than tasks or available CPUs.

    Oversubscribing a small machine makes things *slower* -- concurrent
    producers thrash the caches (the precision-search workloads stream
    hundred-megabyte weight matrices) -- so ``--jobs 4`` on a 1-core box
    degrades to the serial in-process path while multi-core machines get
    the full fan-out.
    """
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or jobs
    return min(jobs, tasks, max(1, cpus))


def _evaluate_combination(
    task: tuple[Callable[..., Mapping[str, object]], dict[str, object]],
) -> dict[str, object]:
    evaluate, assignment = task
    return dict(evaluate(**assignment))


def parallel_sweep(
    parameters: Mapping[str, Iterable[object]],
    evaluate: Callable[..., Mapping[str, object]],
    *,
    jobs: int | None = None,
) -> SweepResult:
    """Cartesian sweep with the grid fanned out over worker processes.

    ``jobs`` of ``None``/``0``/``1`` runs serially in-process (identical to
    the classic ``parameter_sweep`` loop); records always come back in
    deterministic grid order.
    """
    assignments = sweep_grid(parameters)
    tasks = [(evaluate, assignment) for assignment in assignments]
    workers = _worker_count(jobs or 1, len(tasks))
    if workers <= 1:
        outcomes = [_evaluate_combination(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_evaluate_combination, tasks))
    records = [
        {**assignment, **outcome} for assignment, outcome in zip(assignments, outcomes)
    ]
    return SweepResult(records=records)


def _produce_artifact(
    task: tuple[str, str, dict[str, object], str, str, str],
) -> tuple[str, float]:
    """Worker body: compute one artifact unit and persist it into the store.

    The store is activated around the producer call so producers that
    themselves resolve earlier-wave artifacts (``after`` dependencies) hit
    the entries those waves already wrote.
    """
    from .artifacts import ArtifactStore, load_producer, produce_into

    artifact, producer_path, params, key, fingerprint, store_root = task
    store = ArtifactStore(store_root)
    entry = produce_into(
        store,
        artifact,
        params,
        load_producer(producer_path),
        key=key,
        fingerprint=fingerprint,
    )
    return key, entry.elapsed_seconds


def produce_artifacts(
    tasks: list[tuple[str, str, dict[str, object], str, str, str]],
    *,
    jobs: int | None = None,
) -> list[tuple[str, float]]:
    """Produce artifact units (optionally in parallel); results in input order.

    Each task is ``(artifact, producer path, params, key, fingerprint,
    store root)``.  Units inside one call must be independent -- the service
    slices the DAG into topological waves and makes one call per wave.
    """
    workers = _worker_count(jobs or 1, len(tasks))
    if workers <= 1:
        return [_produce_artifact(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_produce_artifact, tasks))


def _execute_request(
    task: tuple[str, dict[str, object], str | None],
    registry: Mapping[str, object] | None = None,
) -> tuple[list[dict[str, object]], float]:
    """Worker body: run one experiment with a canonical config.

    Imports happen here (inside the worker) so spawned processes build their
    own module state; rows are sanitised before crossing the process
    boundary so the parent sees exactly what the cache would store.  The
    artifact store root (``None`` = reuse disabled) is activated around the
    run so driver resolvers load the pre-produced intermediates.
    """
    from .artifacts import ArtifactStore, activated
    from .registry import build_registry

    name, config, artifacts_root = task
    spec = (registry if registry is not None else build_registry())[name]
    store = ArtifactStore(artifacts_root) if artifacts_root is not None else None
    with activated(store):
        start = time.perf_counter()
        rows = spec.execute(config)
        elapsed = time.perf_counter() - start
    return SweepResult(records=rows).to_jsonable(), elapsed


def execute_requests(
    requests: list[tuple[str, dict[str, object]]],
    *,
    jobs: int | None = None,
    artifacts_root: str | None = None,
    registry: Mapping[str, object] | None = None,
) -> list[tuple[list[dict[str, object]], float]]:
    """Run experiment requests, optionally in parallel; results in input order.

    ``registry`` (when given) resolves specs on the inline path, so runners
    with injected registries (tests, embedders) can execute experiments that
    ``build_registry`` does not know about.  Worker processes always rebuild
    the canonical registry -- custom specs are not shipped across the
    process boundary.
    """
    tasks = [(name, config, artifacts_root) for name, config in requests]
    workers = _worker_count(jobs or 1, len(tasks))
    if workers <= 1:
        return [_execute_request(task, registry) for task in tasks]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_execute_request, tasks))
