"""Networked store backend: a shared :class:`DiskBackend` served over TCP.

The :class:`~repro.runner.backends.StoreBackend` seam was built so a
fleet of runners could share one content-addressed store; this module is
the missing transport, wrapped in the robustness envelope a new single
point of failure demands:

* **protocol** -- length-prefixed binary frames (two big-endian ``u32``
  lengths, a JSON header, an opaque blob) carrying every backend
  operation: ``get``/``put``/``stat``/``claim``/``claim_info``/
  ``release``/``delete``/``iter``/``touch``/``quarantine`` (plus
  ``ping`` for health probes);
* **server** -- :class:`StoreServer` (``python -m repro store serve``),
  a threaded TCP server over a :class:`DiskBackend` root.  Claim
  semantics are enforced server-side: the ``O_CREAT | O_EXCL`` ticket is
  created on the server with the *client's* ``{pid, host}`` identity, so
  same-host staleness probing still works and cross-host staleness
  degrades to the ``REPRO_CLAIM_TTL_SECONDS`` TTL exactly as documented;
* **client** -- :class:`RemoteBackend`, the same protocol with
  per-operation deadlines (``$REPRO_STORE_TIMEOUT_SECONDS``), bounded
  retries with deterministic sha256-jittered exponential backoff (the
  executor's idiom) and a closed -> open -> half-open circuit breaker;
* **tiering** -- :class:`TieredBackend` composes the remote over a local
  :class:`DiskBackend`: writes go through local-first, reads check local
  then remote (remote hits are promoted into the local tier), and while
  the circuit is open every operation degrades to local-only.  Server
  death, hangs, torn frames and partitions therefore cost latency, never
  correctness: runs complete bit-identical to a local-only run.

Fault sites (see :mod:`repro.faults`): ``net.connect`` / ``net.send`` /
``net.recv`` fire client-side around the socket operations of each
request (key = operation name); ``net.server`` fires server-side per
request -- an ``exc`` there tears the connection like a crashed server.

This module is deliberately stdlib-only and is imported *lazily* by its
consumers (CLI, facade, executor workers), never by :mod:`backends`,
:mod:`cache` or :mod:`artifacts` -- so it stays outside the drivers'
static import closure and cache/artifact fingerprints do not churn.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import socket
import socketserver
import struct
import threading
import time
from pathlib import Path

from ..faults import FaultInjected, fault_point
from .backends import ClaimTicket, DiskBackend, EntryStat, evict_lru

logger = logging.getLogger(__name__)

#: Wire-format version; servers reject frames from a different major.
PROTOCOL_VERSION = 1

#: Frame = two big-endian u32 lengths, then header bytes, then blob bytes.
_FRAME_HEADER = struct.Struct("!II")

#: Upper bounds that keep a torn/garbage length prefix from allocating
#: gigabytes: headers are small JSON, blobs are store entries.
MAX_HEADER_BYTES = 1 << 20
MAX_BLOB_BYTES = 1 << 28

#: The server's sub-store names: ``""`` mirrors the result-cache root,
#: ``"artifacts"`` the nested artifact store -- one server serves both.
ARTIFACT_SUBROOT = "artifacts"
_SUBROOTS = ("", ARTIFACT_SUBROOT)

#: Client knobs (read at :class:`RemoteBackend` construction).
ENV_STORE_URL = "REPRO_STORE_URL"
ENV_STORE_TIMEOUT = "REPRO_STORE_TIMEOUT_SECONDS"
ENV_STORE_RETRIES = "REPRO_STORE_RETRIES"
ENV_BREAKER_FAILURES = "REPRO_STORE_BREAKER_FAILURES"
ENV_BREAKER_RESET = "REPRO_STORE_BREAKER_RESET_SECONDS"

DEFAULT_TIMEOUT_SECONDS = 5.0
DEFAULT_RETRIES = 2
DEFAULT_BREAKER_FAILURES = 3
DEFAULT_BREAKER_RESET_SECONDS = 10.0

#: Backoff envelope of the client's bounded retries (seconds).
_BACKOFF_BASE_SECONDS = 0.05
_BACKOFF_CAP_SECONDS = 0.5

_HOST = socket.gethostname()


class StoreProtocolError(RuntimeError):
    """The peer spoke, but not the protocol (torn frame, bad op, error reply)."""


class StoreUnavailableError(ConnectionError):
    """The remote store cannot be reached (timeouts/refusals/open circuit)."""


def _env_float(name: str, default: float) -> float:
    value = os.environ.get(name)
    if not value:
        return default
    try:
        parsed = float(value)
    except ValueError:
        return default
    return parsed if parsed > 0 else default


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    if not value:
        return default
    try:
        parsed = int(value)
    except ValueError:
        return default
    return parsed if parsed >= 0 else default


def parse_store_url(url: str) -> tuple[str, int]:
    """``tcp://host:port`` (or bare ``host:port``) -> ``(host, port)``."""
    text = url.strip()
    if "//" in text:
        scheme, _separator, rest = text.partition("//")
        if scheme not in ("tcp:", ""):
            raise ValueError(f"store url {url!r}: only tcp:// is supported")
        text = rest
    host, separator, port_text = text.rpartition(":")
    if not separator or not host or not port_text:
        raise ValueError(f"store url {url!r} is not 'tcp://host:port'")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"store url {url!r}: port {port_text!r} is not an integer") from None
    if not 0 < port < 65536:
        raise ValueError(f"store url {url!r}: port {port} out of range")
    return host, port


def _backoff_delay(attempt: int, seed: str) -> float:
    """Exponential backoff with deterministic sha256 jitter (executor idiom)."""
    base = min(_BACKOFF_CAP_SECONDS, _BACKOFF_BASE_SECONDS * (2 ** max(0, attempt - 1)))
    digest = hashlib.sha256(f"{seed}:{attempt}".encode()).digest()
    return base * (0.5 + 0.5 * digest[0] / 255.0)


# -- framing ------------------------------------------------------------------------


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    """Read exactly ``size`` bytes; raises on EOF mid-read (a torn frame)."""
    chunks: list[bytes] = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            raise StoreProtocolError(f"connection closed mid-frame ({remaining} bytes short)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def write_frame(sock: socket.socket, header: dict[str, object], blob: bytes = b"") -> None:
    """Send one frame: lengths, compact JSON header, blob."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    sock.sendall(_FRAME_HEADER.pack(len(header_bytes), len(blob)) + header_bytes + blob)


def read_frame(sock: socket.socket) -> tuple[dict[str, object], bytes]:
    """Receive one frame; raises :class:`StoreProtocolError` on garbage.

    ``None`` lengths never happen -- a clean EOF *before* any length byte
    raises too; callers that want to treat EOF-at-frame-boundary as a
    closed connection catch the error and inspect ``args``.
    """
    prefix = sock.recv(_FRAME_HEADER.size)
    if not prefix:
        raise EOFError("connection closed")
    if len(prefix) < _FRAME_HEADER.size:
        prefix += _recv_exact(sock, _FRAME_HEADER.size - len(prefix))
    header_size, blob_size = _FRAME_HEADER.unpack(prefix)
    if header_size > MAX_HEADER_BYTES or blob_size > MAX_BLOB_BYTES:
        raise StoreProtocolError(
            f"frame too large (header {header_size}, blob {blob_size} bytes)"
        )
    try:
        header = json.loads(_recv_exact(sock, header_size))
    except ValueError as error:
        raise StoreProtocolError(f"undecodable frame header: {error}") from None
    if not isinstance(header, dict):
        raise StoreProtocolError("frame header is not an object")
    return header, _recv_exact(sock, blob_size)


# -- server -------------------------------------------------------------------------


def _ticket_document(ticket: ClaimTicket | None) -> dict[str, object] | None:
    if ticket is None:
        return None
    return {"pid": ticket.pid, "host": ticket.host, "created_unix": ticket.created_unix}


def _ticket_from_document(document: object) -> ClaimTicket | None:
    if not isinstance(document, dict):
        return None
    try:
        return ClaimTicket(
            pid=int(document.get("pid", -1)),
            host=str(document.get("host", "")),
            created_unix=float(document.get("created_unix", 0.0)),
        )
    except (TypeError, ValueError):
        return None


class _StoreRequestHandler(socketserver.BaseRequestHandler):
    """One connection: a loop of request frames until the client hangs up."""

    def handle(self) -> None:  # noqa: D102 - socketserver hook
        server: _ThreadedTCPServer = self.server  # type: ignore[assignment]
        sock: socket.socket = self.request
        sock.settimeout(server.idle_timeout)
        while True:
            try:
                header, blob = read_frame(sock)
            except EOFError:
                return  # clean hang-up between frames
            except (OSError, StoreProtocolError):
                return  # torn frame / dead socket: nothing to answer
            try:
                response, payload = self._dispatch(server, header, blob)
            except FaultInjected:
                # An injected server fault behaves like a crashed request:
                # drop the connection so the client exercises its retries.
                return
            except Exception as error:  # application error: answer, keep going
                response, payload = {"ok": False, "error": f"{type(error).__name__}: {error}"}, b""
            try:
                write_frame(sock, response, payload)
            except OSError:
                return

    def _dispatch(
        self, server: "_ThreadedTCPServer", header: dict[str, object], blob: bytes
    ) -> tuple[dict[str, object], bytes]:
        op = str(header.get("op", ""))
        fault_point("net.server", key=op)
        if int(header.get("v", PROTOCOL_VERSION)) != PROTOCOL_VERSION:
            return {"ok": False, "error": f"unsupported protocol version {header.get('v')}"}, b""
        sub = str(header.get("sub", ""))
        backend = server.backends.get(sub)
        if backend is None:
            return {"ok": False, "error": f"unknown subroot {sub!r}"}, b""
        if op == "ping":
            return {
                "ok": True,
                "server": {"root": str(server.root), "pid": os.getpid(), "v": PROTOCOL_VERSION},
            }, b""
        namespace = str(header.get("ns", ""))
        filename = str(header.get("fn", ""))
        if not namespace or not filename:
            if op != "iter":
                return {"ok": False, "error": f"op {op!r} needs ns and fn"}, b""
        if op == "get":
            entry = backend.get(namespace, filename, touch=bool(header.get("touch", True)))
            return {"ok": True, "found": entry is not None}, entry or b""
        if op == "put":
            backend.put(namespace, filename, blob)
            budget = server.max_bytes
            if budget:
                evicted, freed = evict_lru(backend, budget, keep={(namespace, filename)})
                if evicted:
                    logger.info("store server evicted %d entries (%d bytes)", evicted, freed)
            return {"ok": True}, b""
        if op == "stat":
            stamp = backend.stat(namespace, filename)
            if stamp is None:
                return {"ok": True, "found": False}, b""
            return {
                "ok": True,
                "found": True,
                "size": stamp.size_bytes,
                "accessed": stamp.accessed_unix,
            }, b""
        if op == "touch":
            backend.touch(namespace, filename)
            return {"ok": True}, b""
        if op == "delete":
            return {"ok": True, "deleted": backend.delete(namespace, filename)}, b""
        if op == "iter":
            target = namespace or None
            entries = [[ns, fn] for ns, fn in backend.iter(target)]
            return {"ok": True, "entries": entries}, b""
        if op == "claim":
            # Server-side claim with the *client's* identity, so staleness
            # probing sees the real owner, not the server process.
            owner = _ticket_from_document(header.get("owner"))
            return {"ok": True, "claimed": backend.claim(namespace, filename, owner=owner)}, b""
        if op == "claim_info":
            ticket = backend.claim_info(namespace, filename)
            return {"ok": True, "ticket": _ticket_document(ticket)}, b""
        if op == "release":
            owner = _ticket_from_document(header.get("owner"))
            return {"ok": True, "released": backend.release(namespace, filename, owner=owner)}, b""
        if op == "quarantine":
            return {"ok": True, "quarantined": backend.quarantine(namespace, filename)}, b""
        return {"ok": False, "error": f"unknown op {op!r}"}, b""


class _ThreadedTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], root: Path, max_bytes: int | None):
        self.root = Path(root)
        self.max_bytes = max_bytes
        #: Seconds a connection may sit idle between frames before the
        #: server reclaims its thread.
        self.idle_timeout = 300.0
        self.backends: dict[str, DiskBackend] = {
            sub: DiskBackend(self.root / sub if sub else self.root) for sub in _SUBROOTS
        }
        super().__init__(address, _StoreRequestHandler)


class StoreServer:
    """A threaded store server over a local :class:`DiskBackend` root.

    ``port=0`` binds an ephemeral port (read it back via :attr:`port`);
    ``max_bytes`` bounds each sub-store with LRU eviction after every
    ``put`` (claimed entries and reserved namespaces survive, exactly as
    for a local bounded store).  Usable as a context manager in tests.
    """

    def __init__(
        self,
        root: Path | str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_bytes: int | None = None,
    ):
        self._server = _ThreadedTCPServer((host, port), Path(root), max_bytes)
        self._thread: threading.Thread | None = None

    @property
    def root(self) -> Path:
        return self._server.root

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    def start(self) -> "StoreServer":
        """Serve in a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-store-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve in the calling thread (the CLI's blocking path)."""
        self._server.serve_forever(poll_interval=0.2)

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "StoreServer":
        return self.start()

    def __exit__(self, *_exc_info: object) -> None:
        self.close()


def serve_store(
    *, host: str, port: int, root: Path | str, max_bytes: int | None = None
) -> int:
    """Blocking entry point behind ``python -m repro store serve``."""
    server = StoreServer(root, host=host, port=port, max_bytes=max_bytes)
    budget = f", max-bytes={max_bytes}" if max_bytes else ""
    print(f"repro store serving {server.root} at {server.url}{budget}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


# -- circuit breaker ----------------------------------------------------------------


class CircuitBreaker:
    """Closed -> open -> half-open breaker over consecutive op failures.

    ``failures`` consecutive failed operations open the circuit; while
    open, calls fast-fail without touching the network.  After
    ``reset_seconds`` one probe call is allowed through (half-open): a
    success closes the circuit, a failure re-opens it for another cooldown.
    ``degraded_seconds`` accumulates total open/half-open wall-clock time.
    """

    def __init__(self, *, failures: int, reset_seconds: float):
        self.failure_threshold = max(1, failures)
        self.reset_seconds = reset_seconds
        self.state = "closed"
        self.opens = 0
        self._consecutive = 0
        self._opened_at: float | None = None  # start of the current degraded span
        self._cooldown_from = 0.0  # start of the current open cooldown
        self._degraded = 0.0
        self._lock = threading.Lock()

    def allow(self) -> bool:
        """Whether a call may proceed (True flips open -> half-open on expiry)."""
        with self._lock:
            if self.state == "closed":
                return True
            if self.state == "open":
                if time.monotonic() - self._cooldown_from >= self.reset_seconds:
                    self.state = "half_open"
                    return True
                return False
            return True  # half-open: let the probe(s) through

    def record_success(self) -> None:
        with self._lock:
            if self._opened_at is not None:
                self._degraded += time.monotonic() - self._opened_at
                self._opened_at = None
            self.state = "closed"
            self._consecutive = 0

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive += 1
            if self.state == "half_open":
                # The probe failed: stay degraded, restart the cooldown, but
                # keep the original ``_opened_at`` so degraded time is
                # continuous across probe cycles.
                self.state = "open"
                self._cooldown_from = time.monotonic()
            elif self.state == "closed" and self._consecutive >= self.failure_threshold:
                self.state = "open"
                self.opens += 1
                self._opened_at = time.monotonic()
                self._cooldown_from = self._opened_at

    def degraded_seconds(self) -> float:
        with self._lock:
            accumulated = self._degraded
            if self._opened_at is not None:
                accumulated += time.monotonic() - self._opened_at
            return accumulated


# -- client -------------------------------------------------------------------------


#: Transport-level failures that count against retries and the breaker.
#: ``FaultInjected`` is included so seeded ``net.*`` chaos plans exercise
#: exactly the retry/breaker path a real network fault would.
_TRANSPORT_ERRORS = (OSError, EOFError, StoreProtocolError, FaultInjected)


class RemoteBackend:
    """Client side of the store protocol; a full :class:`StoreBackend`.

    Every operation gets a socket deadline (``timeout``), ``retries``
    bounded retries with deterministic jittered backoff, and rides the
    instance's circuit breaker: after ``breaker_failures`` consecutive
    failed operations the circuit opens and calls fast-fail with
    :class:`StoreUnavailableError` until the cooldown expires.  ``root``
    is ``None`` -- the bytes live on the server.
    """

    def __init__(
        self,
        url: str,
        *,
        subroot: str = "",
        timeout: float | None = None,
        retries: int | None = None,
        breaker_failures: int | None = None,
        breaker_reset_seconds: float | None = None,
    ):
        self.url = url
        self.host, self.port = parse_store_url(url)
        self.subroot = subroot
        self.root: Path | None = None
        self.timeout = timeout if timeout is not None else _env_float(
            ENV_STORE_TIMEOUT, DEFAULT_TIMEOUT_SECONDS
        )
        self.retries = retries if retries is not None else _env_int(
            ENV_STORE_RETRIES, DEFAULT_RETRIES
        )
        self.breaker = CircuitBreaker(
            failures=breaker_failures
            if breaker_failures is not None
            else _env_int(ENV_BREAKER_FAILURES, DEFAULT_BREAKER_FAILURES),
            reset_seconds=breaker_reset_seconds
            if breaker_reset_seconds is not None
            else _env_float(ENV_BREAKER_RESET, DEFAULT_BREAKER_RESET_SECONDS),
        )
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        #: Cumulative gauges (``/v1/metrics``) and drainable deltas
        #: (folded into the persisted store counters by the runner).
        self.hits_total = 0
        self.errors_total = 0
        self.recent_hits = 0
        self.recent_errors = 0
        self.recent_opens = 0
        self._drained_opens = 0

    # -- transport ------------------------------------------------------------------

    def _connect(self, op: str) -> socket.socket:
        fault_point("net.connect", key=op)
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.settimeout(self.timeout)
        return sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close never matters
                pass
            self._sock = None

    def _roundtrip(
        self, op: str, header: dict[str, object], blob: bytes
    ) -> tuple[dict[str, object], bytes]:
        if self._sock is None:
            self._sock = self._connect(op)
        fault_point("net.send", key=op)
        write_frame(self._sock, header, blob)
        fault_point("net.recv", key=op)
        return read_frame(self._sock)

    def _call(
        self,
        op: str,
        *,
        namespace: str = "",
        filename: str = "",
        blob: bytes = b"",
        **extra: object,
    ) -> tuple[dict[str, object], bytes]:
        """One operation through deadline + retries + breaker."""
        if not self.breaker.allow():
            raise StoreUnavailableError(
                f"store {self.url} unavailable: circuit open after repeated failures"
            )
        header: dict[str, object] = {
            "v": PROTOCOL_VERSION,
            "op": op,
            "sub": self.subroot,
            "ns": namespace,
            "fn": filename,
        }
        header.update(extra)
        last_error: BaseException | None = None
        with self._lock:
            for attempt in range(1, self.retries + 2):
                try:
                    response, payload = self._roundtrip(op, header, blob)
                except _TRANSPORT_ERRORS as error:
                    last_error = error
                    self._drop_connection()
                    if attempt <= self.retries:
                        time.sleep(_backoff_delay(attempt, f"{self.url}:{op}"))
                    continue
                if not response.get("ok"):
                    # The server answered coherently: an application error,
                    # not a connectivity failure -- no retry, no breaker trip.
                    raise StoreProtocolError(str(response.get("error", "unknown server error")))
                self.breaker.record_success()
                return response, payload
        self.recent_errors += 1
        self.errors_total += 1
        before = self.breaker.opens
        self.breaker.record_failure()
        self.recent_opens += self.breaker.opens - before
        raise StoreUnavailableError(
            f"store {self.url} unreachable after {self.retries + 1} attempt(s): {last_error}"
        )

    def close(self) -> None:
        with self._lock:
            self._drop_connection()

    # -- health / counters ------------------------------------------------------------

    @property
    def breaker_state(self) -> str:
        return self.breaker.state

    def degraded_seconds(self) -> float:
        return self.breaker.degraded_seconds()

    def ping(self) -> dict[str, object] | None:
        """Server identity on success, ``None`` when unreachable."""
        try:
            response, _payload = self._call("ping")
        except (StoreUnavailableError, StoreProtocolError):
            return None
        server = response.get("server")
        return server if isinstance(server, dict) else {}

    def health(self) -> dict[str, object]:
        """Reachability + breaker snapshot (probes the server when allowed)."""
        server = self.ping()
        return {
            "backend": "remote",
            "url": self.url,
            "reachable": server is not None,
            "breaker_state": self.breaker_state,
            "degraded_seconds": round(self.degraded_seconds(), 3),
        }

    def drain_counters(self) -> dict[str, int]:
        """Deltas since the last drain (for the persisted store counters)."""
        drained = {
            "remote_hits": self.recent_hits,
            "remote_errors": self.recent_errors,
            "breaker_opens": self.recent_opens,
        }
        self.recent_hits = 0
        self.recent_errors = 0
        self.recent_opens = 0
        return drained

    # -- StoreBackend protocol --------------------------------------------------------

    def path(self, namespace: str, filename: str) -> Path | None:
        return None

    def get(self, namespace: str, filename: str, *, touch: bool = True) -> bytes | None:
        response, payload = self._call("get", namespace=namespace, filename=filename, touch=touch)
        if not response.get("found"):
            return None
        self.recent_hits += 1
        self.hits_total += 1
        return payload

    def put(self, namespace: str, filename: str, blob: bytes) -> None:
        self._call("put", namespace=namespace, filename=filename, blob=bytes(blob))

    def delete(self, namespace: str, filename: str) -> bool:
        response, _payload = self._call("delete", namespace=namespace, filename=filename)
        return bool(response.get("deleted"))

    def iter(self, namespace: str | None = None):
        response, _payload = self._call("iter", namespace=namespace or "")
        entries = response.get("entries")
        if isinstance(entries, list):
            for pair in entries:
                if isinstance(pair, list) and len(pair) == 2:
                    yield str(pair[0]), str(pair[1])

    def stat(self, namespace: str, filename: str) -> EntryStat | None:
        response, _payload = self._call("stat", namespace=namespace, filename=filename)
        if not response.get("found"):
            return None
        return EntryStat(
            size_bytes=int(response.get("size", 0)),
            accessed_unix=float(response.get("accessed", 0.0)),
        )

    def touch(self, namespace: str, filename: str) -> None:
        self._call("touch", namespace=namespace, filename=filename)

    def _identity(self) -> dict[str, object]:
        return {"pid": os.getpid(), "host": _HOST, "created_unix": round(time.time(), 3)}

    def claim(self, namespace: str, filename: str, *, owner: ClaimTicket | None = None) -> bool:
        document = _ticket_document(owner) if owner is not None else self._identity()
        response, _payload = self._call(
            "claim", namespace=namespace, filename=filename, owner=document
        )
        return bool(response.get("claimed"))

    def claim_info(self, namespace: str, filename: str) -> ClaimTicket | None:
        response, _payload = self._call("claim_info", namespace=namespace, filename=filename)
        return _ticket_from_document(response.get("ticket"))

    def release(self, namespace: str, filename: str, *, owner: ClaimTicket | None = None) -> bool:
        response, _payload = self._call(
            "release", namespace=namespace, filename=filename, owner=_ticket_document(owner)
        )
        return bool(response.get("released"))

    def quarantine(self, namespace: str, filename: str) -> bool:
        response, _payload = self._call("quarantine", namespace=namespace, filename=filename)
        return bool(response.get("quarantined"))


# -- tiered composition -------------------------------------------------------------


class TieredBackend:
    """Local :class:`DiskBackend` fronted onto a shared :class:`RemoteBackend`.

    * **reads** check local first; local misses consult the remote and
      promote hits into the local tier (the local store is a cache of the
      shared one);
    * **writes** land local-first (atomic, claim-clearing), then write
      through to the remote best-effort -- a dead server never fails a put;
    * **claims** are arbitrated remotely while the circuit is closed
      (fleet-wide exactly-once) and locally while it is open (per-host
      exactly-once; duplicated cross-host work is wasteful, never wrong);
    * **eviction scope** is the local tier only: ``iter``/``delete``
      operate locally, so a local byte budget can never prune the shared
      server (which enforces its own ``--max-bytes``).

    Every remote failure is absorbed: the operation degrades to its
    local-only behaviour and the breaker decides when to probe again.
    """

    def __init__(self, local: DiskBackend, remote: RemoteBackend):
        self.local = local
        self.remote = remote
        self.root = local.root
        self.url = remote.url

    # -- degradation helper -----------------------------------------------------------

    def _remote_allowed(self) -> bool:
        return self.remote.breaker.allow()

    def health(self) -> dict[str, object]:
        health = self.remote.health()
        health["backend"] = "tiered"
        health["local_root"] = str(self.root)
        return health

    def remote_status(self) -> dict[str, object]:
        """Non-probing gauges for ``/v1/metrics`` and ``cache stats``."""
        return {
            "url": self.url,
            "breaker_state": self.remote.breaker_state,
            "degraded_seconds": round(self.remote.degraded_seconds(), 3),
            "remote_hits": self.remote.hits_total,
            "remote_errors": self.remote.errors_total,
            "breaker_opens": self.remote.breaker.opens,
        }

    def drain_remote_counters(self) -> dict[str, int]:
        return self.remote.drain_counters()

    def close(self) -> None:
        self.remote.close()

    # -- StoreBackend protocol --------------------------------------------------------

    def path(self, namespace: str, filename: str) -> Path | None:
        return self.local.path(namespace, filename)

    def get(self, namespace: str, filename: str, *, touch: bool = True) -> bytes | None:
        blob = self.local.get(namespace, filename, touch=touch)
        if blob is not None:
            return blob
        if not self._remote_allowed():
            return None
        try:
            blob = self.remote.get(namespace, filename, touch=touch)
        except (StoreUnavailableError, StoreProtocolError):
            return None
        if blob is not None:
            # Promote into the local tier so repeat reads stay off the
            # network.  ``put`` clears any local fill claim -- correct: the
            # entry has landed, exactly the entry-then-release ordering a
            # local fill would produce.
            try:
                self.local.put(namespace, filename, blob)
            except OSError:  # full local disk: serve the remote bytes anyway
                pass
        return blob

    def put(self, namespace: str, filename: str, blob: bytes) -> None:
        self.local.put(namespace, filename, blob)
        if not self._remote_allowed():
            return
        try:
            self.remote.put(namespace, filename, blob)
        except (StoreUnavailableError, StoreProtocolError) as error:
            logger.debug("write-through to %s failed (%s); entry is local-only", self.url, error)

    def delete(self, namespace: str, filename: str) -> bool:
        # Local tier only: eviction under a local byte budget must never
        # prune the shared store (the server bounds itself).
        return self.local.delete(namespace, filename)

    def iter(self, namespace: str | None = None):
        return self.local.iter(namespace)

    def stat(self, namespace: str, filename: str) -> EntryStat | None:
        stamp = self.local.stat(namespace, filename)
        if stamp is not None or not self._remote_allowed():
            return stamp
        try:
            return self.remote.stat(namespace, filename)
        except (StoreUnavailableError, StoreProtocolError):
            return None

    def touch(self, namespace: str, filename: str) -> None:
        self.local.touch(namespace, filename)

    def claim(self, namespace: str, filename: str, *, owner: ClaimTicket | None = None) -> bool:
        if self._remote_allowed():
            try:
                return self.remote.claim(namespace, filename, owner=owner)
            except (StoreUnavailableError, StoreProtocolError):
                pass
        return self.local.claim(namespace, filename, owner=owner)

    def claim_info(self, namespace: str, filename: str) -> ClaimTicket | None:
        if self._remote_allowed():
            try:
                return self.remote.claim_info(namespace, filename)
            except (StoreUnavailableError, StoreProtocolError):
                pass
        return self.local.claim_info(namespace, filename)

    def release(self, namespace: str, filename: str, *, owner: ClaimTicket | None = None) -> bool:
        released = False
        if self._remote_allowed():
            try:
                released = self.remote.release(namespace, filename, owner=owner)
            except (StoreUnavailableError, StoreProtocolError):
                pass
        return self.local.release(namespace, filename, owner=owner) or released

    def quarantine(self, namespace: str, filename: str) -> bool:
        quarantined = self.local.quarantine(namespace, filename)
        if self._remote_allowed():
            # Quarantine (never silently delete) the shared copy too, so a
            # corrupt entry stops being re-promoted on every read.
            try:
                quarantined = self.remote.quarantine(namespace, filename) or quarantined
            except (StoreUnavailableError, StoreProtocolError):
                pass
        return quarantined


def make_store_backend(
    root: Path | str,
    url: str,
    *,
    subroot: str = "",
    timeout: float | None = None,
    retries: int | None = None,
) -> TieredBackend:
    """A tiered backend: local :class:`DiskBackend` at ``root`` over ``url``."""
    return TieredBackend(
        DiskBackend(Path(root)),
        RemoteBackend(url, subroot=subroot, timeout=timeout, retries=retries),
    )
