"""Content-addressed result cache for experiment runs.

Every entry is one JSON blob under the ``(experiment, <key>.json)``
address of a :class:`~repro.runner.backends.StoreBackend` -- by default
the on-disk layout ``<root>/<experiment>/<key>.json`` -- where the key is
``sha256(experiment name + canonical params + code fingerprint)``.  The
payload carries the rows (serialised through
:meth:`repro.analysis.sweep.SweepResult.to_jsonable`, so replay is
bit-identical to a sanitised live run) plus provenance metadata: the exact
config, the fingerprint, interpreter/numpy/package versions and a creation
timestamp.  Writes go through a temp file + ``os.replace`` so concurrent
runners never observe a torn entry.

Concurrent *writers* coordinate through first-writer-wins fill claims
(:meth:`ResultCache.claim`): of N processes cold-filling the same content
address exactly one computes, the rest wait on
:func:`repro.runner.backends.wait_for_fill` and read the winner's entry.
A ``max_bytes`` budget (``--cache-max-bytes`` / ``$REPRO_CACHE_MAX_BYTES``)
bounds the store with LRU eviction after every write; in-flight fills,
the entry just written and the quarantine sidecar are never evicted.

Corrupt entries (undecodable bytes, invalid JSON, wrong schema, broken
document shape) are **quarantined**, not silently re-counted as misses:
the file is moved to ``<root>/corrupt/<experiment>/<key>.json`` for
forensics, the detection is tallied on the cache's in-memory stat delta
(drained into the persisted counters by the runner) and the read behaves
as a miss so the entry is recomputed.  A file that simply vanished
(raced ``unlink``) stays a plain miss.

The cache root defaults to ``$REPRO_CACHE_DIR`` when set, else
``~/.cache/dvafs-repro``.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

from ..analysis.sweep import SweepResult
from ..faults import fault_point
from .backends import ClaimTicket, DiskBackend, StoreBackend, env_max_bytes, evict_lru

logger = logging.getLogger(__name__)

#: Bumped when the on-disk entry layout changes; part of every cache key.
SCHEMA_VERSION = 1

#: Sidecar directory (under a store root) corrupt entries are moved into.
QUARANTINE_DIRNAME = "corrupt"

#: Size budget (bytes) of the result cache; unset/0 = unbounded.
ENV_CACHE_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"


def quarantine_entry(root: Path, path: Path) -> Path | None:
    """Move a corrupt entry under ``<root>/corrupt/``; ``None`` if it raced away.

    The move is a single ``os.replace`` on the same filesystem, so a
    concurrent reader either sees the (corrupt) entry or a miss -- never a
    half-moved file.  Losing the race (another process quarantined or
    unlinked it first) is fine: the entry is gone either way.
    """
    destination = root / QUARANTINE_DIRNAME / path.parent.name / path.name
    try:
        destination.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, destination)
    except OSError:
        return None
    return destination


def quarantine_summary(root: Path) -> dict[str, int]:
    """Entry count and byte total of a store's quarantine sidecar."""
    quarantine = Path(root) / QUARANTINE_DIRNAME
    entries = 0
    size = 0
    if quarantine.is_dir():
        for path in quarantine.rglob("*"):
            try:
                if path.is_file():
                    entries += 1
                    size += path.stat().st_size
            except OSError:  # pragma: no cover - raced deletion
                continue
    return {"entries": entries, "bytes": size}


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/dvafs-repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "dvafs-repro"


def cache_key(experiment: str, canonical_params_json: str, fingerprint: str) -> str:
    """Content address of one run: experiment + canonical params + code."""
    blob = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "experiment": experiment,
            "params": canonical_params_json,
            "fingerprint": fingerprint,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class CacheEntry:
    """One cached run: rows plus the provenance needed to trust/replay them."""

    experiment: str
    params: dict[str, object]
    fingerprint: str
    result: SweepResult
    elapsed_seconds: float
    provenance: dict[str, object] = field(default_factory=dict)

    @property
    def rows(self) -> list[dict[str, object]]:
        return self.result.records

    def to_document(self) -> dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "experiment": self.experiment,
            "params": self.params,
            "fingerprint": self.fingerprint,
            "elapsed_seconds": self.elapsed_seconds,
            "provenance": self.provenance,
            "result": {"records": self.result.to_jsonable()},
        }

    @classmethod
    def from_document(cls, document: Mapping[str, object]) -> "CacheEntry":
        return cls(
            experiment=str(document["experiment"]),
            params=dict(document["params"]),
            fingerprint=str(document["fingerprint"]),
            result=SweepResult.from_jsonable(document["result"]["records"]),
            elapsed_seconds=float(document["elapsed_seconds"]),
            provenance=dict(document.get("provenance", {})),
        )


def run_provenance() -> dict[str, object]:
    """Environment metadata recorded next to every cached result."""
    import numpy

    from .. import __version__

    return {
        "created_unix": round(time.time(), 3),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro": __version__,
    }


class ResultCache:
    """Content-addressed store of experiment results over a pluggable backend.

    ``backend`` defaults to :class:`~repro.runner.backends.DiskBackend` at
    ``root`` (or the default cache root); pass a
    :class:`~repro.runner.backends.MemoryBackend` for an ephemeral store
    (tests, the service's warm-path L1).  ``max_bytes`` (default
    ``$REPRO_CACHE_MAX_BYTES``) bounds the store via LRU eviction after
    every write; ``None``/``0`` leaves it unbounded.
    """

    #: Fault-plan site names of this store's claim/evict hooks.
    CLAIM_SITE = "cache.claim"
    EVICT_SITE = "cache.evict"

    def __init__(
        self,
        root: Path | str | None = None,
        *,
        backend: StoreBackend | None = None,
        max_bytes: int | None = None,
    ):
        if backend is not None:
            self.backend = backend
        else:
            self.backend = DiskBackend(Path(root) if root is not None else default_cache_root())
        self.root = self.backend.root
        self.max_bytes = max_bytes if max_bytes is not None else env_max_bytes(ENV_CACHE_MAX_BYTES)
        #: Tallies since the last :meth:`drain_stats`; the runner drains
        #: them into the persisted store counters.
        self.recent_corrupt = 0
        self.recent_quarantined = 0
        self.recent_claims = 0
        self.recent_claim_waits = 0
        self.recent_claim_wait_timeouts = 0
        self.recent_evictions = 0
        self.recent_evicted_bytes = 0

    def drain_stats(self) -> dict[str, int]:
        """Counters tallied since the last drain; resets them.

        Keys: ``corrupt``, ``quarantined``, ``claims`` (fill claims won),
        ``claim_waits`` (fills lost to a concurrent winner),
        ``claim_wait_timeouts`` (waits that exhausted the deadline and
        degraded to local compute), ``evictions`` and ``evicted_bytes`` --
        plus, when the backend is networked, its drained remote counters
        (``remote_hits``/``remote_errors``/``breaker_opens``).
        """
        drained = {
            "corrupt": self.recent_corrupt,
            "quarantined": self.recent_quarantined,
            "claims": self.recent_claims,
            "claim_waits": self.recent_claim_waits,
            "claim_wait_timeouts": self.recent_claim_wait_timeouts,
            "evictions": self.recent_evictions,
            "evicted_bytes": self.recent_evicted_bytes,
        }
        self.recent_corrupt = 0
        self.recent_quarantined = 0
        self.recent_claims = 0
        self.recent_claim_waits = 0
        self.recent_claim_wait_timeouts = 0
        self.recent_evictions = 0
        self.recent_evicted_bytes = 0
        drain_remote = getattr(self.backend, "drain_remote_counters", None)
        if drain_remote is not None:
            drained.update(drain_remote())
        return drained

    @staticmethod
    def _check_experiment_name(experiment: str) -> str:
        """Experiment names are single path components -- never traversal."""
        if Path(experiment).name != experiment or experiment in ("", ".", ".."):
            raise ValueError(f"invalid experiment name {experiment!r}")
        return experiment

    @staticmethod
    def _filename(key: str) -> str:
        return f"{key}.json"

    def _path(self, experiment: str, key: str) -> Path | None:
        return self.backend.path(self._check_experiment_name(experiment), self._filename(key))

    def _quarantine(self, experiment: str, key: str) -> None:
        """Record + move one corrupt entry (read path behaves as a miss)."""
        self.recent_corrupt += 1
        if self.backend.quarantine(experiment, self._filename(key)):
            self.recent_quarantined += 1

    def get(self, experiment: str, key: str) -> CacheEntry | None:
        """The stored entry, or ``None`` on a miss.

        Corrupt entries (any readable blob that fails to parse into a
        current-schema document) are quarantined so they stop being
        re-read on every probe and stay inspectable; the caller simply
        sees a miss and recomputes.  Reads refresh the entry's LRU stamp.
        """
        blob = self.backend.get(self._check_experiment_name(experiment), self._filename(key))
        if blob is None:  # missing or unreadable: a plain miss, not corruption
            return None
        try:
            document = json.loads(blob)
        except ValueError:  # non-UTF-8 bytes or invalid JSON
            self._quarantine(experiment, key)
            return None
        if not isinstance(document, dict) or document.get("schema") != SCHEMA_VERSION:
            self._quarantine(experiment, key)
            return None
        try:
            return CacheEntry.from_document(document)
        except (KeyError, TypeError, ValueError, AttributeError):
            self._quarantine(experiment, key)
            return None

    def put(self, key: str, entry: CacheEntry) -> Path | None:
        """Atomically persist one entry; returns its path (``None`` off-disk).

        The write clears any fill claim on the address (entry first, claim
        second -- waiters observing "no claim" are guaranteed the entry)
        and then enforces the store's byte budget.
        """
        experiment = self._check_experiment_name(entry.experiment)
        filename = self._filename(key)
        fault_point("cache.write", key=experiment)
        document = json.dumps(entry.to_document(), indent=1)
        self.backend.put(experiment, filename, document.encode())
        path = self.backend.path(experiment, filename)
        fault_point("cache.written", key=experiment, path=path)
        self._enforce_budget(experiment, filename)
        return path

    # -- concurrent-fill claims -----------------------------------------------------

    def claim(self, experiment: str, key: str) -> bool:
        """Try to win the fill claim for one content address.

        ``True`` means this process computes the entry (and its ``put``
        clears the claim); ``False`` means a concurrent filler owns it and
        the caller should wait via
        :func:`repro.runner.backends.wait_for_fill`.
        """
        won = self.backend.claim(self._check_experiment_name(experiment), self._filename(key))
        if not won:
            return False
        try:
            fault_point(self.CLAIM_SITE, key=experiment)
        except BaseException:
            # Never leak a claim: a fault/crash between winning and filling
            # would otherwise wedge every waiter until the stale-claim TTL.
            self.backend.release(experiment, self._filename(key))
            raise
        self.recent_claims += 1
        return True

    def claim_info(self, experiment: str, key: str) -> ClaimTicket | None:
        """The in-flight fill ticket for an address, if any."""
        return self.backend.claim_info(
            self._check_experiment_name(experiment), self._filename(key)
        )

    def release_claim(self, experiment: str, key: str) -> bool:
        """Drop the claim on an address (no-op if none is held)."""
        return self.backend.release(self._check_experiment_name(experiment), self._filename(key))

    def break_claim(self, experiment: str, key: str, ticket: ClaimTicket) -> bool:
        """Remove exactly ``ticket`` (a stale claim); fails if re-claimed."""
        return self.backend.release(
            self._check_experiment_name(experiment), self._filename(key), owner=ticket
        )

    def note_wait(self) -> None:
        """Tally one fill lost to a concurrent winner (for the drained stats)."""
        self.recent_claim_waits += 1

    def note_wait_timeout(self) -> None:
        """Tally one wait that exhausted its deadline and computed locally."""
        self.recent_claim_wait_timeouts += 1

    # -- bounded store ----------------------------------------------------------------

    def _enforce_budget(self, experiment: str, filename: str) -> None:
        """LRU-evict past ``max_bytes``, protecting the entry just written."""
        if not self.max_bytes:
            return

        def on_evict(namespace: str, name: str) -> None:
            fault_point(self.EVICT_SITE, key=f"{namespace}/{name}")

        evicted, freed = evict_lru(
            self.backend,
            self.max_bytes,
            keep={(experiment, filename)},
            on_evict=on_evict,
        )
        if evicted:
            logger.debug(
                "evicted %d entr%s (%d bytes) past the %d-byte budget",
                evicted, "y" if evicted == 1 else "ies", freed, self.max_bytes,
            )
        self.recent_evictions += evicted
        self.recent_evicted_bytes += freed

    # -- listings ---------------------------------------------------------------------

    def entries(self, experiment: str | None = None) -> Iterator[tuple[str, Path | None]]:
        """(key, path) pairs of stored entries, sorted for stable listings."""
        if experiment is not None:
            self._check_experiment_name(experiment)
        for namespace, filename in self.backend.iter(experiment):
            if not filename.endswith(".json"):
                continue
            yield filename[: -len(".json")], self.backend.path(namespace, filename)

    def ls(self, experiment: str | None = None) -> list[dict[str, object]]:
        """Metadata summary of stored entries (no row payloads, no LRU touch)."""
        listing = []
        for namespace, filename in self.backend.iter(experiment):
            if not filename.endswith(".json"):
                continue
            key = filename[: -len(".json")]
            blob = self.backend.get(namespace, filename, touch=False)
            try:
                document = json.loads(blob) if blob is not None else {}
            except ValueError:
                document = {}
            if not isinstance(document, dict):
                document = {}
            result = document.get("result")
            records = result.get("records", []) if isinstance(result, dict) else []
            provenance = document.get("provenance")
            if not isinstance(provenance, dict):
                provenance = {}
            stamp = self.backend.stat(namespace, filename)
            listing.append(
                {
                    "experiment": document.get("experiment", namespace),
                    "key": key,
                    "rows": len(records) if isinstance(records, list) else 0,
                    "elapsed_seconds": document.get("elapsed_seconds"),
                    "created_unix": provenance.get("created_unix"),
                    "size_bytes": stamp.size_bytes if stamp else 0,
                }
            )
        return listing

    def clear(self, experiment: str | None = None) -> int:
        """Delete stored entries (optionally of one experiment); returns count."""
        if experiment is not None:
            self._check_experiment_name(experiment)
        removed = 0
        for namespace, filename in list(self.backend.iter(experiment)):
            if filename.endswith(".json") and self.backend.delete(namespace, filename):
                removed += 1
        return removed
