"""Content-addressed on-disk result cache for experiment runs.

Every entry is one JSON file under ``<root>/<experiment>/<key>.json`` where
the key is ``sha256(experiment name + canonical params + code fingerprint)``.
The payload carries the rows (serialised through
:meth:`repro.analysis.sweep.SweepResult.to_jsonable`, so replay is
bit-identical to a sanitised live run) plus provenance metadata: the exact
config, the fingerprint, interpreter/numpy/package versions and a creation
timestamp.  Writes go through a temp file + ``os.replace`` so concurrent
runners never observe a torn entry.

The cache root defaults to ``$REPRO_CACHE_DIR`` when set, else
``~/.cache/dvafs-repro``.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

from ..analysis.sweep import SweepResult

#: Bumped when the on-disk entry layout changes; part of every cache key.
SCHEMA_VERSION = 1


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/dvafs-repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "dvafs-repro"


def cache_key(experiment: str, canonical_params_json: str, fingerprint: str) -> str:
    """Content address of one run: experiment + canonical params + code."""
    blob = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "experiment": experiment,
            "params": canonical_params_json,
            "fingerprint": fingerprint,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class CacheEntry:
    """One cached run: rows plus the provenance needed to trust/replay them."""

    experiment: str
    params: dict[str, object]
    fingerprint: str
    result: SweepResult
    elapsed_seconds: float
    provenance: dict[str, object] = field(default_factory=dict)

    @property
    def rows(self) -> list[dict[str, object]]:
        return self.result.records

    def to_document(self) -> dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "experiment": self.experiment,
            "params": self.params,
            "fingerprint": self.fingerprint,
            "elapsed_seconds": self.elapsed_seconds,
            "provenance": self.provenance,
            "result": {"records": self.result.to_jsonable()},
        }

    @classmethod
    def from_document(cls, document: Mapping[str, object]) -> "CacheEntry":
        return cls(
            experiment=str(document["experiment"]),
            params=dict(document["params"]),
            fingerprint=str(document["fingerprint"]),
            result=SweepResult.from_jsonable(document["result"]["records"]),
            elapsed_seconds=float(document["elapsed_seconds"]),
            provenance=dict(document.get("provenance", {})),
        )


def run_provenance() -> dict[str, object]:
    """Environment metadata recorded next to every cached result."""
    import numpy

    from .. import __version__

    return {
        "created_unix": round(time.time(), 3),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro": __version__,
    }


class ResultCache:
    """Content-addressed store of experiment results under one root directory."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_cache_root()

    @staticmethod
    def _check_experiment_name(experiment: str) -> str:
        """Experiment names are single path components -- never traversal."""
        if Path(experiment).name != experiment or experiment in ("", ".", ".."):
            raise ValueError(f"invalid experiment name {experiment!r}")
        return experiment

    def _path(self, experiment: str, key: str) -> Path:
        return self.root / self._check_experiment_name(experiment) / f"{key}.json"

    def get(self, experiment: str, key: str) -> CacheEntry | None:
        """The stored entry, or ``None`` on miss/corruption (corrupt = miss)."""
        path = self._path(experiment, key)
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):  # unreadable, non-UTF-8 or invalid JSON
            return None
        if not isinstance(document, dict) or document.get("schema") != SCHEMA_VERSION:
            return None
        try:
            return CacheEntry.from_document(document)
        except (KeyError, TypeError, ValueError, AttributeError):
            return None

    def put(self, key: str, entry: CacheEntry) -> Path:
        """Atomically persist one entry; returns its path."""
        path = self._path(entry.experiment, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = json.dumps(entry.to_document(), indent=1)
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                handle.write(document)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    def entries(self, experiment: str | None = None) -> Iterator[tuple[str, Path]]:
        """(key, path) pairs of stored entries, sorted for stable listings."""
        if experiment is not None:
            self._check_experiment_name(experiment)
        if not self.root.is_dir():
            return
        directories = (
            [self.root / experiment]
            if experiment is not None
            else sorted(child for child in self.root.iterdir() if child.is_dir())
        )
        for directory in directories:
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*.json")):
                yield path.stem, path

    def ls(self, experiment: str | None = None) -> list[dict[str, object]]:
        """Metadata summary of stored entries (no row payloads)."""
        listing = []
        for key, path in self.entries(experiment):
            try:
                document = json.loads(path.read_text())
            except (OSError, ValueError):
                document = {}
            if not isinstance(document, dict):
                document = {}
            result = document.get("result")
            records = result.get("records", []) if isinstance(result, dict) else []
            provenance = document.get("provenance")
            if not isinstance(provenance, dict):
                provenance = {}
            listing.append(
                {
                    "experiment": document.get("experiment", path.parent.name),
                    "key": key,
                    "rows": len(records) if isinstance(records, list) else 0,
                    "elapsed_seconds": document.get("elapsed_seconds"),
                    "created_unix": provenance.get("created_unix"),
                    "size_bytes": path.stat().st_size if path.is_file() else 0,
                }
            )
        return listing

    def clear(self, experiment: str | None = None) -> int:
        """Delete stored entries (optionally of one experiment); returns count."""
        removed = 0
        for _key, path in list(self.entries(experiment)):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - raced deletion
                pass
        return removed
