"""Content-addressed on-disk result cache for experiment runs.

Every entry is one JSON file under ``<root>/<experiment>/<key>.json`` where
the key is ``sha256(experiment name + canonical params + code fingerprint)``.
The payload carries the rows (serialised through
:meth:`repro.analysis.sweep.SweepResult.to_jsonable`, so replay is
bit-identical to a sanitised live run) plus provenance metadata: the exact
config, the fingerprint, interpreter/numpy/package versions and a creation
timestamp.  Writes go through a temp file + ``os.replace`` so concurrent
runners never observe a torn entry.

Corrupt entries (undecodable bytes, invalid JSON, wrong schema, broken
document shape) are **quarantined**, not silently re-counted as misses:
the file is moved to ``<root>/corrupt/<experiment>/<key>.json`` for
forensics, the detection is tallied on the cache's in-memory stat delta
(drained into the persisted ``_stats.json`` counters by the runner) and
the read behaves as a miss so the entry is recomputed.  A file that
simply vanished (raced ``unlink``) stays a plain miss.

The cache root defaults to ``$REPRO_CACHE_DIR`` when set, else
``~/.cache/dvafs-repro``.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

from ..analysis.sweep import SweepResult
from ..faults import fault_point

#: Bumped when the on-disk entry layout changes; part of every cache key.
SCHEMA_VERSION = 1

#: Sidecar directory (under a store root) corrupt entries are moved into.
QUARANTINE_DIRNAME = "corrupt"


def quarantine_entry(root: Path, path: Path) -> Path | None:
    """Move a corrupt entry under ``<root>/corrupt/``; ``None`` if it raced away.

    The move is a single ``os.replace`` on the same filesystem, so a
    concurrent reader either sees the (corrupt) entry or a miss -- never a
    half-moved file.  Losing the race (another process quarantined or
    unlinked it first) is fine: the entry is gone either way.
    """
    destination = root / QUARANTINE_DIRNAME / path.parent.name / path.name
    try:
        destination.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, destination)
    except OSError:
        return None
    return destination


def quarantine_summary(root: Path) -> dict[str, int]:
    """Entry count and byte total of a store's quarantine sidecar."""
    quarantine = Path(root) / QUARANTINE_DIRNAME
    entries = 0
    size = 0
    if quarantine.is_dir():
        for path in quarantine.rglob("*"):
            try:
                if path.is_file():
                    entries += 1
                    size += path.stat().st_size
            except OSError:  # pragma: no cover - raced deletion
                continue
    return {"entries": entries, "bytes": size}


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/dvafs-repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "dvafs-repro"


def cache_key(experiment: str, canonical_params_json: str, fingerprint: str) -> str:
    """Content address of one run: experiment + canonical params + code."""
    blob = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "experiment": experiment,
            "params": canonical_params_json,
            "fingerprint": fingerprint,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class CacheEntry:
    """One cached run: rows plus the provenance needed to trust/replay them."""

    experiment: str
    params: dict[str, object]
    fingerprint: str
    result: SweepResult
    elapsed_seconds: float
    provenance: dict[str, object] = field(default_factory=dict)

    @property
    def rows(self) -> list[dict[str, object]]:
        return self.result.records

    def to_document(self) -> dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "experiment": self.experiment,
            "params": self.params,
            "fingerprint": self.fingerprint,
            "elapsed_seconds": self.elapsed_seconds,
            "provenance": self.provenance,
            "result": {"records": self.result.to_jsonable()},
        }

    @classmethod
    def from_document(cls, document: Mapping[str, object]) -> "CacheEntry":
        return cls(
            experiment=str(document["experiment"]),
            params=dict(document["params"]),
            fingerprint=str(document["fingerprint"]),
            result=SweepResult.from_jsonable(document["result"]["records"]),
            elapsed_seconds=float(document["elapsed_seconds"]),
            provenance=dict(document.get("provenance", {})),
        )


def run_provenance() -> dict[str, object]:
    """Environment metadata recorded next to every cached result."""
    import numpy

    from .. import __version__

    return {
        "created_unix": round(time.time(), 3),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro": __version__,
    }


class ResultCache:
    """Content-addressed store of experiment results under one root directory."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_cache_root()
        #: Corruption/quarantine tallies since the last :meth:`drain_stats`;
        #: the runner drains them into the persisted ``_stats.json``.
        self.recent_corrupt = 0
        self.recent_quarantined = 0

    def drain_stats(self) -> tuple[int, int]:
        """``(corrupt, quarantined)`` tallied since the last drain; resets."""
        drained = (self.recent_corrupt, self.recent_quarantined)
        self.recent_corrupt = 0
        self.recent_quarantined = 0
        return drained

    @staticmethod
    def _check_experiment_name(experiment: str) -> str:
        """Experiment names are single path components -- never traversal."""
        if Path(experiment).name != experiment or experiment in ("", ".", ".."):
            raise ValueError(f"invalid experiment name {experiment!r}")
        return experiment

    def _path(self, experiment: str, key: str) -> Path:
        return self.root / self._check_experiment_name(experiment) / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Record + move one corrupt entry (read path behaves as a miss)."""
        self.recent_corrupt += 1
        if quarantine_entry(self.root, path) is not None:
            self.recent_quarantined += 1

    def get(self, experiment: str, key: str) -> CacheEntry | None:
        """The stored entry, or ``None`` on a miss.

        Corrupt entries (any readable file that fails to parse into a
        current-schema document) are quarantined so they stop being
        re-read on every probe and stay inspectable; the caller simply
        sees a miss and recomputes.
        """
        path = self._path(experiment, key)
        try:
            blob = path.read_bytes()
        except OSError:  # missing or unreadable: a plain miss, not corruption
            return None
        try:
            document = json.loads(blob)
        except ValueError:  # non-UTF-8 bytes or invalid JSON
            self._quarantine(path)
            return None
        if not isinstance(document, dict) or document.get("schema") != SCHEMA_VERSION:
            self._quarantine(path)
            return None
        try:
            return CacheEntry.from_document(document)
        except (KeyError, TypeError, ValueError, AttributeError):
            self._quarantine(path)
            return None

    def put(self, key: str, entry: CacheEntry) -> Path:
        """Atomically persist one entry; returns its path."""
        path = self._path(entry.experiment, key)
        fault_point("cache.write", key=entry.experiment)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = json.dumps(entry.to_document(), indent=1)
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                handle.write(document)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        fault_point("cache.written", key=entry.experiment, path=path)
        return path

    def entries(self, experiment: str | None = None) -> Iterator[tuple[str, Path]]:
        """(key, path) pairs of stored entries, sorted for stable listings."""
        if experiment is not None:
            self._check_experiment_name(experiment)
        if not self.root.is_dir():
            return
        directories = (
            [self.root / experiment]
            if experiment is not None
            else sorted(child for child in self.root.iterdir() if child.is_dir())
        )
        for directory in directories:
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*.json")):
                yield path.stem, path

    def ls(self, experiment: str | None = None) -> list[dict[str, object]]:
        """Metadata summary of stored entries (no row payloads)."""
        listing = []
        for key, path in self.entries(experiment):
            try:
                document = json.loads(path.read_text())
            except (OSError, ValueError):
                document = {}
            if not isinstance(document, dict):
                document = {}
            result = document.get("result")
            records = result.get("records", []) if isinstance(result, dict) else []
            provenance = document.get("provenance")
            if not isinstance(provenance, dict):
                provenance = {}
            listing.append(
                {
                    "experiment": document.get("experiment", path.parent.name),
                    "key": key,
                    "rows": len(records) if isinstance(records, list) else 0,
                    "elapsed_seconds": document.get("elapsed_seconds"),
                    "created_unix": provenance.get("created_unix"),
                    "size_bytes": path.stat().st_size if path.is_file() else 0,
                }
            )
        return listing

    def clear(self, experiment: str | None = None) -> int:
        """Delete stored entries (optionally of one experiment); returns count."""
        removed = 0
        for _key, path in list(self.entries(experiment)):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - raced deletion
                pass
        return removed
