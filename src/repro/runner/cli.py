"""``python -m repro`` -- the unified reproduction command line.

Subcommands
-----------
``run``     execute experiments (cache-aware, ``--jobs N`` fans cold runs
            out over processes); export rows as JSON/CSV, write a timing
            summary with ``--timing-json``
``report``  print the driver-formatted tables (from cache when warm)
``sweep``   Cartesian grid over one experiment's parameters, each cell a
            cache-aware run; rows are tagged with their grid coordinates
``serve``   the HTTP/JSON service over the same runner (``repro.api.serve``)
``cache``   ``ls`` / ``clear`` / ``stats`` over the content-addressed result
            cache and artifact store (``clear`` resets the hit/miss counters)
``store``   ``serve`` a store root over TCP so a fleet of runners can share
            one cache (clients connect via ``--store-url``/``$REPRO_STORE_URL``)
``list``    show registered experiments and their parameter schemas

The CLI is a thin renderer over :mod:`repro.api`, so validation and the
error taxonomy are shared with the HTTP service.  Exit codes are stable:
2 for usage errors (argparse included), 3 for parameter/experiment
validation failures, 4 for execution failures.

This replaces the per-driver ``if __name__ == "__main__"`` entry points;
``python -m repro.experiments.fig4`` still works and routes here.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import time
from pathlib import Path

from ..analysis.reporting import format_table, to_csv
from .artifacts import ArtifactStore, load_stats, reset_stats
from .cache import ResultCache, default_cache_root, quarantine_summary
from .errors import ExecutionError, ParamError, ReproError, UnknownExperimentError
from .registry import ExperimentSpec
from .service import ExperimentRunner, RunReport

#: Stable exit codes (usage errors / validation failures / execution failures).
USAGE_EXIT, VALIDATION_EXIT, EXECUTION_EXIT = 2, 3, 4


class CliError(SystemExit):
    """A clean CLI failure: carries the message *and* a stable exit code.

    Subclasses :class:`SystemExit` so ``pytest.raises(SystemExit,
    match=...)`` keeps matching the message text, while ``__main__``
    prints it and exits with :attr:`code`.
    """

    def __init__(self, message: str, *, code: int = USAGE_EXIT):
        super().__init__(code)
        self.message = message

    def __str__(self) -> str:
        return self.message


def _api():
    """The facade, imported late so ``repro.runner`` can finish initialising."""
    from .. import api

    return api


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result-cache root (default: $REPRO_CACHE_DIR or ~/.cache/dvafs-repro)",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help=(
            "result-cache size budget in bytes; least-recently-used entries are "
            "evicted past it (default: $REPRO_CACHE_MAX_BYTES, else unbounded; "
            "the artifact store has its own $REPRO_ARTIFACTS_MAX_BYTES budget)"
        ),
    )
    parser.add_argument(
        "--store-url",
        metavar="URL",
        default=None,
        help=(
            "shared networked store server (tcp://host:port; default: $REPRO_STORE_URL); "
            "both stores tier onto it write-through and degrade to local disk when it "
            "is unreachable"
        ),
    )


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "targets",
        nargs="*",
        default=["all"],
        metavar="EXPERIMENT",
        help="experiment names, or 'all' (default)",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N", help="worker processes for cold runs")
    parser.add_argument("--no-cache", action="store_true", help="always recompute; do not read or write the cache")
    parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="parameter override (repeatable; single experiment target only)",
    )
    _add_policy_arguments(parser)
    _add_cache_arguments(parser)


def _add_policy_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-unit wall-clock budget for parallel workers (default: unbounded)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retries per unit after a worker crash/timeout (default: 2)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and figures through the cached experiment runner.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="execute experiments and export their rows")
    _add_run_arguments(run_parser)
    output_format = run_parser.add_mutually_exclusive_group()
    output_format.add_argument("--json", action="store_true", help="emit run reports as JSON")
    output_format.add_argument("--csv", action="store_true", help="emit rows as CSV")
    run_parser.add_argument("--out", metavar="DIR", default=None, help="write one rows file per experiment into DIR")
    run_parser.add_argument(
        "--timing-json", metavar="PATH", default=None, help="write per-experiment timing/cache summary JSON"
    )

    report_parser = subparsers.add_parser("report", help="print the formatted tables")
    _add_run_arguments(report_parser)

    sweep_parser = subparsers.add_parser("sweep", help="grid-sweep one experiment's parameters")
    sweep_parser.add_argument("experiment", metavar="EXPERIMENT")
    sweep_parser.add_argument(
        "--grid",
        action="append",
        required=True,
        metavar="KEY=V1,V2,...",
        help="swept parameter values (repeatable; grid = Cartesian product)",
    )
    sweep_parser.add_argument("--param", action="append", default=[], metavar="KEY=VALUE", help="fixed override")
    sweep_parser.add_argument("--jobs", type=int, default=1, metavar="N")
    sweep_parser.add_argument("--no-cache", action="store_true")
    _add_policy_arguments(sweep_parser)
    sweep_format = sweep_parser.add_mutually_exclusive_group()
    sweep_format.add_argument("--json", action="store_true")
    sweep_format.add_argument("--csv", action="store_true")
    sweep_parser.add_argument("--out", metavar="PATH", default=None, help="write sweep records to PATH")
    _add_cache_arguments(sweep_parser)

    serve_parser = subparsers.add_parser("serve", help="serve the reproduction over HTTP (JSON API)")
    serve_parser.add_argument("--host", default="127.0.0.1", metavar="HOST", help="bind address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8080, metavar="PORT", help="bind port (default 8080)")
    serve_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="worker processes available to background jobs"
    )
    serve_parser.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        metavar="R",
        help="requests/second allowed per client (0 = unlimited)",
    )
    serve_parser.add_argument(
        "--rate-burst", type=int, default=None, metavar="N", help="rate-limiter burst capacity (default 2*R)"
    )
    serve_parser.add_argument(
        "--max-queue",
        type=int,
        default=64,
        metavar="N",
        help="max queued+running jobs before submissions are shed with 503 (default 64)",
    )
    serve_parser.add_argument(
        "--drain-seconds",
        type=float,
        default=10.0,
        metavar="S",
        help="how long shutdown waits for in-flight jobs (default 10)",
    )
    serve_parser.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="job-journal directory (default: <cache root>/jobs)",
    )
    _add_cache_arguments(serve_parser)

    cache_parser = subparsers.add_parser("cache", help="inspect/clear the result cache and artifact store")
    cache_subparsers = cache_parser.add_subparsers(dest="cache_command", required=True)
    cache_ls = cache_subparsers.add_parser("ls", help="list cached entries")
    _add_cache_arguments(cache_ls)
    cache_clear = cache_subparsers.add_parser(
        "clear", help="delete cached entries (and reset the hit/miss counters)"
    )
    cache_clear.add_argument("--experiment", default=None, metavar="EXPERIMENT", help="only this experiment's entries")
    _add_cache_arguments(cache_clear)
    cache_stats = cache_subparsers.add_parser(
        "stats", help="entry counts, bytes and hit/miss counters since the last clear"
    )
    cache_stats.add_argument("--json", action="store_true", help="emit the summary as JSON")
    _add_cache_arguments(cache_stats)

    store_parser = subparsers.add_parser(
        "store", help="the shared networked store (server side of --store-url)"
    )
    store_subparsers = store_parser.add_subparsers(dest="store_command", required=True)
    store_serve = store_subparsers.add_parser(
        "serve", help="serve a store root over TCP for a fleet of runners"
    )
    store_serve.add_argument(
        "--host", default="127.0.0.1", metavar="HOST", help="bind address (default 127.0.0.1)"
    )
    store_serve.add_argument(
        "--port", type=int, default=8484, metavar="PORT", help="bind port (default 8484; 0 = ephemeral)"
    )
    store_serve.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="store root directory to serve (default: <cache root>/store)",
    )
    store_serve.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="byte budget per served store; LRU entries are evicted past it (default: unbounded)",
    )

    subparsers.add_parser("list", help="list experiments and their parameters")
    return parser


def _make_runner(args: argparse.Namespace) -> ExperimentRunner:
    # Delegates to the facade so --store-url / $REPRO_STORE_URL tiering is
    # wired exactly the way library users and the HTTP service get it.
    return _api().make_runner(
        cache_dir=getattr(args, "cache_dir", None),
        use_cache=not getattr(args, "no_cache", False),
        cache_max_bytes=getattr(args, "cache_max_bytes", None),
        store_url=getattr(args, "store_url", None),
    )


def _resolve_targets(runner: ExperimentRunner, targets: list[str]) -> list[str]:
    if targets == ["all"] or targets == []:
        return list(runner.registry)
    for name in targets:
        runner.spec(name)  # raises UnknownExperimentError -> exit 3
    return targets


def _parse_pairs(pairs: list[str], *, what: str) -> dict[str, str]:
    parsed: dict[str, str] = {}
    for pair in pairs:
        key, separator, value = pair.partition("=")
        if not separator or not key:
            raise CliError(f"error: {what} {pair!r} is not KEY=VALUE")
        parsed[key] = value
    return parsed


def _typed_overrides(spec: ExperimentSpec, pairs: list[str]) -> dict[str, object]:
    parse_param = _api().parse_param
    return {
        key: parse_param(spec, key, text)
        for key, text in _parse_pairs(pairs, what="--param").items()
    }


def _collect_reports(runner: ExperimentRunner, args: argparse.Namespace) -> list[RunReport]:
    targets = _resolve_targets(runner, args.targets)
    if args.param and len(targets) != 1:
        raise CliError("error: --param requires exactly one experiment target")
    if getattr(args, "csv", False) and not args.out and len(targets) != 1:
        raise CliError("error: --csv to stdout requires exactly one experiment (or use --out DIR)")
    overrides = _typed_overrides(runner.spec(targets[0]), args.param) if args.param else {}
    return _api().run_all(
        targets,
        overrides or None,
        runner=runner,
        jobs=args.jobs,
        timeout=getattr(args, "timeout", None),
        retries=getattr(args, "retries", None),
    )


def _write_timing_json(path: str, reports: list[RunReport], *, jobs: int, total_seconds: float) -> None:
    summary = {
        "total_seconds": round(total_seconds, 4),
        "jobs": jobs,
        "experiments": {
            report.name: {
                "elapsed_seconds": round(report.elapsed_seconds, 4),
                "compute_seconds": round(report.compute_seconds, 4),
                "cached": report.cached,
                "rows": len(report.rows),
                "key": report.key,
                "fingerprint": report.fingerprint,
            }
            for report in reports
        },
    }
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(json.dumps(summary, indent=1))


def _command_run(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    start = time.perf_counter()
    reports = _collect_reports(runner, args)
    total_seconds = time.perf_counter() - start
    if args.timing_json:
        _write_timing_json(args.timing_json, reports, jobs=args.jobs, total_seconds=total_seconds)
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        extension = "csv" if args.csv else "json"
        for report in reports:
            payload = to_csv(report.rows) if args.csv else report.result.to_json(indent=1)
            (out_dir / f"{report.name}.{extension}").write_text(payload)
    elif args.json:
        # The same document the HTTP service serves for a warm hit, so the
        # two entry points can be diffed byte-for-byte (rows and all).
        print(json.dumps({report.name: report.to_jsonable() for report in reports}, indent=1))
    elif args.csv:
        sys.stdout.write(to_csv(reports[0].rows))  # single target enforced up front
    summary_rows = [
        {
            "experiment": report.name,
            "rows": len(report.rows),
            "cached": report.cached,
            "elapsed_s": round(report.elapsed_seconds, 3),
            "key": (report.key or "-")[:12],
        }
        for report in reports
    ]
    summary_title = f"run summary ({total_seconds:.2f}s wall, jobs={args.jobs})"
    print(format_table(summary_rows, title=summary_title), file=sys.stderr)
    return 0


def _command_report(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    reports = _collect_reports(runner, args)
    print("\n".join(runner.render(report) for report in reports))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    api = _api()
    runner = _make_runner(args)
    spec = runner.spec(args.experiment)
    grid: dict[str, list[object]] = {}
    for key, text in _parse_pairs(args.grid, what="--grid").items():
        if key in spec.params and spec.params[key].type is tuple:
            raise CliError(
                f"error: tuple-typed parameter {key!r} cannot be grid-swept from the CLI",
                code=VALIDATION_EXIT,
            )
        values = [api.parse_param(spec, key, part) for part in text.split(",") if part.strip()]
        if not values:
            raise CliError(f"error: --grid {key}= names no values")
        grid[key] = values
    fixed = _typed_overrides(spec, args.param)
    outcome = api.sweep(
        spec.name,
        grid,
        fixed,
        runner=runner,
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
    )
    records = outcome.records
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(to_csv(records) if args.csv else outcome.result.to_json(indent=1))
    elif args.csv:
        sys.stdout.write(to_csv(records))
    elif args.json:
        print(json.dumps(outcome.to_jsonable(), indent=1))
    else:
        print(format_table(records, title=f"sweep {spec.name}: {' x '.join(grid)}"))
    print(
        f"{len(outcome.assignments)} grid cells ({outcome.cached_cells} cached), {len(records)} records",
        file=sys.stderr,
    )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    return _api().serve(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_bytes,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        max_queue=args.max_queue,
        drain_seconds=args.drain_seconds,
        state_dir=args.state_dir,
        store_url=args.store_url,
    )


def _command_store(args: argparse.Namespace) -> int:
    from .netstore import serve_store

    root = Path(args.root) if args.root else default_cache_root() / "store"
    return serve_store(host=args.host, port=args.port, root=root, max_bytes=args.max_bytes)


def _cache_stats_summary(
    cache: ResultCache, store: ArtifactStore, *, store_url: str | None = None
) -> dict[str, object]:
    """Entry counts, bytes, hit/miss counters and corruption/recovery tallies."""
    result_entries = cache.ls()
    artifact_entries = store.ls()
    counters = load_stats(cache.root)
    remote: dict[str, object] = {
        "hits": counters.remote_hits,
        "errors": counters.remote_errors,
        "breaker_opens": counters.breaker_opens,
    }
    if store_url:
        # Live probe of the shared store (lazy import: local-only commands
        # never load the networked backend).
        from .netstore import RemoteBackend

        probe = RemoteBackend(store_url, retries=0)
        remote["url"] = store_url
        remote["reachable"] = probe.ping() is not None
        probe.close()
    return {
        "cache_root": str(cache.root),
        "results": {
            "entries": len(result_entries),
            "bytes": sum(int(entry["size_bytes"] or 0) for entry in result_entries),
            "hits": counters.result_hits,
            "misses": counters.result_misses,
            "corrupt": counters.result_corrupt,
            "claims": counters.result_claims,
            "claim_waits": counters.result_claim_waits,
            "evictions": counters.result_evictions,
            "evicted_bytes": counters.result_evicted_bytes,
            "quarantine": quarantine_summary(cache.root),
        },
        "artifacts": {
            "entries": len(artifact_entries),
            "bytes": sum(int(entry["size_bytes"] or 0) for entry in artifact_entries),
            "hits": counters.artifact_hits,
            "misses": counters.artifact_misses,
            "corrupt": counters.artifact_corrupt,
            "claims": counters.artifact_claims,
            "claim_waits": counters.artifact_claim_waits,
            "evictions": counters.artifact_evictions,
            "evicted_bytes": counters.artifact_evicted_bytes,
            "quarantine": quarantine_summary(store.root),
        },
        "recovery": {
            "quarantined": counters.quarantined,
            "retried": counters.retried,
            "claim_wait_timeouts": counters.claim_wait_timeouts,
        },
        "remote": remote,
    }


def _command_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
    store = ArtifactStore(cache.root / "artifacts")
    if args.cache_command == "ls":
        listing = cache.ls()
        artifact_listing = store.ls()
        if not listing and not artifact_listing:
            print(f"(cache empty at {cache.root})")
            return 0
        if listing:
            print(format_table(listing, title=f"result cache at {cache.root}"))
        if artifact_listing:
            print(format_table(artifact_listing, title=f"artifact store at {store.root}"))
        return 0
    if args.cache_command == "stats":
        summary = _cache_stats_summary(cache, store, store_url=getattr(args, "store_url", None))
        if args.json:
            print(json.dumps(summary, indent=1))
            return 0
        rows = [
            {
                "store": name,
                "entries": section["entries"],
                "bytes": section["bytes"],
                "hits": section["hits"],
                "misses": section["misses"],
                "claims": section["claims"],
                "waits": section["claim_waits"],
                "evicted": section["evictions"],
                "corrupt": section["corrupt"],
                "quarantined": section["quarantine"]["entries"],
            }
            for name, section in (("results", summary["results"]), ("artifacts", summary["artifacts"]))
        ]
        print(format_table(rows, title=f"cache stats at {cache.root} (counters since last clear)"))
        recovery = summary["recovery"]
        print(
            f"recovery: {recovery['retried']} unit retr{'y' if recovery['retried'] == 1 else 'ies'}, "
            f"{recovery['quarantined']} quarantined entr{'y' if recovery['quarantined'] == 1 else 'ies'}, "
            f"{recovery['claim_wait_timeouts']} claim-wait timeout(s)",
            file=sys.stderr,
        )
        remote = summary["remote"]
        print(
            f"remote store: {remote['hits']} hit(s), {remote['errors']} error(s), "
            f"{remote['breaker_opens']} breaker open(s)"
            + (
                f", {remote['url']} {'reachable' if remote.get('reachable') else 'UNREACHABLE'}"
                if "url" in remote
                else ""
            ),
            file=sys.stderr,
        )
        return 0
    try:
        removed = cache.clear(args.experiment)
    except ValueError as error:
        raise CliError(f"error: {error}", code=VALIDATION_EXIT)
    removed_artifacts = 0
    if args.experiment is None:
        # A full clear also empties the artifact store (artifacts are shared
        # across experiments, so a per-experiment clear keeps them), drops
        # both quarantine sidecars and resets the hit/miss counters.
        removed_artifacts = store.clear()
        for root in (cache.root, store.root):
            shutil.rmtree(root / "corrupt", ignore_errors=True)
        reset_stats(cache.root)
    print(
        f"removed {removed} cached result(s) and {removed_artifacts} artifact(s) from {cache.root}"
    )
    return 0


def _command_list(_args: argparse.Namespace) -> int:
    runner = ExperimentRunner(use_cache=False)
    rows = []
    for name, spec in runner.registry.items():
        parameters = ", ".join(
            f"{pname}={spec.params[pname].default!r}" for pname in sorted(spec.params)
        )
        rows.append({"experiment": name, "parameters": parameters or "(none)"})
    print(format_table(rows, title=f"registered experiments (cache root: {default_cache_root()})"))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "report": _command_report,
        "sweep": _command_sweep,
        "serve": _command_serve,
        "cache": _command_cache,
        "store": _command_store,
        "list": _command_list,
    }
    try:
        return handlers[args.command](args)
    except CliError:
        raise
    except (ParamError, UnknownExperimentError) as error:
        raise CliError(f"error: {error}", code=VALIDATION_EXIT) from error
    except ExecutionError as error:
        raise CliError(f"error: {error}", code=EXECUTION_EXIT) from error
    except ReproError as error:  # taxonomy catch-all: treat as execution failure
        raise CliError(f"error: {error}", code=EXECUTION_EXIT) from error


if __name__ == "__main__":  # pragma: no cover
    try:
        raise SystemExit(main())
    except CliError as error:
        print(error, file=sys.stderr)
        raise
