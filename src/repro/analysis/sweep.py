"""Generic parameter-sweep helper used by the experiment drivers."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping


@dataclass
class SweepResult:
    """Outcome of a parameter sweep: one record per parameter combination."""

    records: list[dict[str, object]] = field(default_factory=list)

    def filter(self, **conditions: object) -> "SweepResult":
        """Records matching every ``key=value`` condition."""
        kept = [
            record
            for record in self.records
            if all(record.get(key) == value for key, value in conditions.items())
        ]
        return SweepResult(records=kept)

    def column(self, name: str) -> list[object]:
        """Values of one column across all records."""
        return [record[name] for record in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


def parameter_sweep(
    parameters: Mapping[str, Iterable[object]],
    evaluate: Callable[..., Mapping[str, object]],
) -> SweepResult:
    """Evaluate ``evaluate(**combination)`` over the Cartesian parameter grid.

    Each record contains the swept parameters plus whatever the evaluation
    returns; evaluation outputs win on key collisions.
    """
    names = list(parameters)
    result = SweepResult()
    for combination in itertools.product(*(parameters[name] for name in names)):
        assignment = dict(zip(names, combination))
        outcome = dict(evaluate(**assignment))
        record = {**assignment, **outcome}
        result.records.append(record)
    return result
