"""Generic parameter-sweep helper used by the experiment drivers.

``parameter_sweep`` evaluates a callable over the Cartesian grid of its
parameters.  Since PR 3 the grid can be fanned out over worker processes
(``jobs=N``) through :mod:`repro.runner.executor`; the record order is the
deterministic grid order in both cases, regardless of completion order.
:class:`SweepResult` round-trips through JSON (``to_json``/``from_json``),
which is what the content-addressed result cache stores on disk.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping


def sanitize_value(value: object) -> object:
    """Coerce one cell to a JSON-serialisable python scalar.

    Numpy scalars are unwrapped via ``.item()`` (no numpy import needed);
    tuples become lists, matching what a JSON round-trip would produce, so
    sanitised records compare equal to reloaded ones.
    """
    if value is None or type(value) in (bool, int, float, str):
        return value
    if isinstance(value, (list, tuple)):
        return [sanitize_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): sanitize_value(item) for key, item in value.items()}
    tolist = getattr(value, "tolist", None)
    if callable(tolist):  # numpy scalar -> python scalar; ndarray -> (nested) list
        return sanitize_value(tolist())
    for base in (bool, int, float, str):  # builtin subclass without numpy protocol
        if isinstance(value, base):
            return base(value)
    raise TypeError(f"cannot serialise sweep value of type {type(value).__name__}: {value!r}")


@dataclass
class SweepResult:
    """Outcome of a parameter sweep: one record per parameter combination."""

    records: list[dict[str, object]] = field(default_factory=list)

    def filter(self, **conditions: object) -> "SweepResult":
        """Records matching every ``key=value`` condition."""
        kept = [
            record
            for record in self.records
            if all(record.get(key) == value for key, value in conditions.items())
        ]
        return SweepResult(records=kept)

    def column(self, name: str) -> list[object]:
        """Values of one column across all records."""
        return [record[name] for record in self.records]

    def to_jsonable(self) -> list[dict[str, object]]:
        """Records with every value coerced to a JSON-serialisable scalar."""
        return [
            {str(key): sanitize_value(value) for key, value in record.items()}
            for record in self.records
        ]

    @classmethod
    def from_jsonable(cls, records: Iterable[Mapping[str, object]]) -> "SweepResult":
        """Rebuild a result from :meth:`to_jsonable` output."""
        return cls(records=[dict(record) for record in records])

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialise as a JSON document (used by the result cache on disk)."""
        return json.dumps({"records": self.to_jsonable()}, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        """Inverse of :meth:`to_json`; bit-identical records guaranteed."""
        return cls.from_jsonable(json.loads(text)["records"])

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


def sweep_grid(parameters: Mapping[str, Iterable[object]]) -> list[dict[str, object]]:
    """The Cartesian parameter grid, in deterministic row-major order."""
    names = list(parameters)
    return [
        dict(zip(names, combination))
        for combination in itertools.product(*(parameters[name] for name in names))
    ]


def parameter_sweep(
    parameters: Mapping[str, Iterable[object]],
    evaluate: Callable[..., Mapping[str, object]],
    *,
    jobs: int | None = None,
) -> SweepResult:
    """Evaluate ``evaluate(**combination)`` over the Cartesian parameter grid.

    Each record contains the swept parameters plus whatever the evaluation
    returns; evaluation outputs win on key collisions.  With ``jobs`` > 1 the
    grid is fanned out over a process pool (``evaluate`` must then be a
    picklable module-level callable); the records come back in grid order
    either way.
    """
    if jobs is not None and jobs > 1:
        # Dynamic import: avoids an import cycle AND keeps the executor (whose
        # worker bodies reach the registry and through it every driver) out of
        # the drivers' static fingerprint closures -- editing one experiment
        # must not invalidate the cached results of all the others.
        import importlib

        executor = importlib.import_module("repro.runner.executor")
        return executor.parallel_sweep(parameters, evaluate, jobs=jobs)
    result = SweepResult()
    for assignment in sweep_grid(parameters):
        outcome = dict(evaluate(**assignment))
        result.records.append({**assignment, **outcome})
    return result
