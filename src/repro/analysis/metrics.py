"""Accuracy and efficiency metrics used throughout the experiments.

* RMSE / SNR of approximate arithmetic streams (Fig. 3b x-axis),
* relative classification accuracy of quantised networks (the "99 % relative
  accuracy" criterion of Fig. 6),
* TOPS/W-style efficiency figures for the processor models (Fig. 8,
  Table III).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def rmse(reference: np.ndarray, approximate: np.ndarray) -> float:
    """Root-mean-square error between two arrays of equal shape."""
    reference = np.asarray(reference, dtype=np.float64)
    approximate = np.asarray(approximate, dtype=np.float64)
    if reference.shape != approximate.shape:
        raise ValueError("arrays must have the same shape")
    if reference.size == 0:
        raise ValueError("arrays must be non-empty")
    return float(np.sqrt(np.mean((reference - approximate) ** 2)))


def relative_rmse(reference: np.ndarray, approximate: np.ndarray, *, full_scale: float) -> float:
    """RMSE normalised to a full-scale value (the paper's RMSE axis)."""
    if full_scale <= 0:
        raise ValueError("full_scale must be positive")
    return rmse(reference, approximate) / full_scale


def snr_db(reference: np.ndarray, approximate: np.ndarray) -> float:
    """Signal-to-noise ratio of an approximation, in dB.

    Returns ``inf`` for an exact match.
    """
    reference = np.asarray(reference, dtype=np.float64)
    approximate = np.asarray(approximate, dtype=np.float64)
    noise_power = float(np.mean((reference - approximate) ** 2))
    signal_power = float(np.mean(reference**2))
    if signal_power <= 0:
        raise ValueError("reference signal has zero power")
    if noise_power == 0:
        return math.inf
    return 10.0 * math.log10(signal_power / noise_power)


def top1_agreement(reference_logits: np.ndarray, approximate_logits: np.ndarray) -> float:
    """Fraction of samples whose arg-max class is unchanged by approximation.

    Both arrays are ``(samples, classes)``.  This is the relative-accuracy
    proxy used for the networks we cannot train on their original datasets.
    """
    reference_logits = np.asarray(reference_logits, dtype=np.float64)
    approximate_logits = np.asarray(approximate_logits, dtype=np.float64)
    if reference_logits.shape != approximate_logits.shape:
        raise ValueError("logit arrays must have the same shape")
    if reference_logits.ndim != 2:
        raise ValueError("logit arrays must be 2-D (samples, classes)")
    return float(
        np.mean(np.argmax(reference_logits, axis=1) == np.argmax(approximate_logits, axis=1))
    )


def classification_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of ``logits`` against integer ``labels``."""
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError("logits must be 2-D (samples, classes)")
    if labels.shape[0] != logits.shape[0]:
        raise ValueError("labels and logits must cover the same samples")
    return float(np.mean(np.argmax(logits, axis=1) == labels))


def relative_accuracy(baseline_accuracy: float, quantized_accuracy: float) -> float:
    """Quantised accuracy relative to the full-precision baseline (0..1+)."""
    if baseline_accuracy <= 0:
        raise ValueError("baseline_accuracy must be positive")
    return quantized_accuracy / baseline_accuracy


@dataclass(frozen=True)
class EfficiencyReport:
    """Throughput / power / efficiency of a processor operating point.

    Attributes
    ----------
    effective_gops:
        Achieved operations per second, in GOPS (MACs count as 2 ops, as in
        the paper's 0.73 x 256 x 2 x f accounting).
    power_mw:
        Total power in milliwatts.
    """

    effective_gops: float
    power_mw: float

    @property
    def tops_per_watt(self) -> float:
        """Energy efficiency in TOPS/W."""
        if self.power_mw <= 0:
            raise ValueError("power must be positive")
        return self.effective_gops / self.power_mw

    @property
    def energy_per_op_pj(self) -> float:
        """Energy per operation in picojoules."""
        if self.effective_gops <= 0:
            raise ValueError("effective_gops must be positive")
        return self.power_mw / self.effective_gops


def tops_per_watt(effective_gops: float, power_mw: float) -> float:
    """Convenience wrapper: GOPS and mW to TOPS/W."""
    return EfficiencyReport(effective_gops=effective_gops, power_mw=power_mw).tops_per_watt
