"""Plain-text table / CSV rendering of experiment results.

Every experiment driver in :mod:`repro.experiments` produces its data as a
list of dictionaries (one per table row or curve point); these helpers turn
that into the aligned ASCII tables printed by the benchmark harness and into
CSV/JSON documents for further processing.  Keeping the formatting here means
the experiment modules stay purely computational -- and because every helper
takes plain row dictionaries, rows replayed from the result cache render
through exactly the same code as freshly computed ones.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, Mapping, Sequence

from .sweep import SweepResult


def format_value(value: object, *, precision: int = 3) -> str:
    """Render one cell: floats rounded, everything else via ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Format dictionaries as an aligned ASCII table.

    Parameters
    ----------
    rows:
        Table rows; missing keys render as empty cells.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional title printed above the table.
    precision:
        Significant digits used for floats.
    """
    if not rows:
        return (title + "\n(empty)\n") if title else "(empty)\n"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [format_value(row.get(column, ""), precision=precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), max(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in rendered:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines) + "\n"


def to_csv(rows: Sequence[Mapping[str, object]], *, columns: Sequence[str] | None = None) -> str:
    """Serialise rows as CSV text."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({column: row.get(column, "") for column in columns})
    return buffer.getvalue()


def write_csv(path: str, rows: Sequence[Mapping[str, object]], *, columns: Sequence[str] | None = None) -> None:
    """Write rows to ``path`` as CSV."""
    with open(path, "w", newline="") as handle:
        handle.write(to_csv(rows, columns=columns))


def to_json(rows: Sequence[Mapping[str, object]], *, indent: int | None = None) -> str:
    """Serialise rows as the same JSON document the result cache stores.

    Round-trips bit-identically through ``json.loads(...)["records"]`` /
    :meth:`repro.analysis.sweep.SweepResult.from_json`.
    """
    return SweepResult(records=[dict(row) for row in rows]).to_json(indent=indent)


def curve_to_rows(
    xs: Iterable[float], ys: Iterable[float], *, x_name: str = "x", y_name: str = "y"
) -> list[dict[str, float]]:
    """Zip two series into row dictionaries (for figure-style outputs)."""
    rows = [{x_name: float(x), y_name: float(y)} for x, y in zip(xs, ys)]
    return rows
