"""Analysis utilities: metrics, parameter sweeps and result reporting."""

from .metrics import (
    EfficiencyReport,
    classification_accuracy,
    relative_accuracy,
    relative_rmse,
    rmse,
    snr_db,
    top1_agreement,
    tops_per_watt,
)
from .reporting import curve_to_rows, format_table, format_value, to_csv, to_json, write_csv
from .sweep import SweepResult, parameter_sweep, sweep_grid

__all__ = [
    "EfficiencyReport",
    "classification_accuracy",
    "relative_accuracy",
    "relative_rmse",
    "rmse",
    "snr_db",
    "top1_agreement",
    "tops_per_watt",
    "curve_to_rows",
    "format_table",
    "format_value",
    "to_csv",
    "to_json",
    "write_csv",
    "SweepResult",
    "parameter_sweep",
    "sweep_grid",
]
