"""Power model of the Envision chip.

The model decomposes the chip's nominal 300 mW (1 x 16 b, 200 MHz, 1.1 V,
dense 5 x 5 CONV layer, 73 % MAC efficiency) into four components and scales
each with the run-time knobs DVAFS exposes:

===============  ========  ========================================================
component        fraction  scaling
===============  ========  ========================================================
MAC array        0.50      activity / k0 (1 x modes) or / k3 (subword, per cycle),
                           times the sparsity-guarding factor, supply V_as
accumulation &   0.17      activity ~ sqrt(precision / 16) (narrower adds/routing),
operand routing            supply V_as
on-chip SRAM     0.21      active bits per access (precision / 16 in 1 x modes,
                           full word in subword modes), sparsity compression,
                           supply V_nas
control & fetch  0.12      constant activity, supply V_nas
===============  ========  ========================================================

The fractions are a documented modelling assumption (Envision's paper does
not publish a component breakdown); they are chosen so the relative gains of
Fig. 8 (2.4x DAS, 3.8x DVAS, ~7x / 17x DVAFS at 4 b) are reproduced.  The
per-precision ``k`` factors default to the paper's Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.power_model import PAPER_TABLE_I, ScalingParameters
from .modes import NOMINAL_FREQUENCY_MHZ, NOMINAL_VOLTAGE

#: Measured Envision reference point: 300 mW at 1 x 16 b, 200 MHz, 1.1 V.
REFERENCE_POWER_MW = 300.0

#: Component fractions of the reference power.
COMPONENT_FRACTIONS = {
    "mac_array": 0.50,
    "accumulation": 0.17,
    "memory": 0.21,
    "control": 0.12,
}

#: Fraction of a guarded MAC's energy that is actually saved (clock/data
#: gating is not perfect).
GUARD_EFFECTIVENESS = 0.95

#: Fraction of memory traffic removed per unit of input sparsity (the
#: compressed/skipped accesses of the sparsity scheme [12]).
MEMORY_COMPRESSION_EFFECTIVENESS = 0.85


def interpolate_scaling(
    table: dict[int, ScalingParameters], precision: float, field: str
) -> float:
    """Log-linearly interpolate a ``k`` factor for an arbitrary precision.

    Envision gates unused bits *within* a mode (a layer quantised to 9 bits
    running in the 1 x 16 b mode still saves DAS-style activity), so the
    activity factors are needed at precisions between the characterised
    4 / 8 / 12 / 16 b points.  Values outside the table range are clamped.
    """
    import math

    if not table:
        raise ValueError("scaling table is empty")
    points = sorted(table)
    precision = min(max(precision, points[0]), points[-1])
    for low, high in zip(points, points[1:]):
        if low <= precision <= high:
            k_low = getattr(table[low], field)
            k_high = getattr(table[high], field)
            if high == low:
                return k_low
            weight = (precision - low) / (high - low)
            return math.exp(
                (1.0 - weight) * math.log(k_low) + weight * math.log(k_high)
            )
    return getattr(table[points[-1]], field)


@dataclass(frozen=True)
class EnvisionPowerBreakdown:
    """Per-component power of one Envision operating condition (mW)."""

    mac_array_mw: float
    accumulation_mw: float
    memory_mw: float
    control_mw: float

    @property
    def total_mw(self) -> float:
        """Total chip power (mW)."""
        return self.mac_array_mw + self.accumulation_mw + self.memory_mw + self.control_mw

    def fractions(self) -> dict[str, float]:
        """Fractional split per component."""
        total = self.total_mw
        if total <= 0:
            return {name: 0.0 for name in COMPONENT_FRACTIONS}
        return {
            "mac_array": self.mac_array_mw / total,
            "accumulation": self.accumulation_mw / total,
            "memory": self.memory_mw / total,
            "control": self.control_mw / total,
        }


class EnvisionPowerModel:
    """Analytical Envision power model.

    Parameters
    ----------
    scaling_table:
        Per-precision k factors; defaults to the paper's Table I.
    reference_power_mw:
        Chip power at the 1 x 16 b / 200 MHz / 1.1 V reference point.
    fractions:
        Component split of the reference power.
    """

    def __init__(
        self,
        *,
        scaling_table: dict[int, ScalingParameters] | None = None,
        reference_power_mw: float = REFERENCE_POWER_MW,
        fractions: dict[str, float] | None = None,
    ):
        if reference_power_mw <= 0:
            raise ValueError("reference_power_mw must be positive")
        self.scaling_table = dict(scaling_table or PAPER_TABLE_I)
        self.reference_power_mw = reference_power_mw
        self.fractions = dict(fractions or COMPONENT_FRACTIONS)
        total = sum(self.fractions.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"component fractions must sum to 1, got {total}")

    def scaling_for(self, precision: int) -> ScalingParameters:
        """Scaling parameters for ``precision`` (must be in the table)."""
        try:
            return self.scaling_table[precision]
        except KeyError as exc:
            known = sorted(self.scaling_table)
            raise KeyError(
                f"no scaling parameters for {precision} bits; known: {known}"
            ) from exc

    def power(
        self,
        *,
        precision: int,
        parallelism: int,
        frequency_mhz: float,
        as_voltage: float,
        nas_voltage: float,
        technique: str = "DVAFS",
        weight_sparsity: float = 0.0,
        input_sparsity: float = 0.0,
        actual_precision: float | None = None,
    ) -> EnvisionPowerBreakdown:
        """Chip power at an arbitrary operating condition.

        ``technique`` selects the activity-scaling rule of the MAC array:
        DAS/DVAS modes keep one word per MAC (activity / k0), the DVAFS
        subword modes share the array between ``parallelism`` words per cycle
        (activity / k3).  ``actual_precision`` is the precision the layer is
        quantised to, which may be lower than the mode's ``precision`` --
        the unused bits are still gated DAS-style inside the mode.
        """
        technique = technique.upper()
        if technique not in ("DAS", "DVAS", "DVAFS"):
            raise ValueError(f"unknown technique {technique!r}")
        if not 0.0 <= weight_sparsity <= 1.0 or not 0.0 <= input_sparsity <= 1.0:
            raise ValueError("sparsities must be in [0, 1]")
        if parallelism < 1:
            raise ValueError("parallelism must be at least 1")
        actual = float(precision if actual_precision is None else actual_precision)
        if actual > precision:
            raise ValueError("actual_precision cannot exceed the mode precision")

        guard_rate = 1.0 - (1.0 - weight_sparsity) * (1.0 - input_sparsity)
        guard_factor = 1.0 - GUARD_EFFECTIVENESS * guard_rate

        if technique == "DVAFS" and parallelism > 1:
            mac_activity = guard_factor / interpolate_scaling(self.scaling_table, actual, "k3")
            memory_bits_factor = 1.0
        else:
            mac_activity = guard_factor / interpolate_scaling(self.scaling_table, actual, "k0")
            memory_bits_factor = actual / 16.0
        accumulation_activity = guard_factor * (actual / 16.0) ** 0.5
        memory_activity = memory_bits_factor * (
            1.0 - MEMORY_COMPRESSION_EFFECTIVENESS * input_sparsity
        )

        frequency_factor = frequency_mhz / NOMINAL_FREQUENCY_MHZ
        as_scale = (as_voltage / NOMINAL_VOLTAGE) ** 2
        nas_scale = (nas_voltage / NOMINAL_VOLTAGE) ** 2

        reference = self.reference_power_mw
        mac = reference * self.fractions["mac_array"] * mac_activity * frequency_factor * as_scale
        accumulation = (
            reference
            * self.fractions["accumulation"]
            * accumulation_activity
            * frequency_factor
            * as_scale
        )
        memory = (
            reference * self.fractions["memory"] * memory_activity * frequency_factor * nas_scale
        )
        control = reference * self.fractions["control"] * frequency_factor * nas_scale
        return EnvisionPowerBreakdown(
            mac_array_mw=mac,
            accumulation_mw=accumulation,
            memory_mw=memory,
            control_mw=control,
        )
