"""Operating modes of the Envision CNN processor.

Envision supports 1 x 16 b, 2 x 8 b and 4 x 4 b subword modes.  Two schedules
are used in the paper's Fig. 8:

* **constant frequency** (200 MHz): throughput grows with N, the core supply
  drops only as far as the (shared) 200 MHz timing of the control logic
  allows;
* **constant throughput** (76 GOPS): the clock is divided by N, letting the
  whole chip scale to the low supplies listed in Table III (0.80 V at
  2 x 8 b, 0.65 V at 4 x 4 b).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.operating_point import OperatingPoint

#: Nominal Envision clock in MHz.
NOMINAL_FREQUENCY_MHZ = 200.0
#: Nominal core supply in volts.
NOMINAL_VOLTAGE = 1.1


@dataclass(frozen=True)
class EnvisionMode:
    """One DVAFS mode of the Envision chip.

    Attributes
    ----------
    precision:
        Bits per subword (16, 8 or 4).
    parallelism:
        Subwords per MAC per cycle (1, 2 or 4).
    constant_throughput_frequency_mhz / constant_throughput_voltage:
        Operating point when throughput is held at the 16 b nominal
        (76 GOPS): frequency divided by N, supply from Table III.
    constant_frequency_voltage:
        Core supply when the clock stays at 200 MHz (the nas timing path
        limits how far it can drop).
    """

    precision: int
    parallelism: int
    constant_throughput_frequency_mhz: float
    constant_throughput_voltage: float
    constant_frequency_voltage: float

    @property
    def label(self) -> str:
        """Mode label in the paper's notation (``"4x4b"``)."""
        return f"{self.parallelism}x{self.precision}b"

    def operating_point(self, *, constant_throughput: bool = True) -> OperatingPoint:
        """The mode as a generic :class:`~repro.core.operating_point.OperatingPoint`."""
        if constant_throughput:
            frequency = self.constant_throughput_frequency_mhz
            voltage = self.constant_throughput_voltage
        else:
            frequency = NOMINAL_FREQUENCY_MHZ
            voltage = self.constant_frequency_voltage
        return OperatingPoint(
            precision=self.precision,
            parallelism=self.parallelism,
            frequency_mhz=frequency,
            as_voltage=voltage,
            nas_voltage=voltage if constant_throughput else max(voltage, 1.03),
            technique="DVAFS",
        )


#: The three Envision modes with the supplies reported in Table III
#: (1.03 V at 1 x 16 b / 200 MHz, 0.80 V at 2 x 8 b / 100 MHz, 0.65 V at
#: 4 x 4 b / 50 MHz) and the constant-frequency supplies implied by Fig. 8a.
ENVISION_MODES: dict[int, EnvisionMode] = {
    16: EnvisionMode(
        precision=16,
        parallelism=1,
        constant_throughput_frequency_mhz=200.0,
        constant_throughput_voltage=1.03,
        constant_frequency_voltage=1.03,
    ),
    8: EnvisionMode(
        precision=8,
        parallelism=2,
        constant_throughput_frequency_mhz=100.0,
        constant_throughput_voltage=0.80,
        constant_frequency_voltage=0.95,
    ),
    4: EnvisionMode(
        precision=4,
        parallelism=4,
        constant_throughput_frequency_mhz=50.0,
        constant_throughput_voltage=0.65,
        constant_frequency_voltage=0.90,
    ),
}


def mode_for_precision(required_bits: int) -> EnvisionMode:
    """Smallest Envision mode offering at least ``required_bits`` of precision.

    This is the per-layer mode-selection rule behind Table III: a layer
    needing 5 bits runs in the 2 x 8 b mode, a layer needing 9 bits in the
    1 x 16 b mode.
    """
    if required_bits < 1:
        raise ValueError("required_bits must be positive")
    for precision in sorted(ENVISION_MODES):
        if precision >= required_bits:
            return ENVISION_MODES[precision]
    raise ValueError(
        f"no Envision mode supports {required_bits} bits (maximum is 16)"
    )
