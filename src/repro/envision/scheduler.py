"""Per-layer DVAFS scheduling of CNN workloads on Envision (Table III).

The scheduler combines three ingredients:

* the layer workloads (MACs per frame) from the CNN substrate,
* the per-layer precision requirements (weight / activation bits) from the
  quantisation search -- or the published profiles of the paper,
* the per-layer weight / input sparsities,

and maps every layer onto the Envision mode table, producing the rows of
Table III: mode, frequency, voltage, precisions, sparsities, MMACs/frame,
power and efficiency, plus the frame-level totals the paper quotes
(2 TOPS/W for VGG16, 1.8 TOPS/W for AlexNet, 3 TOPS/W for LeNet-5).
"""

from __future__ import annotations

from dataclasses import dataclass

from .chip import EnvisionChip, LayerExecution


@dataclass(frozen=True)
class LayerWorkload:
    """Everything the scheduler needs to know about one CNN layer."""

    name: str
    macs: int
    weight_bits: int
    activation_bits: int
    weight_sparsity: float = 0.0
    input_sparsity: float = 0.0

    def __post_init__(self) -> None:
        if self.macs < 0:
            raise ValueError("macs must be non-negative")
        if self.weight_bits < 1 or self.activation_bits < 1:
            raise ValueError("precisions must be positive")
        for value in (self.weight_sparsity, self.input_sparsity):
            if not 0.0 <= value <= 1.0:
                raise ValueError("sparsities must be in [0, 1]")


@dataclass(frozen=True)
class NetworkSchedule:
    """Result of scheduling a full network on Envision."""

    network: str
    layers: list[LayerExecution]

    @property
    def total_energy_uj(self) -> float:
        """Total energy per frame (uJ)."""
        return sum(layer.energy_uj for layer in self.layers)

    @property
    def total_time_ms(self) -> float:
        """Total latency per frame (ms)."""
        return sum(layer.time_ms for layer in self.layers)

    @property
    def total_macs(self) -> int:
        """Total MACs per frame."""
        return sum(layer.macs for layer in self.layers)

    @property
    def average_power_mw(self) -> float:
        """Time-weighted average power over the frame (mW)."""
        if self.total_time_ms <= 0:
            return 0.0
        return self.total_energy_uj / self.total_time_ms

    @property
    def frames_per_second(self) -> float:
        """Achievable frame rate."""
        if self.total_time_ms <= 0:
            return float("inf")
        return 1000.0 / self.total_time_ms

    @property
    def tops_per_watt(self) -> float:
        """Frame-level efficiency (2 ops per MAC)."""
        if self.total_energy_uj <= 0:
            return float("inf")
        operations = 2.0 * self.total_macs
        # uJ and ops -> TOPS/W == ops / (energy in pJ) * 1e-0 ... work in pJ.
        return operations / (self.total_energy_uj * 1e6)


class EnvisionScheduler:
    """Maps CNN layer workloads onto Envision operating modes."""

    def __init__(self, chip: EnvisionChip | None = None):
        self.chip = chip or EnvisionChip()

    def schedule_layer(
        self, workload: LayerWorkload, *, constant_throughput: bool = True
    ) -> LayerExecution:
        """Pick the mode for one layer and estimate its execution."""
        return self.chip.run_layer(
            name=workload.name,
            macs=workload.macs,
            weight_bits=workload.weight_bits,
            activation_bits=workload.activation_bits,
            weight_sparsity=workload.weight_sparsity,
            input_sparsity=workload.input_sparsity,
            constant_throughput=constant_throughput,
        )

    def schedule_network(
        self,
        name: str,
        workloads: list[LayerWorkload],
        *,
        constant_throughput: bool = True,
    ) -> NetworkSchedule:
        """Schedule every layer of a network (per-layer DVAFS reconfiguration)."""
        if not workloads:
            raise ValueError("at least one layer workload is required")
        executions = [
            self.schedule_layer(workload, constant_throughput=constant_throughput)
            for workload in workloads
        ]
        return NetworkSchedule(network=name, layers=executions)

    def schedule_uniform(
        self,
        name: str,
        workloads: list[LayerWorkload],
        *,
        constant_throughput: bool = True,
    ) -> NetworkSchedule:
        """Schedule with a single network-wide precision (the non-adaptive baseline).

        Every layer runs at the worst-case precision requirement of the
        network; comparing against :meth:`schedule_network` quantifies the
        benefit of per-layer precision scaling.
        """
        if not workloads:
            raise ValueError("at least one layer workload is required")
        weight_bits = max(workload.weight_bits for workload in workloads)
        activation_bits = max(workload.activation_bits for workload in workloads)
        pinned = [
            LayerWorkload(
                name=workload.name,
                macs=workload.macs,
                weight_bits=weight_bits,
                activation_bits=activation_bits,
                weight_sparsity=workload.weight_sparsity,
                input_sparsity=workload.input_sparsity,
            )
            for workload in workloads
        ]
        return self.schedule_network(name, pinned, constant_throughput=constant_throughput)


#: Published per-layer settings of Table III, usable without running the
#: quantisation search: (layer, MMACs, weight bits, activation bits,
#: weight sparsity, input sparsity).  VGG2-13 and AlexNet4-5 are kept as
#: grouped entries exactly as the paper prints them, with their aggregate
#: MAC counts.
PAPER_TABLE_III_WORKLOADS: dict[str, list[LayerWorkload]] = {
    "VGG16": [
        LayerWorkload("VGG1", 87_000_000, 5, 4, 0.05, 0.10),
        LayerWorkload("VGG2-13", 15_259_000_000, 5, 6, 0.50, 0.56),
    ],
    "AlexNet": [
        LayerWorkload("AlexNet1", 104_000_000, 7, 4, 0.21, 0.29),
        LayerWorkload("AlexNet2", 224_000_000, 7, 7, 0.19, 0.89),
        LayerWorkload("AlexNet3", 150_000_000, 8, 9, 0.11, 0.82),
        LayerWorkload("AlexNet4-5", 188_000_000, 9, 8, 0.04, 0.72),
    ],
    "LeNet-5": [
        LayerWorkload("LeNet1", 300_000, 3, 1, 0.35, 0.87),
        LayerWorkload("LeNet2", 1_600_000, 4, 6, 0.26, 0.55),
    ],
}
