"""Top-level model of the Envision DVAFS CNN processor.

Envision (ISSCC 2017, [11] in the paper) is a 28 nm FDSOI C-programmable CNN
processor with 256 16-bit MAC units, 132 kB of on-chip data memory and 16 kB
of program memory.  At 200 MHz it peaks at 102 GOPS in the 1 x 16 b mode and
408 GOPS in the 4 x 4 b mode; the sustained MAC efficiency on convolutional
layers is about 73 %.

:class:`EnvisionChip` combines the mode table, the power model and the MAC
array geometry into per-layer execution estimates (cycles, time, power,
energy, TOPS/W) -- the quantities reported in Fig. 8 and Table III.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import EfficiencyReport
from .modes import ENVISION_MODES, EnvisionMode, NOMINAL_FREQUENCY_MHZ, mode_for_precision
from .power import EnvisionPowerModel


@dataclass(frozen=True)
class EnvisionSpecs:
    """Published specifications of the Envision chip."""

    mac_units: int = 256
    word_bits: int = 16
    nominal_frequency_mhz: float = NOMINAL_FREQUENCY_MHZ
    data_memory_kb: int = 132
    program_memory_kb: int = 16
    mac_efficiency: float = 0.73
    technology: str = "28nm-FDSOI"

    def peak_gops(self, parallelism: int = 1, frequency_mhz: float | None = None) -> float:
        """Peak throughput in GOPS (a MAC counts as two operations)."""
        frequency = self.nominal_frequency_mhz if frequency_mhz is None else frequency_mhz
        return 2.0 * self.mac_units * parallelism * frequency * 1e-3

    def effective_gops(self, parallelism: int = 1, frequency_mhz: float | None = None) -> float:
        """Sustained throughput at the typical 73 % MAC efficiency."""
        return self.mac_efficiency * self.peak_gops(parallelism, frequency_mhz)


@dataclass(frozen=True)
class LayerExecution:
    """Execution estimate of one CNN layer on Envision.

    Energies in microjoules, times in milliseconds, power in milliwatts.
    """

    layer: str
    mode_label: str
    technique: str
    frequency_mhz: float
    voltage: float
    weight_bits: int
    activation_bits: int
    weight_sparsity: float
    input_sparsity: float
    macs: int
    cycles: float
    time_ms: float
    power_mw: float
    energy_uj: float
    tops_per_watt: float

    @property
    def mmacs(self) -> float:
        """MAC count in millions (Table III unit)."""
        return self.macs / 1e6


class EnvisionChip:
    """Envision processor model.

    Parameters
    ----------
    specs:
        Chip geometry and efficiency figures.
    power_model:
        Component-level power model (defaults to the calibrated one).
    """

    def __init__(
        self,
        *,
        specs: EnvisionSpecs | None = None,
        power_model: EnvisionPowerModel | None = None,
    ):
        self.specs = specs or EnvisionSpecs()
        self.power_model = power_model or EnvisionPowerModel()

    # -- modes ----------------------------------------------------------------

    def available_modes(self) -> list[EnvisionMode]:
        """The 1 x 16 b, 2 x 8 b and 4 x 4 b modes."""
        return [ENVISION_MODES[precision] for precision in sorted(ENVISION_MODES, reverse=True)]

    def select_mode(self, weight_bits: int, activation_bits: int) -> EnvisionMode:
        """Smallest mode covering both the weight and activation precision."""
        return mode_for_precision(max(weight_bits, activation_bits))

    # -- per-layer execution ---------------------------------------------------

    def run_layer(
        self,
        *,
        name: str,
        macs: int,
        weight_bits: int,
        activation_bits: int,
        weight_sparsity: float = 0.0,
        input_sparsity: float = 0.0,
        constant_throughput: bool = True,
        technique: str = "DVAFS",
    ) -> LayerExecution:
        """Estimate the execution of one layer.

        ``constant_throughput`` selects between the Fig. 8b schedule (clock
        divided by N, lowest supplies) and the Fig. 8a schedule (200 MHz).
        ``technique`` allows evaluating the same layer under DAS or DVAS for
        the comparison curves.
        """
        if macs < 0:
            raise ValueError("macs must be non-negative")
        technique = technique.upper()
        mode = self.select_mode(weight_bits, activation_bits)
        point = mode.operating_point(constant_throughput=constant_throughput)
        if technique in ("DAS", "DVAS"):
            # DAS/DVAS keep one word per MAC at the nominal clock; DVAS lowers
            # only the arithmetic supply (approximated by the mode's
            # constant-frequency voltage).
            parallelism = 1
            frequency = self.specs.nominal_frequency_mhz
            as_voltage = 1.1 if technique == "DAS" else mode.constant_frequency_voltage
            nas_voltage = 1.1
        else:
            parallelism = mode.parallelism
            frequency = point.frequency_mhz
            as_voltage = point.as_voltage
            nas_voltage = point.nas_voltage

        breakdown = self.power_model.power(
            precision=mode.precision,
            parallelism=parallelism,
            frequency_mhz=frequency,
            as_voltage=as_voltage,
            nas_voltage=nas_voltage,
            technique=technique,
            weight_sparsity=weight_sparsity,
            input_sparsity=input_sparsity,
            actual_precision=max(weight_bits, activation_bits),
        )
        power_mw = breakdown.total_mw

        macs_per_cycle = self.specs.mac_units * parallelism * self.specs.mac_efficiency
        cycles = macs / macs_per_cycle if macs else 0.0
        time_ms = cycles / (frequency * 1e3) if frequency > 0 else 0.0
        energy_uj = power_mw * time_ms
        effective_gops = self.specs.effective_gops(parallelism, frequency)
        efficiency = EfficiencyReport(effective_gops=effective_gops, power_mw=power_mw)

        return LayerExecution(
            layer=name,
            mode_label=f"{parallelism}x{mode.precision}b",
            technique=technique,
            frequency_mhz=frequency,
            voltage=as_voltage,
            weight_bits=weight_bits,
            activation_bits=activation_bits,
            weight_sparsity=weight_sparsity,
            input_sparsity=input_sparsity,
            macs=macs,
            cycles=cycles,
            time_ms=time_ms,
            power_mw=power_mw,
            energy_uj=energy_uj,
            tops_per_watt=efficiency.tops_per_watt,
        )

    def energy_per_word_curve(
        self, *, constant_throughput: bool, techniques: tuple[str, ...] = ("DAS", "DVAS", "DVAFS")
    ) -> list[dict[str, float]]:
        """Relative energy/operation vs. precision for Fig. 8a / 8b.

        Uses a dense (sparsity-free) 5 x 5 CONV workload, like the paper's
        measurement, and normalises to the 1 x 16 b point of each schedule.
        """
        reference_macs = 10_000_000
        rows: list[dict[str, float]] = []
        baseline_energy: float | None = None
        for technique in techniques:
            for precision in sorted(ENVISION_MODES, reverse=True):
                execution = self.run_layer(
                    name=f"{technique}-{precision}b",
                    macs=reference_macs,
                    weight_bits=precision,
                    activation_bits=precision,
                    constant_throughput=constant_throughput,
                    technique=technique,
                )
                energy_per_op = execution.energy_uj / (2 * reference_macs)
                if baseline_energy is None:
                    baseline_energy = energy_per_op
                rows.append(
                    {
                        "technique": technique,
                        "precision": precision,
                        "power_mw": execution.power_mw,
                        "tops_per_watt": execution.tops_per_watt,
                        "relative_energy_per_word": energy_per_op / baseline_energy,
                    }
                )
        return rows
