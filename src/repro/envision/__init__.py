"""Envision CNN-processor model (Section V of the paper)."""

from .chip import EnvisionChip, EnvisionSpecs, LayerExecution
from .modes import ENVISION_MODES, EnvisionMode, mode_for_precision
from .power import (
    COMPONENT_FRACTIONS,
    EnvisionPowerBreakdown,
    EnvisionPowerModel,
    REFERENCE_POWER_MW,
)
from .scheduler import (
    EnvisionScheduler,
    LayerWorkload,
    NetworkSchedule,
    PAPER_TABLE_III_WORKLOADS,
)

__all__ = [
    "EnvisionChip",
    "EnvisionSpecs",
    "LayerExecution",
    "ENVISION_MODES",
    "EnvisionMode",
    "mode_for_precision",
    "COMPONENT_FRACTIONS",
    "EnvisionPowerBreakdown",
    "EnvisionPowerModel",
    "REFERENCE_POWER_MW",
    "EnvisionScheduler",
    "LayerWorkload",
    "NetworkSchedule",
    "PAPER_TABLE_III_WORKLOADS",
]
