"""Deterministic fault injection for the execution and serving layers.

The north-star system has to *prove* its failure handling, not wait for
production to exercise it: every recovery path (worker crash, hung unit,
corrupt store entry, disk-full write, overloaded service) is driven on
demand by injecting the fault at a named **injection site** and asserting
the documented recovery.  This module is that harness.

Activation
----------
Faults are specified as text -- via the ``REPRO_FAULTS`` environment
variable (so worker processes forked/spawned by the executor inherit the
plan) or the :func:`injected` context manager (which sets the same
variable around a scope)::

    REPRO_FAULTS="executor.unit:kill:match=fig4:times=1"
    REPRO_FAULTS="cache.write:disk_full;executor.unit:hang:seconds=30:match=table1"

Each ``;``-separated clause is ``site:kind[:option=value ...]`` where
``kind`` is one of:

``exc``
    raise :class:`FaultInjected` at the site;
``kill``
    ``SIGKILL`` the current process (a worker dying mid-unit).  In the
    main process the kill degrades to :class:`FaultInjected` so a
    misconfigured plan can never take the orchestrator/test runner down;
``hang``
    sleep ``seconds`` (default 60) -- exercises wall-clock timeouts;
``slow``
    sleep ``seconds`` (default 0.1) and continue -- latency injection;
``disk_full``
    raise ``OSError(ENOSPC)`` -- a full disk at a store write;
``corrupt``
    overwrite/truncate the bytes of the file the site is about to trust
    (sites that manage an on-disk entry pass its path).

Options: ``times=N`` fires at most N times (default 1), ``at=N`` fires
only on the N-th invocation of the site in this process (1-based),
``match=SUBSTRING`` fires only when the site's key (experiment name,
artifact name, job id ...) contains the substring, ``seconds=S`` the
sleep for ``hang``/``slow``.

Determinism
-----------
A plan is deterministic by construction: it fires on named sites filtered
by ``match``/``at``, never on randomness.  ``times`` budgets are enforced
per *process* by default; point ``REPRO_FAULTS_STATE`` at a directory and
the budget becomes global across every process sharing it (claimed via
``O_CREAT|O_EXCL`` ticket files), which is what "kill exactly one worker
mid-wave, then let the retry succeed" needs.

Sites
-----
``executor.pool`` (pool spawn), ``executor.unit`` (experiment worker
body, key = experiment name), ``executor.artifact`` (artifact producer
body, key = artifact name), ``executor.sweep`` (sweep cell body),
``cache.write`` / ``cache.written`` (result-cache put, before/after the
atomic replace; ``cache.written`` carries the entry path for
``corrupt``), ``artifact.write`` / ``artifact.written`` (artifact-store
put), ``cache.claim`` / ``artifact.claim`` (fired just after winning a
first-writer-wins fill claim, key = experiment/artifact name -- ``kill``
here is the claim winner dying mid-fill; losers must take over),
``cache.evict`` / ``artifact.evict`` (fired per entry before LRU
eviction deletes it, key = ``namespace/filename``), ``service.job``
(job thread, key = job id), ``net.connect`` / ``net.send`` / ``net.recv``
(client side of the networked store, around the socket operations of one
request; key = protocol op name -- an ``exc``/``hang`` here behaves like
a partition/black-holed server and must be absorbed by the client's
retries, breaker and tiered degradation), ``net.server`` (store server,
per request before dispatch; key = op name -- an ``exc`` tears the
connection like a crashed server).

With ``REPRO_FAULTS`` unset every :func:`fault_point` is a cheap no-op.
"""

from __future__ import annotations

import contextlib
import errno
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

#: Environment variables the plan travels through (workers inherit them).
ENV_SPEC = "REPRO_FAULTS"
ENV_STATE = "REPRO_FAULTS_STATE"

#: Every fault kind a clause may name.
KINDS = ("exc", "kill", "hang", "slow", "disk_full", "corrupt")

_DEFAULT_SECONDS = {"hang": 60.0, "slow": 0.1}


class FaultInjected(RuntimeError):
    """The exception raised by ``exc`` faults (and main-process ``kill``)."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed clause of a fault plan."""

    site: str
    kind: str
    times: int = 1
    at: int | None = None
    seconds: float | None = None
    match: str | None = None

    def clause(self) -> str:
        """The textual clause this spec round-trips to."""
        parts = [self.site, self.kind]
        if self.times != 1:
            parts.append(f"times={self.times}")
        if self.at is not None:
            parts.append(f"at={self.at}")
        if self.seconds is not None:
            parts.append(f"seconds={self.seconds:g}")
        if self.match is not None:
            parts.append(f"match={self.match}")
        return ":".join(parts)


def parse_faults(text: str) -> tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` value; raises ``ValueError`` on bad syntax."""
    specs: list[FaultSpec] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        if len(parts) < 2 or not parts[0]:
            raise ValueError(f"fault clause {clause!r} is not 'site:kind[:option=value]'")
        site, kind = parts[0], parts[1]
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; known: {', '.join(KINDS)}")
        options: dict[str, str] = {}
        for part in parts[2:]:
            name, separator, value = part.partition("=")
            if not separator or not name:
                raise ValueError(f"fault option {part!r} is not 'name=value'")
            options[name] = value
        try:
            spec = FaultSpec(
                site=site,
                kind=kind,
                times=int(options.pop("times", 1)),
                at=int(options.pop("at")) if "at" in options else None,
                seconds=float(options.pop("seconds")) if "seconds" in options else None,
                match=options.pop("match", None),
            )
        except ValueError as error:
            raise ValueError(f"fault clause {clause!r}: {error}") from None
        if options:
            raise ValueError(
                f"fault clause {clause!r} has unknown option(s) {sorted(options)};"
                " accepted: times, at, seconds, match"
            )
        if spec.times < 1:
            raise ValueError(f"fault clause {clause!r}: times must be >= 1")
        specs.append(spec)
    return tuple(specs)


def corrupt_file(path: Path | str) -> None:
    """Bytes-level corruption: garbage header + truncation to half size.

    Defeats both JSON and pickle parsers while leaving the file present,
    which is exactly the shape store quarantine has to handle (a missing
    file is a plain miss, not corruption).
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.write(b"\xde\xad\xbe\xef")
            handle.truncate(max(4, size // 2))
    except OSError:
        pass  # the entry raced away; nothing left to corrupt


def _perform(spec: FaultSpec) -> None:
    if spec.kind == "exc":
        raise FaultInjected(f"injected fault at {spec.site}")
    if spec.kind == "kill":
        if multiprocessing.current_process().name == "MainProcess":
            # Killing the orchestrating process would take the harness (or
            # the test runner) down with it; degrade to an exception.
            raise FaultInjected(f"injected kill at {spec.site} (main process; raised instead)")
        os.kill(os.getpid(), signal.SIGKILL)
    if spec.kind in ("hang", "slow"):
        time.sleep(spec.seconds if spec.seconds is not None else _DEFAULT_SECONDS[spec.kind])
        return
    if spec.kind == "disk_full":
        raise OSError(errno.ENOSPC, f"injected disk-full at {spec.site}")


class FaultPlan:
    """Parsed specs plus the per-process / shared firing state."""

    def __init__(self, specs: tuple[FaultSpec, ...], state_dir: Path | str | None = None):
        self.specs = specs
        self.state_dir = Path(state_dir) if state_dir else None
        self._seen: dict[str, int] = {}  # site -> invocation count (this process)
        self._fired: dict[int, int] = {}  # spec index -> times fired (this process)

    def _claim(self, index: int, spec: FaultSpec) -> bool:
        """One ticket from the spec's ``times`` budget, or ``False`` when spent.

        With a state directory the budget is shared across processes:
        ticket files are claimed with ``O_CREAT | O_EXCL``, so exactly one
        process wins each ticket no matter how many race for it.
        """
        if self.state_dir is not None:
            try:
                self.state_dir.mkdir(parents=True, exist_ok=True)
            except OSError:
                return False
            for ticket in range(spec.times):
                token = self.state_dir / f"fault-{index}-{ticket}.fired"
                try:
                    descriptor = os.open(str(token), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    continue
                except OSError:
                    return False
                os.write(descriptor, f"{os.getpid()} {spec.clause()}\n".encode())
                os.close(descriptor)
                return True
            return False
        fired = self._fired.get(index, 0)
        if fired >= spec.times:
            return False
        self._fired[index] = fired + 1
        return True

    def fire(self, site: str, key: str | None = None, path: Path | str | None = None) -> None:
        """Run every matching spec's action for one site invocation."""
        count = self._seen[site] = self._seen.get(site, 0) + 1
        for index, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            if spec.match is not None and (key is None or spec.match not in key):
                continue
            if spec.at is not None and count != spec.at:
                continue
            if not self._claim(index, spec):
                continue
            if spec.kind == "corrupt":
                if path is not None:
                    corrupt_file(path)
                continue
            _perform(spec)


_PLAN: FaultPlan | None = None
_PLAN_SOURCE: tuple[str, str] | None = None


def active_plan() -> FaultPlan | None:
    """The plan ``REPRO_FAULTS`` describes, re-parsed whenever the env changes."""
    global _PLAN, _PLAN_SOURCE
    source = (os.environ.get(ENV_SPEC, ""), os.environ.get(ENV_STATE, ""))
    if source != _PLAN_SOURCE:
        _PLAN = FaultPlan(parse_faults(source[0]), source[1] or None) if source[0] else None
        _PLAN_SOURCE = source
    return _PLAN


def fault_point(site: str, key: object = None, path: Path | str | None = None) -> None:
    """Declare an injection site; a no-op unless an active plan matches it."""
    plan = active_plan()
    if plan is not None:
        plan.fire(site, str(key) if key is not None else None, path)


@contextlib.contextmanager
def injected(spec: str, *, state_dir: Path | str | None = None):
    """Activate ``spec`` for this scope -- and, via the env, for child workers.

    ``state_dir`` (when given) makes ``times`` budgets global across the
    processes sharing it; tests point it at a temp directory so "kill one
    worker, exactly once" stays exactly once through the retry.
    """
    previous = {name: os.environ.get(name) for name in (ENV_SPEC, ENV_STATE)}
    os.environ[ENV_SPEC] = spec
    if state_dir is not None:
        os.environ[ENV_STATE] = str(state_dir)
    else:
        os.environ.pop(ENV_STATE, None)
    try:
        yield active_plan()
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
