"""Behavioural re-implementations of the approximate-multiplier baselines.

Fig. 3b of the paper compares the DVAFS multiplier against four published
approximate-computing designs:

* **[3] Liu et al., DATE 2014** -- an approximate multiplier whose partial
  products are accumulated with approximate (carry-free) adders, plus a
  configurable number of *error-recovery* stages; a variant with voltage
  scaling ("[3] + VS") is also plotted.
* **[4] Kulkarni et al., VLSID 2011** -- an *underdesigned* multiplier built
  recursively from an inaccurate 2x2 block (3 x 3 = 7).
* **[5] Kyaw et al., EDSSC 2011** -- an *error-tolerant* multiplier that
  multiplies the MSB halves exactly and approximates the LSB contribution.
* **[8] de la Guia Solaz et al., TCAS-I 2012** -- a programmable *truncated*
  multiplier whose truncation column is a run-time knob.

We do not have the authors' silicon, so each scheme is re-implemented
behaviourally: its arithmetic error is *measured* on random operand streams
(that fixes the x-axis of Fig. 3b), and its energy is modelled from the
fraction of the partial-product array it keeps active, together with the
voltage headroom its fixed-frequency operation allows.  The energy axis is
relative to the scheme's own exact implementation, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .fixed_point import signed_range

#: Full-scale value of a signed ``width``-bit operand interpreted as Q1.(w-1).
def _full_scale(width: int) -> float:
    return float(1 << (width - 1))


def measure_relative_rmse(
    multiply: Callable[[int, int], int],
    width: int,
    *,
    samples: int = 2000,
    seed: int = 2017,
) -> float:
    """Relative RMSE of an approximate multiplier over random operands.

    Operands are drawn uniformly over the signed ``width``-bit range and
    interpreted as Q1.(width-1) fractions, so the exact product lies in
    [-1, 1); the returned RMSE is therefore directly comparable with the
    1e-6 .. 1e-2 axis of Fig. 3b.
    """
    rng = np.random.default_rng(seed)
    lo, hi = signed_range(width)
    xs = rng.integers(lo, hi + 1, size=samples)
    ys = rng.integers(lo, hi + 1, size=samples)
    scale = _full_scale(width) ** 2
    errors = np.empty(samples, dtype=np.float64)
    for index, (x, y) in enumerate(zip(xs, ys)):
        exact = int(x) * int(y)
        approx = multiply(int(x), int(y))
        errors[index] = (approx - exact) / scale
    return float(np.sqrt(np.mean(errors**2)))


@dataclass(frozen=True)
class BaselinePoint:
    """One (accuracy, energy) operating point of a baseline scheme.

    Attributes
    ----------
    label:
        Human-readable configuration label (e.g. ``"ETM split=8"``).
    rmse:
        Measured relative RMSE of the configuration.
    relative_energy:
        Energy per multiplication relative to the scheme's exact multiplier.
    runtime_adaptive:
        Whether the configuration can be selected at run time (curve) or is
        fixed at design time (single point per manufactured design).
    """

    label: str
    rmse: float
    relative_energy: float
    runtime_adaptive: bool


# ---------------------------------------------------------------------------
# [4] Kulkarni: underdesigned 2x2 building block
# ---------------------------------------------------------------------------


class KulkarniUnderdesignedMultiplier:
    """Recursive multiplier built from the inaccurate 2x2 block of [4].

    The 2x2 block returns 7 instead of 9 for ``3 x 3`` (saving the third
    output bit and a large share of the block's gates); all other input
    combinations are exact.  Larger multipliers compose four half-width
    multipliers in the usual Karatsuba-free quadratic decomposition.
    """

    name = "[4] Kulkarni underdesigned"
    #: Relative power of the approximate design vs. the exact array
    #: multiplier, per the savings reported in the original paper.
    RELATIVE_ENERGY = 0.62

    def __init__(self, width: int = 16):
        if width < 2 or width & (width - 1):
            raise ValueError("width must be a power of two >= 2")
        self.width = width

    def _multiply_unsigned(self, a: int, b: int, width: int) -> int:
        if width == 2:
            if a == 3 and b == 3:
                return 7
            return a * b
        half = width // 2
        mask = (1 << half) - 1
        a_lo, a_hi = a & mask, a >> half
        b_lo, b_hi = b & mask, b >> half
        return (
            self._multiply_unsigned(a_lo, b_lo, half)
            + (self._multiply_unsigned(a_lo, b_hi, half) << half)
            + (self._multiply_unsigned(a_hi, b_lo, half) << half)
            + (self._multiply_unsigned(a_hi, b_hi, half) << width)
        )

    def multiply(self, x: int, y: int) -> int:
        """Approximate signed product (sign-magnitude around the unsigned core)."""
        sign = -1 if (x < 0) != (y < 0) else 1
        return sign * self._multiply_unsigned(abs(x), abs(y), self.width)

    def design_points(self) -> list[BaselinePoint]:
        """Single fixed design point of the scheme."""
        rmse = measure_relative_rmse(self.multiply, self.width)
        return [
            BaselinePoint(
                label="underdesigned 2x2 blocks",
                rmse=rmse,
                relative_energy=self.RELATIVE_ENERGY,
                runtime_adaptive=False,
            )
        ]


# ---------------------------------------------------------------------------
# [5] Kyaw: error-tolerant multiplier
# ---------------------------------------------------------------------------


class KyawErrorTolerantMultiplier:
    """Error-tolerant multiplier of [5]: exact MSB part, approximate LSB part.

    Operands are split at ``split`` bits: the upper parts are multiplied
    exactly, while the contribution of the lower parts is approximated by a
    string of ones starting at the highest active LSB column (the original
    non-carry "error-tolerant" estimation).  The split position is a design
    time choice, so each split is a separate manufactured design.
    """

    name = "[5] Kyaw error-tolerant"

    def __init__(self, width: int = 16, split: int = 8):
        if not 1 <= split < width:
            raise ValueError("split must be in [1, width)")
        self.width = width
        self.split = split

    def multiply(self, x: int, y: int) -> int:
        """Approximate signed product."""
        sign = -1 if (x < 0) != (y < 0) else 1
        a, b = abs(x), abs(y)
        mask = (1 << self.split) - 1
        a_lo, a_hi = a & mask, a >> self.split
        b_lo, b_hi = b & mask, b >> self.split
        exact_part = (a_hi * b_hi) << (2 * self.split)
        exact_part += ((a_hi * b_lo) + (a_lo * b_hi)) << self.split
        # Error-tolerant estimation of the LSB x LSB contribution: all output
        # bits below the leading active column are set to one.
        combined = a_lo | b_lo
        if combined == 0:
            approx_low = 0
        else:
            leading = combined.bit_length()
            approx_low = (1 << leading) - 1
        return sign * (exact_part + approx_low)

    def relative_energy(self) -> float:
        """Energy vs. the exact multiplier: the LSB x LSB quadrant is removed."""
        active_fraction = 1.0 - (self.split / self.width) ** 2
        return 0.15 + 0.85 * active_fraction

    def design_points(self) -> list[BaselinePoint]:
        """Fixed design points for a few representative split positions."""
        points = []
        for split in (self.width // 4, self.width // 2, (3 * self.width) // 4):
            design = KyawErrorTolerantMultiplier(self.width, split)
            points.append(
                BaselinePoint(
                    label=f"ETM split={split}",
                    rmse=measure_relative_rmse(design.multiply, self.width),
                    relative_energy=design.relative_energy(),
                    runtime_adaptive=False,
                )
            )
        return points


# ---------------------------------------------------------------------------
# [3] Liu: approximate multiplier with configurable partial error recovery
# ---------------------------------------------------------------------------


class LiuPartialErrorRecoveryMultiplier:
    """Approximate multiplier of [3] with configurable error recovery.

    Partial products are accumulated with carry-free (OR-based) approximate
    adders; ``recovery_columns`` most-significant product columns are then
    corrected with exact carry propagation.  More recovery columns means a
    more accurate but more power-hungry design; the choice is fixed at design
    time.  The ``voltage_scaled`` variant models the "[3] + VS" curve of
    Fig. 3b, where the shorter approximate-adder paths are exploited with a
    static supply reduction.
    """

    name = "[3] Liu partial error recovery"

    def __init__(self, width: int = 16, recovery_columns: int = 16, *, voltage_scaled: bool = False):
        if recovery_columns < 0 or recovery_columns > 2 * width:
            raise ValueError("recovery_columns must be in [0, 2*width]")
        self.width = width
        self.recovery_columns = recovery_columns
        self.voltage_scaled = voltage_scaled

    def multiply(self, x: int, y: int) -> int:
        """Approximate signed product."""
        sign = -1 if (x < 0) != (y < 0) else 1
        a, b = abs(x), abs(y)
        product_bits = 2 * self.width
        boundary = product_bits - self.recovery_columns
        boundary = max(0, min(product_bits, boundary))
        low_mask = (1 << boundary) - 1

        # Exact contribution of every partial product above the boundary,
        # approximate (carry-free OR accumulation) below it.
        exact_sum = 0
        approx_or = 0
        for bit in range(self.width):
            if not (b >> bit) & 1:
                continue
            row = a << bit
            exact_sum += row & ~low_mask
            approx_or |= row & low_mask
        return sign * (exact_sum + approx_or)

    def relative_energy(self) -> float:
        """Energy vs. the exact multiplier for this recovery configuration."""
        recovery_fraction = self.recovery_columns / (2 * self.width)
        energy = 0.45 + 0.50 * recovery_fraction
        if self.voltage_scaled:
            # Static supply reduction 1.1 V -> 1.0 V enabled by the shorter
            # carry-free paths.
            energy *= (1.0 / 1.1) ** 2
        return energy

    def design_points(self) -> list[BaselinePoint]:
        """Design points over a range of recovery configurations."""
        points = []
        for columns in (self.width // 2, self.width, (3 * self.width) // 2):
            design = LiuPartialErrorRecoveryMultiplier(
                self.width, columns, voltage_scaled=self.voltage_scaled
            )
            suffix = " + VS" if self.voltage_scaled else ""
            points.append(
                BaselinePoint(
                    label=f"recovery={columns}{suffix}",
                    rmse=measure_relative_rmse(design.multiply, self.width),
                    relative_energy=design.relative_energy(),
                    runtime_adaptive=False,
                )
            )
        return points


# ---------------------------------------------------------------------------
# [8] de la Guia Solaz: programmable truncated multiplier
# ---------------------------------------------------------------------------


class SolazTruncatedMultiplier:
    """Programmable truncated multiplier of [8].

    The truncation column ``t`` is a run-time programmable register: all
    partial-product bits in columns below ``t`` are dropped and a constant
    compensation of half an LSB-column is added.  Because the design keeps
    its frequency and supply fixed, energy only scales with the active
    fraction of the partial-product array and flattens out at the
    non-truncatable overhead -- which is why DVAFS overtakes it at low
    accuracy in Fig. 3b.
    """

    name = "[8] programmable truncation"
    #: Fraction of the multiplier energy that does not scale with truncation
    #: (operand registers, Booth encoders, final adder MSBs, control).
    FIXED_FRACTION = 0.28

    def __init__(self, width: int = 16, truncation_column: int = 0):
        if not 0 <= truncation_column <= 2 * width - 2:
            raise ValueError("truncation_column out of range")
        self.width = width
        self.truncation_column = truncation_column

    def set_truncation(self, column: int) -> None:
        """Program the truncation column (run-time knob)."""
        if not 0 <= column <= 2 * self.width - 2:
            raise ValueError("truncation column out of range")
        self.truncation_column = column

    def multiply(self, x: int, y: int) -> int:
        """Approximate signed product with truncated partial products."""
        sign = -1 if (x < 0) != (y < 0) else 1
        a, b = abs(x), abs(y)
        column = self.truncation_column
        total = 0
        for bit in range(self.width):
            if not (b >> bit) & 1:
                continue
            row = a << bit
            total += row & ~((1 << column) - 1)
        if column > 0:
            # Constant compensation: half of the expected dropped weight.
            total += 1 << (column - 1)
        return sign * total

    def relative_energy(self) -> float:
        """Energy vs. full operation at the current truncation setting."""
        product_bits = 2 * self.width
        active_columns = product_bits - self.truncation_column
        active_fraction = (active_columns / product_bits) ** 2
        return self.FIXED_FRACTION + (1.0 - self.FIXED_FRACTION) * active_fraction

    def design_points(self) -> list[BaselinePoint]:
        """Run-time curve over truncation settings."""
        points = []
        for column in range(0, 2 * self.width - 6, 3):
            self.set_truncation(column)
            points.append(
                BaselinePoint(
                    label=f"truncate<{column}",
                    rmse=measure_relative_rmse(self.multiply, self.width),
                    relative_energy=self.relative_energy(),
                    runtime_adaptive=True,
                )
            )
        return points


def all_baseline_curves(width: int = 16) -> dict[str, list[BaselinePoint]]:
    """Design/operating points of every baseline scheme, keyed by name.

    This is the data behind the comparison curves of Fig. 3b; the DVAFS curve
    itself comes from :mod:`repro.experiments.fig3`.
    """
    liu = LiuPartialErrorRecoveryMultiplier(width)
    liu_vs = LiuPartialErrorRecoveryMultiplier(width, voltage_scaled=True)
    return {
        LiuPartialErrorRecoveryMultiplier.name: liu.design_points(),
        LiuPartialErrorRecoveryMultiplier.name + " + VS": liu_vs.design_points(),
        KulkarniUnderdesignedMultiplier.name: KulkarniUnderdesignedMultiplier(width).design_points(),
        KyawErrorTolerantMultiplier.name: KyawErrorTolerantMultiplier(width).design_points(),
        SolazTruncatedMultiplier.name: SolazTruncatedMultiplier(width).design_points(),
    }
