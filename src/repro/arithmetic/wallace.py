"""Wallace-tree (carry-save) reduction of partial products.

The reduction is simulated row-wise on two's-complement bit patterns: each
level groups the current rows into triples (3:2 full-adder compression) and
pairs (2:2 half-adder compression), producing the next level's rows.  The
bit patterns of every level are returned so the multiplier model can count
switching activity stage by stage, and the number of levels gives the
tree's contribution to the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass


def wallace_levels(rows: int) -> int:
    """Number of 3:2 compression levels needed to reduce ``rows`` rows to 2.

    Follows the Dadda bound sequence 2, 3, 4, 6, 9, 13, 19, 28, ...
    """
    if rows < 1:
        raise ValueError("rows must be at least 1")
    if rows <= 2:
        return 0
    levels = 0
    bound = 2
    bounds = []
    while bound < rows:
        bound = int(bound * 3 / 2)
        bounds.append(bound)
        levels += 1
    return levels


@dataclass
class ReductionLevel:
    """Bit patterns produced by one carry-save compression level.

    Attributes
    ----------
    rows:
        Unsigned bit patterns (masked to the product width) of the rows that
        come out of this level.
    full_adder_bits:
        Number of bit positions compressed with full adders at this level
        (an area/energy proxy for the level).
    half_adder_bits:
        Number of bit positions compressed with half adders.
    """

    rows: list[int]
    full_adder_bits: int
    half_adder_bits: int


@dataclass
class ReductionResult:
    """Complete carry-save reduction trace.

    Attributes
    ----------
    levels:
        Per-level traces, in reduction order.
    sum_row, carry_row:
        The two final rows whose addition yields the product (carry already
        shifted).
    """

    levels: list[ReductionLevel]
    sum_row: int
    carry_row: int

    @property
    def depth(self) -> int:
        """Number of compression levels actually used."""
        return len(self.levels)


def _compress_pair(a: int, b: int, mask: int) -> tuple[int, int]:
    """2:2 (half-adder) carry-save compression of two rows."""
    sum_row = (a ^ b) & mask
    carry_row = ((a & b) << 1) & mask
    return sum_row, carry_row


def _compress_triple(a: int, b: int, c: int, mask: int) -> tuple[int, int]:
    """3:2 (full-adder) carry-save compression of three rows."""
    sum_row = (a ^ b ^ c) & mask
    carry_row = (((a & b) | (a & c) | (b & c)) << 1) & mask
    return sum_row, carry_row


def reduce_rows(rows: list[int], product_bits: int) -> ReductionResult:
    """Carry-save reduce ``rows`` (unsigned patterns) down to two rows.

    The arithmetic is performed modulo ``2**product_bits``; because the true
    product of the operands fits in ``product_bits`` two's-complement bits,
    the modular sum of the two final rows equals the product pattern.
    """
    if product_bits < 1:
        raise ValueError("product_bits must be at least 1")
    mask = (1 << product_bits) - 1
    current = [row & mask for row in rows]
    if not current:
        return ReductionResult(levels=[], sum_row=0, carry_row=0)

    levels: list[ReductionLevel] = []
    while len(current) > 2:
        next_rows: list[int] = []
        full_bits = 0
        half_bits = 0
        index = 0
        while index + 3 <= len(current):
            a, b, c = current[index : index + 3]
            sum_row, carry_row = _compress_triple(a, b, c, mask)
            next_rows.extend([sum_row, carry_row])
            full_bits += product_bits
            index += 3
        remaining = len(current) - index
        if remaining == 2:
            a, b = current[index], current[index + 1]
            sum_row, carry_row = _compress_pair(a, b, mask)
            next_rows.extend([sum_row, carry_row])
            half_bits += product_bits
        elif remaining == 1:
            next_rows.append(current[index])
        levels.append(
            ReductionLevel(rows=next_rows, full_adder_bits=full_bits, half_adder_bits=half_bits)
        )
        current = next_rows

    if len(current) == 1:
        current = [current[0], 0]
    return ReductionResult(levels=levels, sum_row=current[0], carry_row=current[1])
