"""Precision-gated Booth-encoded Wallace-tree multiplier (DAS / DVAS datapath).

This is the structural model behind Section III-A of the paper: a signed
``width x width`` multiplier whose input LSBs can be gated at run time.
Every multiplication is executed stage by stage on real bit patterns --
operand registers, Booth encoding, partial-product generation, carry-save
reduction, final addition -- and the bit flips of every stage are accumulated
as gate-equivalent toggles.  The critical path of each precision mode is
reported in logic levels so that the circuit-level delay model can answer
"what supply does this mode need at 500 MHz?" (Fig. 2b/2c).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuit.delay import CriticalPath
from ..circuit.energy import toggle_energy_pj
from ..circuit.technology import TECH_40NM_LP_LVT, Technology
from .adder import CarryLookaheadModel
from .booth import booth_digit_count, digit_to_code, generate_partial_products
from .fixed_point import (
    from_twos_complement,
    round_lsbs,
    signed_range,
    to_twos_complement,
    truncate_lsbs,
)
from .gates import cell_cost, popcount
from .wallace import reduce_rows, wallace_levels

#: Gate-equivalent weight applied to each toggling bit of a stage.  The
#: Wallace and final-adder weights are per *output bit* of the respective
#: compressor / adder cell.
STAGE_WEIGHTS = {
    "input": cell_cost("register_bit").gate_equivalents,
    "booth_encode": cell_cost("booth_encoder").gate_equivalents,
    "pp_generate": cell_cost("booth_selector").gate_equivalents,
    "wallace": cell_cost("full_adder").gate_equivalents / 2.0,
    "final_adder": cell_cost("cla_stage").gate_equivalents / 2.0,
}


@dataclass
class ActivityReport:
    """Accumulated switching activity of a multiplier (or MAC) stream.

    Attributes
    ----------
    stage_toggles:
        Weighted (gate-equivalent) toggles per pipeline stage.
    words:
        Number of result words produced while accumulating.
    """

    stage_toggles: dict[str, float] = field(default_factory=dict)
    words: int = 0

    def record(self, stage: str, weighted_toggles: float) -> None:
        """Add ``weighted_toggles`` gate-equivalent toggles to ``stage``."""
        if weighted_toggles < 0:
            raise ValueError("weighted_toggles must be non-negative")
        self.stage_toggles[stage] = self.stage_toggles.get(stage, 0.0) + weighted_toggles

    @property
    def total_weighted_toggles(self) -> float:
        """Total gate-equivalent toggles across all stages."""
        return float(sum(self.stage_toggles.values()))

    @property
    def toggles_per_word(self) -> float:
        """Average gate-equivalent toggles per produced word."""
        if self.words <= 0:
            raise ValueError("no words recorded")
        return self.total_weighted_toggles / self.words

    def energy_pj(self, technology: Technology, voltage: float) -> float:
        """Total dynamic energy (pJ) of the stream at ``voltage``."""
        return toggle_energy_pj(technology, self.total_weighted_toggles, voltage)

    def energy_per_word_pj(self, technology: Technology, voltage: float) -> float:
        """Dynamic energy per word (pJ) of the stream at ``voltage``."""
        if self.words <= 0:
            raise ValueError("no words recorded")
        return self.energy_pj(technology, voltage) / self.words

    def merged_with(self, other: "ActivityReport") -> "ActivityReport":
        """Combine two reports (stage-wise sum, words added)."""
        merged = ActivityReport(stage_toggles=dict(self.stage_toggles), words=self.words)
        for stage, toggles in other.stage_toggles.items():
            merged.record(stage, toggles)
        merged.words += other.words
        return merged


class BoothWallaceMultiplier:
    """Signed Booth-Wallace multiplier with run-time precision gating.

    Parameters
    ----------
    width:
        Physical operand width in bits (the paper uses 16).
    technology:
        Technology corner for delay/energy conversion.
    rounding:
        If true, gated operands are rounded to the active precision instead
        of truncated (used by the rounding ablation).
    """

    def __init__(
        self,
        width: int = 16,
        *,
        technology: Technology = TECH_40NM_LP_LVT,
        rounding: bool = False,
    ):
        if width < 4 or width % 2:
            raise ValueError("width must be an even number >= 4")
        self.width = width
        self.technology = technology
        self.rounding = rounding
        self._precision = width
        self._previous: dict[str, object] = {}
        self.activity = ActivityReport()

    # -- configuration ------------------------------------------------------

    @property
    def precision(self) -> int:
        """Currently active number of input bits."""
        return self._precision

    def set_precision(self, bits: int) -> None:
        """Gate the operands down to ``bits`` active MSBs."""
        if not 2 <= bits <= self.width:
            raise ValueError(f"precision must be in [2, {self.width}], got {bits}")
        self._precision = bits

    def reset_activity(self) -> None:
        """Clear accumulated toggles and the toggle baseline."""
        self._previous = {}
        self.activity = ActivityReport()

    def take_activity(self) -> ActivityReport:
        """Return the accumulated activity and start a fresh report.

        Unlike :meth:`reset_activity` this keeps the toggle baseline (the bit
        patterns of the previous operation), so callers that drain activity
        every cycle -- such as the subword-parallel wrapper -- still count
        transitions between consecutive operations correctly.
        """
        report = self.activity
        self.activity = ActivityReport()
        return report

    # -- structure ----------------------------------------------------------

    @property
    def product_bits(self) -> int:
        """Width of the full product."""
        return 2 * self.width

    def partial_product_rows(self, precision: int | None = None) -> int:
        """Number of non-gated Booth partial products at a given precision."""
        precision = self._precision if precision is None else precision
        return booth_digit_count(precision)

    def critical_path_levels(self, precision: int | None = None) -> float:
        """Logic depth (reference levels) of the active path at ``precision``.

        The multi-mode synthesis constraint of the paper guarantees that the
        path through gated logic is never critical, so the active path is the
        one of an equivalent ``precision``-bit multiplier feeding a final
        adder sized for the active product bits.
        """
        precision = self._precision if precision is None else precision
        if not 2 <= precision <= self.width:
            raise ValueError(f"precision must be in [2, {self.width}]")
        rows = booth_digit_count(precision)
        encoder = cell_cost("booth_encoder").logic_levels
        selector = cell_cost("booth_selector").logic_levels
        tree = wallace_levels(rows) * cell_cost("full_adder").logic_levels
        final = CarryLookaheadModel(2 * precision).critical_path_levels
        return encoder + selector + tree + final

    def critical_path(self, precision: int | None = None) -> CriticalPath:
        """Critical path of the mode bound to this multiplier's technology."""
        return CriticalPath(
            logic_levels=self.critical_path_levels(precision), technology=self.technology
        )

    @property
    def gate_equivalents(self) -> float:
        """Area estimate of the full-precision multiplier in gate equivalents."""
        rows = booth_digit_count(self.width)
        encoders = rows * cell_cost("booth_encoder").gate_equivalents
        selectors = rows * self.width * cell_cost("booth_selector").gate_equivalents
        compressors = (
            wallace_levels(rows) * rows * self.width / 2.0
        ) * cell_cost("full_adder").gate_equivalents
        final = CarryLookaheadModel(self.product_bits).gate_equivalents
        registers = 2 * self.width * cell_cost("register_bit").gate_equivalents
        return encoders + selectors + compressors + final + registers

    # -- behaviour ----------------------------------------------------------

    def _gate_operand(self, value: int) -> int:
        if self.rounding:
            return round_lsbs(value, self.width, self._precision)
        return truncate_lsbs(value, self.width, self._precision)

    def _count_pattern(self, stage: str, key: str, patterns: list[int]) -> None:
        previous = self._previous.get(key)
        if previous is None:
            previous = [0] * len(patterns)
        toggles = 0
        for old, new in zip(previous, patterns):
            toggles += popcount(old ^ new)
        # Rows that appear/disappear when the mode changes also toggle.
        longer, shorter = (patterns, previous) if len(patterns) > len(previous) else (previous, patterns)
        for extra in longer[len(shorter) :]:
            toggles += popcount(extra)
        self._previous[key] = list(patterns)
        self.activity.record(stage, toggles * STAGE_WEIGHTS[stage])

    def multiply(self, x: int, y: int) -> int:
        """Multiply two signed operands at the current precision.

        The returned value is the exact product of the *gated* operands, i.e.
        the arithmetic the approximate hardware actually performs.
        """
        lo, hi = signed_range(self.width)
        if not (lo <= x <= hi and lo <= y <= hi):
            raise ValueError(
                f"operands must fit in {self.width} signed bits, got {x}, {y}"
            )
        gated_x = self._gate_operand(x)
        gated_y = self._gate_operand(y)

        # Stage 1: operand registers.
        self._count_pattern(
            "input",
            "input",
            [
                to_twos_complement(gated_x, self.width),
                to_twos_complement(gated_y, self.width),
            ],
        )

        # Stage 2: Booth encoding of the multiplier operand.
        partial_products = generate_partial_products(gated_x, gated_y, self.width)
        digit_codes = [digit_to_code(pp.digit) for pp in partial_products]
        self._count_pattern("booth_encode", "booth", digit_codes)

        # Stage 3: partial-product selection.
        mask = (1 << self.product_bits) - 1
        pp_patterns = [pp.value & mask for pp in partial_products]
        self._count_pattern("pp_generate", "pp", pp_patterns)

        # Stage 4: Wallace (carry-save) reduction.
        reduction = reduce_rows(pp_patterns, self.product_bits)
        for level_index, level in enumerate(reduction.levels):
            self._count_pattern("wallace", f"wallace{level_index}", level.rows)

        # Stage 5: final carry-propagate addition.
        product_pattern = (reduction.sum_row + reduction.carry_row) & mask
        self._count_pattern("final_adder", "final", [product_pattern])

        self.activity.words += 1
        return from_twos_complement(product_pattern, self.product_bits)

    def multiply_stream(
        self, xs: np.ndarray | list[int], ys: np.ndarray | list[int], *, batch: bool = True
    ) -> list[int]:
        """Multiply two equal-length operand streams, accumulating activity.

        With ``batch=True`` (the default) the stream is evaluated by the
        vectorised bit-plane engine of :mod:`repro.arithmetic.batch`, which
        is bit-identical to the scalar walk (same products, same toggle
        accounting, same baseline state) but orders of magnitude faster.
        ``batch=False`` forces the scalar golden-reference path.
        """
        if len(xs) != len(ys):
            raise ValueError("operand streams must have equal length")
        from .batch import MAX_BATCH_WIDTH, batch_multiply

        if batch and self.width <= MAX_BATCH_WIDTH:
            return [int(v) for v in batch_multiply(self, xs, ys).products]
        xs = [int(v) for v in xs]
        ys = [int(v) for v in ys]
        return [self.multiply(x, y) for x, y in zip(xs, ys)]

    def exact_reference(self, x: int, y: int) -> int:
        """Exact full-precision product (for error measurements)."""
        return x * y
