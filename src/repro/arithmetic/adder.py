"""Structural adders: gate-level ripple-carry and a carry-lookahead model.

The ripple-carry adder is built as a true :class:`~repro.arithmetic.gates.Netlist`
of full-adder cells with per-cell toggle counting; it is used by the MAC
accumulator model and by the netlist-level unit tests.  The final adder of
the Booth-Wallace multiplier uses the faster carry-lookahead *cost model*
(logic levels / gate equivalents) because only its activity and depth matter
for the energy analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .fixed_point import from_twos_complement, to_twos_complement
from .gates import Netlist, cell_cost


class RippleCarryAdder:
    """A gate-level ripple-carry adder on ``width``-bit operands.

    The adder is an actual netlist of full-adder cells; every evaluation
    counts toggles, so streaming operands through it yields a switching
    activity estimate exactly as the multiplier models do.
    """

    def __init__(self, width: int):
        if width < 1:
            raise ValueError("width must be at least 1")
        self.width = width
        self.netlist = Netlist()
        for i in range(width):
            self.netlist.add_input(f"a{i}")
            self.netlist.add_input(f"b{i}")
        self.netlist.add_input("cin")
        carry = "cin"
        for i in range(width):
            sum_net = f"s{i}"
            carry_net = f"c{i + 1}"
            self.netlist.add_cell(
                "full_adder", [f"a{i}", f"b{i}", carry], [sum_net, carry_net]
            )
            self.netlist.add_output(sum_net)
            carry = carry_net
        self.netlist.add_output(carry)
        self._carry_out_net = carry

    @property
    def critical_path_levels(self) -> float:
        """Logic depth of the carry chain in reference levels."""
        return self.width * cell_cost("full_adder").logic_levels

    @property
    def gate_equivalents(self) -> float:
        """Total area of the adder in gate equivalents."""
        return self.netlist.gate_equivalents

    def add(self, a: int, b: int, carry_in: int = 0) -> tuple[int, int]:
        """Add two signed ``width``-bit integers.

        Returns ``(sum, carry_out)`` where the sum wraps modulo ``2**width``
        (two's complement) exactly like the hardware would.
        """
        if carry_in not in (0, 1):
            raise ValueError("carry_in must be 0 or 1")
        pa = to_twos_complement(a, self.width)
        pb = to_twos_complement(b, self.width)
        inputs = {"cin": carry_in}
        for i in range(self.width):
            inputs[f"a{i}"] = (pa >> i) & 1
            inputs[f"b{i}"] = (pb >> i) & 1
        outputs = self.netlist.evaluate(inputs)
        pattern = 0
        for i in range(self.width):
            pattern |= outputs[f"s{i}"] << i
        return from_twos_complement(pattern, self.width), outputs[self._carry_out_net]

    @property
    def weighted_toggles(self) -> float:
        """Accumulated gate-equivalent toggles since the last reset."""
        return self.netlist.toggle_counter.weighted_toggles

    def reset_activity(self) -> None:
        """Clear accumulated toggle counts and the toggle baseline."""
        self.netlist.reset_state()


@dataclass(frozen=True)
class CarryLookaheadModel:
    """Cost model of a carry-lookahead final adder of a given width.

    A CLA of width ``w`` has a logic depth of roughly ``log2(w)`` lookahead
    stages plus the propagate/generate and sum stages, and an area of a few
    gate equivalents per bit.
    """

    width: int

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("width must be at least 1")

    @property
    def critical_path_levels(self) -> float:
        """Logic depth of the adder in reference levels."""
        lookahead_stages = max(1.0, math.ceil(math.log2(self.width)))
        return (lookahead_stages + 1.0) * cell_cost("cla_stage").logic_levels

    @property
    def gate_equivalents(self) -> float:
        """Area of the adder in gate equivalents."""
        return self.width * cell_cost("cla_stage").gate_equivalents

    @property
    def gate_equivalents_per_bit(self) -> float:
        """Energy weight per toggling output bit of the adder."""
        return cell_cost("cla_stage").gate_equivalents
