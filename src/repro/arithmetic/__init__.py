"""Arithmetic substrate: fixed point, structural multipliers, MACs, baselines."""

from .adder import CarryLookaheadModel, RippleCarryAdder
from .baselines import (
    BaselinePoint,
    KulkarniUnderdesignedMultiplier,
    KyawErrorTolerantMultiplier,
    LiuPartialErrorRecoveryMultiplier,
    SolazTruncatedMultiplier,
    all_baseline_curves,
    measure_relative_rmse,
)
from .booth import (
    BOOTH_DIGITS,
    PartialProduct,
    booth_decode,
    booth_digit_count,
    booth_recode,
    digit_to_code,
    generate_partial_products,
)
from .fixed_point import (
    FixedPointFormat,
    clamp_signed,
    from_twos_complement,
    pack_subwords,
    quantization_rmse,
    round_lsbs,
    signed_range,
    to_twos_complement,
    truncate_lsbs,
    unpack_subwords,
    wrap_signed,
)
from .gates import CELL_COSTS, Cell, CellCost, Netlist, ToggleCounter, cell_cost, popcount
from .mac import MacStatistics, MacUnit
from .multiplier import ActivityReport, BoothWallaceMultiplier
from .subword import SubwordMode, SubwordParallelMultiplier
from .wallace import ReductionLevel, ReductionResult, reduce_rows, wallace_levels

__all__ = [
    "CarryLookaheadModel",
    "RippleCarryAdder",
    "BaselinePoint",
    "KulkarniUnderdesignedMultiplier",
    "KyawErrorTolerantMultiplier",
    "LiuPartialErrorRecoveryMultiplier",
    "SolazTruncatedMultiplier",
    "all_baseline_curves",
    "measure_relative_rmse",
    "BOOTH_DIGITS",
    "PartialProduct",
    "booth_decode",
    "booth_digit_count",
    "booth_recode",
    "digit_to_code",
    "generate_partial_products",
    "FixedPointFormat",
    "clamp_signed",
    "from_twos_complement",
    "pack_subwords",
    "quantization_rmse",
    "round_lsbs",
    "signed_range",
    "to_twos_complement",
    "truncate_lsbs",
    "unpack_subwords",
    "wrap_signed",
    "CELL_COSTS",
    "Cell",
    "CellCost",
    "Netlist",
    "ToggleCounter",
    "cell_cost",
    "popcount",
    "MacStatistics",
    "MacUnit",
    "ActivityReport",
    "BoothWallaceMultiplier",
    "SubwordMode",
    "SubwordParallelMultiplier",
    "ReductionLevel",
    "ReductionResult",
    "reduce_rows",
    "wallace_levels",
]
