"""Signed fixed-point codecs, precision gating and subword packing.

All DVAFS precision scaling in the paper happens on two's-complement
fixed-point words: the accelerator keeps a fixed physical word width (e.g.
16 bit) and *gates* or *rounds away* a variable number of least-significant
bits at run time.  This module provides the bit-exact primitives for that:

* value <-> two's-complement conversions,
* truncation and round-to-nearest precision reduction,
* quantisation of real numbers to ``Qm.n`` fixed point,
* packing / unpacking of N subwords into one physical word for the
  subword-parallel (DVAFS) datapaths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def signed_range(bits: int) -> tuple[int, int]:
    """Inclusive (min, max) representable range of a signed ``bits``-bit word."""
    if bits < 1:
        raise ValueError("bits must be at least 1")
    return -(1 << (bits - 1)), (1 << (bits - 1)) - 1


def clamp_signed(value: int, bits: int) -> int:
    """Saturate ``value`` into the signed ``bits``-bit range."""
    lo, hi = signed_range(bits)
    return min(max(int(value), lo), hi)


def wrap_signed(value: int, bits: int) -> int:
    """Wrap ``value`` into the signed ``bits``-bit range (two's complement)."""
    if bits < 1:
        raise ValueError("bits must be at least 1")
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def to_twos_complement(value: int, bits: int) -> int:
    """Encode a signed integer as an unsigned two's-complement pattern."""
    lo, hi = signed_range(bits)
    if not lo <= value <= hi:
        raise ValueError(f"value {value} does not fit in {bits} signed bits")
    return value & ((1 << bits) - 1)


def from_twos_complement(pattern: int, bits: int) -> int:
    """Decode an unsigned two's-complement pattern into a signed integer."""
    if pattern < 0 or pattern >= (1 << bits):
        raise ValueError(f"pattern {pattern} is not a {bits}-bit unsigned value")
    return wrap_signed(pattern, bits)


def truncate_lsbs(value: int, bits: int, active_bits: int) -> int:
    """Zero the ``bits - active_bits`` least-significant bits of ``value``.

    This is the DAS precision-gating operation: the gated LSBs are forced to
    zero so the corresponding logic never toggles.  The magnitude of the
    value is preserved (the result is still expressed on ``bits`` bits).
    """
    _check_active_bits(bits, active_bits)
    drop = bits - active_bits
    if drop == 0:
        return clamp_signed(value, bits)
    pattern = to_twos_complement(clamp_signed(value, bits), bits)
    pattern &= ~((1 << drop) - 1)
    return from_twos_complement(pattern, bits)


def round_lsbs(value: int, bits: int, active_bits: int) -> int:
    """Round ``value`` to ``active_bits`` of precision (round half away from zero).

    Compared to truncation this keeps the quantisation error zero-mean, at
    the cost of one extra adder row in hardware; the trade-off is examined by
    the rounding ablation benchmark.
    """
    _check_active_bits(bits, active_bits)
    drop = bits - active_bits
    if drop == 0:
        return clamp_signed(value, bits)
    value = clamp_signed(value, bits)
    step = 1 << drop
    if value >= 0:
        rounded = ((value + step // 2) // step) * step
    else:
        rounded = -((-value + step // 2) // step) * step
    return clamp_signed(rounded, bits)


def _check_active_bits(bits: int, active_bits: int) -> None:
    if bits < 1:
        raise ValueError("bits must be at least 1")
    if not 1 <= active_bits <= bits:
        raise ValueError(
            f"active_bits must be in [1, {bits}], got {active_bits}"
        )


@dataclass(frozen=True)
class FixedPointFormat:
    """A ``Q(integer_bits).(fraction_bits)`` signed fixed-point format.

    ``total_bits = integer_bits + fraction_bits`` includes the sign bit in
    ``integer_bits`` (so ``Q1.7`` is an 8-bit format covering [-1, 1)).
    """

    integer_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.integer_bits < 1:
            raise ValueError("integer_bits must be at least 1 (sign bit)")
        if self.fraction_bits < 0:
            raise ValueError("fraction_bits must be non-negative")

    @property
    def total_bits(self) -> int:
        """Total word width including the sign bit."""
        return self.integer_bits + self.fraction_bits

    @property
    def scale(self) -> float:
        """Value of one LSB."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return signed_range(self.total_bits)[0] * self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return signed_range(self.total_bits)[1] * self.scale

    def quantize(self, value: float) -> int:
        """Quantise a real value to the nearest representable integer code."""
        code = int(np.round(value / self.scale))
        return clamp_signed(code, self.total_bits)

    def dequantize(self, code: int) -> float:
        """Convert an integer code back to its real value."""
        return code * self.scale

    def quantize_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorised quantisation of a numpy array to integer codes."""
        lo, hi = signed_range(self.total_bits)
        codes = np.round(np.asarray(values, dtype=np.float64) / self.scale)
        return np.clip(codes, lo, hi).astype(np.int64)

    def dequantize_array(self, codes: np.ndarray) -> np.ndarray:
        """Vectorised dequantisation of integer codes to real values."""
        return np.asarray(codes, dtype=np.float64) * self.scale

    def quantization_error(self, values: np.ndarray) -> np.ndarray:
        """Element-wise quantisation error (dequantised - original)."""
        values = np.asarray(values, dtype=np.float64)
        return self.dequantize_array(self.quantize_array(values)) - values


def pack_subwords(values: list[int], subword_bits: int) -> int:
    """Pack signed subwords into one unsigned physical-word bit pattern.

    ``values[0]`` occupies the least-significant subword.  This mirrors the
    operand packing of the subword-parallel DVAFS multiplier (Fig. 1b).
    """
    if subword_bits < 1:
        raise ValueError("subword_bits must be at least 1")
    pattern = 0
    for index, value in enumerate(values):
        pattern |= to_twos_complement(value, subword_bits) << (index * subword_bits)
    return pattern


def unpack_subwords(pattern: int, subword_bits: int, count: int) -> list[int]:
    """Unpack ``count`` signed subwords from a physical-word bit pattern."""
    if subword_bits < 1:
        raise ValueError("subword_bits must be at least 1")
    if count < 1:
        raise ValueError("count must be at least 1")
    mask = (1 << subword_bits) - 1
    return [
        from_twos_complement((pattern >> (index * subword_bits)) & mask, subword_bits)
        for index in range(count)
    ]


def quantization_rmse(bits: int, values: np.ndarray, *, full_scale: float = 1.0) -> float:
    """Root-mean-square quantisation error of ``values`` at ``bits`` precision.

    Values are assumed to live in ``[-full_scale, full_scale)``; the format
    used is ``Q1.(bits-1)`` scaled by ``full_scale``.  This is the metric
    used on the x-axis of Fig. 3b.
    """
    if bits < 1:
        raise ValueError("bits must be at least 1")
    if full_scale <= 0:
        raise ValueError("full_scale must be positive")
    fmt = FixedPointFormat(integer_bits=1, fraction_bits=bits - 1)
    scaled = np.asarray(values, dtype=np.float64) / full_scale
    error = fmt.quantization_error(scaled) * full_scale
    return float(np.sqrt(np.mean(error**2)))
