"""Precision-scalable multiply-accumulate (MAC) unit.

The processing elements of both the SIMD processor (Section III-B) and the
Envision chip (Section V) are MACs built around the subword-parallel DVAFS
multiplier.  This model adds the accumulator register and adder on top of
:class:`~repro.arithmetic.subword.SubwordParallelMultiplier`, including the
*guarding* mechanism used for sparsity: when one of the operands is zero the
multiplier inputs are not clocked, so the operation costs (almost) no energy
-- the mechanism behind the ">10 TOPS/W for sparse CONV layers" claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuit.technology import TECH_40NM_LP_LVT, Technology
from .fixed_point import wrap_signed
from .gates import cell_cost, popcount, to_bits
from .multiplier import ActivityReport
from .subword import SubwordMode, SubwordParallelMultiplier


@dataclass
class MacStatistics:
    """Operation counts of a MAC stream.

    Attributes
    ----------
    operations:
        Total multiply-accumulate operations requested.
    guarded:
        Operations skipped by zero-guarding (at least one operand was zero).
    """

    operations: int = 0
    guarded: int = 0

    @property
    def executed(self) -> int:
        """Operations that actually exercised the multiplier."""
        return self.operations - self.guarded

    @property
    def guard_rate(self) -> float:
        """Fraction of operations that were guarded (0..1)."""
        if self.operations == 0:
            return 0.0
        return self.guarded / self.operations


class MacUnit:
    """A subword-parallel MAC with zero-guarding and a wide accumulator.

    Parameters
    ----------
    width:
        Physical multiplier operand width.
    accumulator_bits:
        Width of each accumulator register (one per subword lane).
    guard_zero_operands:
        Enable sparsity guarding: multiplications with a zero operand bypass
        the multiplier and cost only the guard-detection energy.
    """

    def __init__(
        self,
        width: int = 16,
        *,
        accumulator_bits: int = 48,
        technology: Technology = TECH_40NM_LP_LVT,
        guard_zero_operands: bool = True,
        reconfiguration_overhead: float = 0.21,
    ):
        if accumulator_bits < 2 * width:
            raise ValueError("accumulator_bits must be at least twice the operand width")
        self.width = width
        self.accumulator_bits = accumulator_bits
        self.technology = technology
        self.guard_zero_operands = guard_zero_operands
        self.multiplier = SubwordParallelMultiplier(
            width,
            technology=technology,
            reconfiguration_overhead=reconfiguration_overhead,
        )
        self.statistics = MacStatistics()
        self.activity = ActivityReport()
        self._accumulators = [0]
        self._previous_acc = [0]

    # -- configuration ------------------------------------------------------

    @property
    def mode(self) -> SubwordMode:
        """Current subword mode of the underlying multiplier."""
        return self.multiplier.mode

    def set_precision(self, bits: int) -> SubwordMode:
        """Select the DVAFS mode for ``bits`` precision and clear accumulators."""
        mode = self.multiplier.set_precision(bits)
        self._accumulators = [0] * mode.parallelism
        self._previous_acc = [0] * mode.parallelism
        return mode

    def set_mode(self, parallelism: int, subword_bits: int | None = None) -> SubwordMode:
        """Select an explicit subword mode and clear accumulators."""
        mode = self.multiplier.set_mode(parallelism, subword_bits)
        self._accumulators = [0] * mode.parallelism
        self._previous_acc = [0] * mode.parallelism
        return mode

    def clear(self) -> None:
        """Zero the accumulators (start of a new output pixel / neuron)."""
        self._accumulators = [0] * self.mode.parallelism

    def reset_activity(self) -> None:
        """Clear accumulated activity and statistics."""
        self.multiplier.reset_activity()
        self.activity = ActivityReport()
        self.statistics = MacStatistics()

    @property
    def accumulators(self) -> list[int]:
        """Current accumulator values, one per subword lane."""
        return list(self._accumulators)

    # -- behaviour ----------------------------------------------------------

    def multiply_accumulate(self, xs: list[int], ys: list[int]) -> list[int]:
        """Perform one MAC per lane; returns the updated accumulator values."""
        mode = self.mode
        if len(xs) != mode.parallelism or len(ys) != mode.parallelism:
            raise ValueError(
                f"mode {mode} expects {mode.parallelism} operand pairs"
            )
        self.statistics.operations += mode.parallelism

        guarded = [
            self.guard_zero_operands and (x == 0 or y == 0) for x, y in zip(xs, ys)
        ]
        if all(guarded):
            # The whole cycle is guarded: only the guard-detection logic
            # (a zero-compare per operand) toggles.
            self.statistics.guarded += mode.parallelism
            self.activity.record(
                "guard", mode.parallelism * cell_cost("and2").gate_equivalents
            )
            self.activity.words += mode.parallelism
            return self.accumulators

        effective_xs = [0 if g else x for g, x in zip(guarded, xs)]
        effective_ys = [0 if g else y for g, y in zip(guarded, ys)]
        self.statistics.guarded += sum(guarded)
        products = self.multiplier.multiply(effective_xs, effective_ys)
        self.activity = self.activity.merged_with(_take_multiplier_activity(self.multiplier))

        new_accumulators = []
        toggles = 0
        for lane, product in enumerate(products):
            updated = wrap_signed(self._accumulators[lane] + product, self.accumulator_bits)
            pattern_old = self._previous_acc[lane] & ((1 << self.accumulator_bits) - 1)
            updated_pattern = updated & ((1 << self.accumulator_bits) - 1)
            toggles += popcount(pattern_old ^ updated_pattern)
            self._previous_acc[lane] = updated
            new_accumulators.append(updated)
        self._accumulators = new_accumulators
        self.activity.record(
            "accumulator",
            toggles * cell_cost("full_adder").gate_equivalents / 2.0,
        )
        return self.accumulators

    def dot_product(
        self, xs: list[int], ys: list[int], *, batch: bool = True
    ) -> list[int]:
        """Accumulate an entire operand stream (``parallelism`` values per step).

        The stream is consumed ``parallelism`` elements at a time; the final
        accumulator values are returned.  With ``batch=True`` (the default)
        the whole stream -- zero-guarding, lane multiplications and
        accumulator updates -- is evaluated by the vectorised bit-plane
        engine, bit-identically to the scalar cycle loop (``batch=False``).
        """
        from .batch import MAX_BATCH_WIDTH

        mode = self.mode
        if len(xs) != len(ys):
            raise ValueError("operand streams must have equal length")
        if len(xs) % mode.parallelism:
            raise ValueError(
                f"stream length {len(xs)} is not a multiple of parallelism "
                f"{mode.parallelism}"
            )
        self.clear()
        if (
            batch
            and len(xs)
            and mode.subword_bits <= MAX_BATCH_WIDTH
            and self.accumulator_bits <= 64
        ):
            return self._dot_product_batch(xs, ys)
        for start in range(0, len(xs), mode.parallelism):
            self.multiply_accumulate(
                xs[start : start + mode.parallelism],
                ys[start : start + mode.parallelism],
            )
        return self.accumulators

    def _dot_product_batch(self, xs: list[int], ys: list[int]) -> list[int]:
        """Vectorised dot-product stream with scalar-identical accounting.

        Fully guarded cycles (every lane has a zero operand) bypass the
        multiplier and leave its toggle baseline untouched, exactly like the
        scalar :meth:`multiply_accumulate` guard branch; the remaining cycles
        run through the subword multiplier's batch stream and a wrapped
        cumulative-sum accumulator model.
        """
        from .batch import bit_count

        mode = self.mode
        parallelism = mode.parallelism
        x = np.asarray(xs, dtype=np.int64).reshape(-1, parallelism)
        y = np.asarray(ys, dtype=np.int64).reshape(-1, parallelism)
        self.statistics.operations += x.size

        if self.guard_zero_operands:
            guarded = (x == 0) | (y == 0)
        else:
            guarded = np.zeros_like(x, dtype=bool)
        all_guarded = guarded.all(axis=1)
        fully_guarded_cycles = int(all_guarded.sum())
        self.statistics.guarded += int(guarded[all_guarded].sum())
        if fully_guarded_cycles:
            self.activity.record(
                "guard",
                fully_guarded_cycles * parallelism * cell_cost("and2").gate_equivalents,
            )
            self.activity.words += fully_guarded_cycles * parallelism

        executed = ~all_guarded
        if not executed.any():
            return self.accumulators
        effective_x = np.where(guarded[executed], 0, x[executed])
        effective_y = np.where(guarded[executed], 0, y[executed])
        self.statistics.guarded += int(guarded[executed].sum())

        products = self.multiplier.multiply_stream(
            effective_x.reshape(-1), effective_y.reshape(-1), batch=True
        )
        self.activity = self.activity.merged_with(_take_multiplier_activity(self.multiplier))

        products = np.asarray(products, dtype=np.int64).reshape(-1, parallelism)
        acc_mask = np.uint64((1 << self.accumulator_bits) - 1)
        # Wrapped running sums: int64 wraparound is harmless because the
        # accumulator pattern is taken modulo 2**accumulator_bits anyway.
        running = np.cumsum(products, axis=0, dtype=np.int64)
        patterns = running.astype(np.uint64) & acc_mask
        flips = patterns.copy()
        flips[1:] ^= patterns[:-1]
        flips[0] ^= np.array(
            [previous & int(acc_mask) for previous in self._previous_acc],
            dtype=np.uint64,
        )
        self.activity.record(
            "accumulator",
            int(bit_count(flips).sum()) * cell_cost("full_adder").gate_equivalents / 2.0,
        )

        final = [wrap_signed(int(value), self.accumulator_bits) for value in running[-1]]
        self._accumulators = list(final)
        self._previous_acc = list(final)
        return self.accumulators

    def energy_per_operation_pj(self, voltage: float) -> float:
        """Average dynamic energy per MAC operation at ``voltage`` (pJ)."""
        if self.statistics.operations == 0:
            raise ValueError("no operations executed")
        total = self.activity.energy_pj(self.technology, voltage)
        return total / self.statistics.operations


def _take_multiplier_activity(multiplier: SubwordParallelMultiplier) -> ActivityReport:
    """Drain the multiplier's accumulated activity into a fresh report."""
    report = multiplier.activity
    multiplier.activity = ActivityReport()
    return report


def count_zero_bits(values: list[int], width: int) -> int:
    """Total number of zero bits across ``values`` at ``width`` bits each.

    Utility used by the sparsity analyses to estimate data-dependent activity.
    """
    zeros = 0
    for value in values:
        pattern = value & ((1 << width) - 1)
        zeros += width - sum(to_bits(pattern, width))
    return zeros
