"""Subword-parallel DVAFS multiplier.

The DVAFS multiplier of Fig. 1b reuses the arithmetic cells that a DAS/DVAS
design would leave idle at reduced precision: when precision is scaled to
``width / N`` bits, the datapath is reconfigured into ``N`` independent
sub-multipliers that each produce one product per cycle.  At constant
computational throughput the clock can then be divided by ``N``, which is
what lets the *whole* system's voltage scale (not just the arithmetic).

This model composes :class:`~repro.arithmetic.multiplier.BoothWallaceMultiplier`
instances for the subword lanes and adds the reconfiguration (segmentation
mux) overhead the paper reports as a 21 % energy penalty at full precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuit.delay import CriticalPath
from ..circuit.technology import TECH_40NM_LP_LVT, Technology
from .fixed_point import pack_subwords, signed_range, unpack_subwords
from .gates import cell_cost
from .multiplier import ActivityReport, BoothWallaceMultiplier

#: Extra logic levels on the critical path due to the segmentation muxes that
#: make the multiplier subword-parallel.
SEGMENTATION_LEVELS = 2.0


@dataclass(frozen=True)
class SubwordMode:
    """A DVAFS operating mode: ``parallelism`` subwords of ``subword_bits`` each.

    ``1 x 16b``, ``2 x 8b`` and ``4 x 4b`` are the modes used throughout the
    paper; arbitrary power-of-two splits of the physical width are allowed.
    """

    parallelism: int
    subword_bits: int

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ValueError("parallelism must be at least 1")
        if self.subword_bits < 2:
            raise ValueError("subword_bits must be at least 2")

    @property
    def total_bits(self) -> int:
        """Physical bits occupied by all subwords."""
        return self.parallelism * self.subword_bits

    def __str__(self) -> str:
        return f"{self.parallelism}x{self.subword_bits}b"


class SubwordParallelMultiplier:
    """DVAFS multiplier: precision-gated *and* subword-parallel.

    Parameters
    ----------
    width:
        Physical operand width (16 in the paper).
    technology:
        Technology corner for delay/energy conversion.
    reconfiguration_overhead:
        Fractional energy overhead of the segmentation logic, referenced to
        the activity of the active datapath (0.21 reproduces the paper's
        21 % full-precision penalty).
    rounding:
        Use rounding instead of truncation when gating precision.
    """

    def __init__(
        self,
        width: int = 16,
        *,
        technology: Technology = TECH_40NM_LP_LVT,
        reconfiguration_overhead: float = 0.21,
        rounding: bool = False,
    ):
        if width < 4 or width % 2:
            raise ValueError("width must be an even number >= 4")
        if reconfiguration_overhead < 0:
            raise ValueError("reconfiguration_overhead must be non-negative")
        self.width = width
        self.technology = technology
        self.reconfiguration_overhead = reconfiguration_overhead
        self.rounding = rounding
        self._mode = SubwordMode(parallelism=1, subword_bits=width)
        self._lanes = [self._build_lane(width)]
        self.activity = ActivityReport()

    def _build_lane(self, bits: int) -> BoothWallaceMultiplier:
        return BoothWallaceMultiplier(
            bits, technology=self.technology, rounding=self.rounding
        )

    # -- configuration ------------------------------------------------------

    @property
    def mode(self) -> SubwordMode:
        """Currently configured subword mode."""
        return self._mode

    def supported_modes(self) -> list[SubwordMode]:
        """All power-of-two subword splits of the physical width."""
        modes = []
        parallelism = 1
        while self.width // parallelism >= 2 and self.width % parallelism == 0:
            modes.append(
                SubwordMode(parallelism=parallelism, subword_bits=self.width // parallelism)
            )
            parallelism *= 2
        return modes

    def set_mode(self, parallelism: int, subword_bits: int | None = None) -> SubwordMode:
        """Reconfigure into ``parallelism`` lanes of ``subword_bits`` bits.

        ``subword_bits`` defaults to ``width // parallelism``.  The total
        occupied bits must not exceed the physical width.
        """
        if subword_bits is None:
            if self.width % parallelism:
                raise ValueError(
                    f"width {self.width} is not divisible by parallelism {parallelism}"
                )
            subword_bits = self.width // parallelism
        mode = SubwordMode(parallelism=parallelism, subword_bits=subword_bits)
        if mode.total_bits > self.width:
            raise ValueError(
                f"mode {mode} does not fit in a {self.width}-bit datapath"
            )
        self._mode = mode
        self._lanes = [self._build_lane(mode.subword_bits) for _ in range(mode.parallelism)]
        return mode

    def set_precision(self, bits: int) -> SubwordMode:
        """Configure the natural DVAFS mode for ``bits`` of precision.

        Precisions that divide the physical width evenly become subword-
        parallel modes (8 b -> 2 x 8 b, 4 b -> 4 x 4 b for a 16 b datapath);
        other precisions fall back to a single gated lane, exactly like the
        paper's 12 b point where N stays 1.
        """
        if not 2 <= bits <= self.width:
            raise ValueError(f"precision must be in [2, {self.width}]")
        if self.width % bits == 0:
            return self.set_mode(self.width // bits, bits)
        mode = self.set_mode(1, self.width)
        self._lanes[0].set_precision(bits)
        return mode

    def reset_activity(self) -> None:
        """Clear accumulated toggles on all lanes."""
        for lane in self._lanes:
            lane.reset_activity()
        self.activity = ActivityReport()

    # -- structure ----------------------------------------------------------

    def critical_path_levels(self, mode: SubwordMode | None = None) -> float:
        """Logic depth of the active path in the given (or current) mode.

        For the current configuration the gated precision of the lanes is
        honoured (a ``1 x 16b`` datapath gated down to 12 bits has a 12-bit
        path), matching the multi-mode synthesis constraint of the paper.
        """
        segmentation = SEGMENTATION_LEVELS * cell_cost("mux2").logic_levels
        if mode is None:
            return self._lanes[0].critical_path_levels() + segmentation
        lane = BoothWallaceMultiplier(mode.subword_bits, technology=self.technology)
        return lane.critical_path_levels() + segmentation

    def critical_path(self, mode: SubwordMode | None = None) -> CriticalPath:
        """Critical path bound to this multiplier's technology."""
        return CriticalPath(
            logic_levels=self.critical_path_levels(mode), technology=self.technology
        )

    # -- behaviour ----------------------------------------------------------

    def multiply(self, xs: list[int], ys: list[int]) -> list[int]:
        """Multiply ``parallelism`` operand pairs in one (modelled) cycle."""
        mode = self._mode
        if len(xs) != mode.parallelism or len(ys) != mode.parallelism:
            raise ValueError(
                f"mode {mode} expects {mode.parallelism} operand pairs, "
                f"got {len(xs)} / {len(ys)}"
            )
        lo, hi = signed_range(mode.subword_bits)
        for value in list(xs) + list(ys):
            if not lo <= value <= hi:
                raise ValueError(
                    f"operand {value} does not fit in {mode.subword_bits} signed bits"
                )
        products = [
            lane.multiply(x, y) for lane, x, y in zip(self._lanes, xs, ys)
        ]
        self._accumulate_lane_activity()
        return products

    def multiply_packed(self, packed_x: int, packed_y: int) -> int:
        """Multiply operands packed as subwords; returns packed products.

        Each product occupies ``2 * subword_bits`` in the packed result, so
        the result of a ``4 x 4b`` operation is a 32-bit pattern holding four
        8-bit products -- exactly the output format of the hardware.
        """
        mode = self._mode
        xs = unpack_subwords(packed_x, mode.subword_bits, mode.parallelism)
        ys = unpack_subwords(packed_y, mode.subword_bits, mode.parallelism)
        products = self.multiply(xs, ys)
        return pack_subwords(products, 2 * mode.subword_bits)

    def multiply_stream(
        self, xs: list[int], ys: list[int], *, batch: bool = True
    ) -> list[int]:
        """Multiply a flat operand stream, ``parallelism`` pairs per cycle.

        The stream length must be a multiple of the current parallelism.
        With ``batch=True`` (the default) each lane's sub-stream is evaluated
        by the vectorised bit-plane engine; results and activity accounting
        are bit-identical to the scalar cycle loop (``batch=False``).
        """
        from .batch import MAX_BATCH_WIDTH

        mode = self._mode
        if len(xs) != len(ys):
            raise ValueError("operand streams must have equal length")
        if len(xs) % mode.parallelism:
            raise ValueError(
                f"stream length {len(xs)} is not a multiple of parallelism "
                f"{mode.parallelism}"
            )
        if batch and len(xs) and mode.subword_bits <= MAX_BATCH_WIDTH:
            return self._multiply_stream_batch(xs, ys)
        xs = [int(v) for v in xs]
        ys = [int(v) for v in ys]
        products: list[int] = []
        for start in range(0, len(xs), mode.parallelism):
            products.extend(
                self.multiply(
                    xs[start : start + mode.parallelism],
                    ys[start : start + mode.parallelism],
                )
            )
        return products

    def _multiply_stream_batch(self, xs: list[int], ys: list[int]) -> list[int]:
        """Vectorised lane-wise evaluation of a flat operand stream.

        Every lane consumes its strided sub-stream through the batch engine;
        the per-cycle reconfiguration overhead is then accumulated in stream
        order so the ``segmentation`` activity matches the scalar per-cycle
        records bit for bit.
        """
        from .batch import batch_multiply, first_out_of_range

        mode = self._mode
        parallelism = mode.parallelism
        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        for operands in (xs, ys):
            bad = first_out_of_range(operands, mode.subword_bits)
            if bad is not None:
                raise ValueError(
                    f"operand {bad} does not fit in {mode.subword_bits} signed bits"
                )

        cycles = xs.size // parallelism
        products = np.zeros(xs.size, dtype=np.int64)
        per_cycle = np.zeros(cycles, dtype=np.float64)
        for index, lane in enumerate(self._lanes):
            result = batch_multiply(lane, xs[index::parallelism], ys[index::parallelism])
            products[index::parallelism] = result.products
            per_cycle += result.per_op_weighted_toggles

        fresh = ActivityReport()
        for lane in self._lanes:
            fresh = fresh.merged_with(lane.take_activity())
        self.activity = self.activity.merged_with(fresh)
        # Per-cycle accumulation mirrors the scalar path's per-cycle
        # ``record`` calls so the float result is bit-identical.
        for value in (per_cycle * self.reconfiguration_overhead).tolist():
            self.activity.record("segmentation", value)
        return [int(v) for v in products]

    def _accumulate_lane_activity(self) -> None:
        fresh = ActivityReport()
        for lane in self._lanes:
            fresh = fresh.merged_with(lane.take_activity())
        overhead = fresh.total_weighted_toggles * self.reconfiguration_overhead
        fresh.record("segmentation", overhead)
        # Lane words are already counted inside the per-lane reports.
        self.activity = self.activity.merged_with(fresh)
