"""Radix-4 (modified) Booth recoding and partial-product generation.

The paper's multiplier is a Booth-encoded Wallace-tree design.  Radix-4 Booth
recoding halves the number of partial products: a ``w``-bit signed multiplier
is recoded into ``ceil(w / 2)`` digits in ``{-2, -1, 0, +1, +2}``, each of
which selects a (possibly negated / shifted) copy of the multiplicand.
"""

from __future__ import annotations

from dataclasses import dataclass

from .fixed_point import signed_range

#: Valid radix-4 Booth digit values.
BOOTH_DIGITS = (-2, -1, 0, 1, 2)


def booth_digit_count(width: int) -> int:
    """Number of radix-4 Booth digits for a ``width``-bit signed operand."""
    if width < 2:
        raise ValueError("width must be at least 2")
    return (width + 1) // 2


def booth_recode(value: int, width: int) -> list[int]:
    """Recode a signed ``width``-bit integer into radix-4 Booth digits.

    The returned list is least-significant digit first and satisfies
    ``sum(d * 4**i for i, d in enumerate(digits)) == value``.
    """
    lo, hi = signed_range(width)
    if not lo <= value <= hi:
        raise ValueError(f"value {value} does not fit in {width} signed bits")

    def bit(index: int) -> int:
        if index < 0:
            return 0
        if index >= width:
            # sign extension
            return (value >> (width - 1)) & 1
        return (value >> index) & 1

    digits = []
    for i in range(booth_digit_count(width)):
        low = bit(2 * i - 1)
        mid = bit(2 * i)
        high = bit(2 * i + 1)
        digit = -2 * high + mid + low
        digits.append(digit)
    return digits


def booth_decode(digits: list[int]) -> int:
    """Inverse of :func:`booth_recode`: reassemble the signed value."""
    value = 0
    for index, digit in enumerate(digits):
        if digit not in BOOTH_DIGITS:
            raise ValueError(f"invalid Booth digit {digit}")
        value += digit * (4**index)
    return value


def digit_to_code(digit: int) -> int:
    """Encode a Booth digit as a 3-bit control code (neg, two, one).

    The code mirrors the control lines of a hardware Booth selector row and
    is used for toggle counting of the encoder stage.
    """
    if digit not in BOOTH_DIGITS:
        raise ValueError(f"invalid Booth digit {digit}")
    neg = 1 if digit < 0 else 0
    two = 1 if abs(digit) == 2 else 0
    one = 1 if abs(digit) == 1 else 0
    return (neg << 2) | (two << 1) | one


@dataclass(frozen=True)
class PartialProduct:
    """One Booth partial product, already shifted into product position.

    Attributes
    ----------
    value:
        Signed integer value of the partial product (digit * multiplicand *
        4**index).
    digit:
        The Booth digit that generated it.
    index:
        Digit index (0 = least significant).
    """

    value: int
    digit: int
    index: int


def generate_partial_products(
    multiplicand: int, multiplier: int, width: int
) -> list[PartialProduct]:
    """Booth partial products of ``multiplicand * multiplier``.

    Both operands are signed ``width``-bit integers.  The sum of the returned
    partial-product values equals the exact product.
    """
    lo, hi = signed_range(width)
    if not lo <= multiplicand <= hi:
        raise ValueError(f"multiplicand {multiplicand} does not fit in {width} bits")
    digits = booth_recode(multiplier, width)
    return [
        PartialProduct(value=digit * multiplicand * (4**index), digit=digit, index=index)
        for index, digit in enumerate(digits)
    ]
