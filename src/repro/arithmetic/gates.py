"""Cell library: gate-equivalent costs, logic levels and netlist primitives.

The structural arithmetic models account for energy in *gate-equivalent
toggles*: every bit that flips in a given stage of the datapath contributes
the stage's gate-equivalent weight.  Delay is accounted in *logic levels*
(reference cell delays) so that the circuit-level delay model can translate a
path into nanoseconds at any supply voltage.

The module also provides a small combinational netlist framework (used by
:mod:`repro.arithmetic.adder`) whose cells are evaluated in topological order
with per-cell toggle counting -- a bit-true, event-free gate-level simulator.
"""

from __future__ import annotations

from dataclasses import dataclass


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("popcount is defined for non-negative integers")
    return bin(value).count("1")


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits between two non-negative integers."""
    return popcount(a ^ b)


def to_bits(pattern: int, width: int) -> list[int]:
    """Little-endian list of ``width`` bits of ``pattern``.

    Raises
    ------
    ValueError
        If ``pattern`` is negative, ``width`` is negative, or ``pattern``
        does not fit in ``width`` bits (truncating silently would corrupt
        toggle accounting downstream).
    """
    if pattern < 0:
        raise ValueError("pattern must be non-negative")
    if width < 0:
        raise ValueError("width must be non-negative")
    if pattern >> width:
        raise ValueError(f"pattern {pattern} does not fit in {width} bits")
    return [(pattern >> i) & 1 for i in range(width)]


def from_bits(bits: list[int]) -> int:
    """Assemble a little-endian bit list into an unsigned integer."""
    value = 0
    for index, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError("bits must be 0 or 1")
        value |= bit << index
    return value


@dataclass(frozen=True)
class CellCost:
    """Area/energy and delay cost of one cell type.

    Attributes
    ----------
    gate_equivalents:
        Energy/area weight expressed in NAND2-equivalent gates; one toggle of
        this cell's output costs ``gate_equivalents`` reference toggles.
    logic_levels:
        Delay contribution in reference logic levels when the cell sits on
        the critical path.
    """

    gate_equivalents: float
    logic_levels: float


#: Cost table for the cells used by the arithmetic generators.  Values are
#: typical standard-cell figures (NAND2 = 1 GE); absolute calibration happens
#: against the paper's 16 b multiplier energy in :mod:`repro.core.scaling`.
CELL_COSTS: dict[str, CellCost] = {
    "inv": CellCost(gate_equivalents=0.5, logic_levels=0.5),
    "nand2": CellCost(gate_equivalents=1.0, logic_levels=1.0),
    "and2": CellCost(gate_equivalents=1.25, logic_levels=1.0),
    "or2": CellCost(gate_equivalents=1.25, logic_levels=1.0),
    "xor2": CellCost(gate_equivalents=2.0, logic_levels=1.2),
    "mux2": CellCost(gate_equivalents=2.0, logic_levels=1.0),
    "half_adder": CellCost(gate_equivalents=3.0, logic_levels=1.2),
    "full_adder": CellCost(gate_equivalents=4.5, logic_levels=2.0),
    "booth_encoder": CellCost(gate_equivalents=5.0, logic_levels=1.5),
    "booth_selector": CellCost(gate_equivalents=2.5, logic_levels=1.0),
    "register_bit": CellCost(gate_equivalents=4.0, logic_levels=0.5),
    "cla_stage": CellCost(gate_equivalents=6.0, logic_levels=1.4),
}


def cell_cost(name: str) -> CellCost:
    """Look up the cost entry of a cell type.

    Raises
    ------
    KeyError
        If the cell type is unknown.
    """
    try:
        return CELL_COSTS[name]
    except KeyError as exc:
        known = ", ".join(sorted(CELL_COSTS))
        raise KeyError(f"unknown cell type {name!r}; known: {known}") from exc


# ---------------------------------------------------------------------------
# Netlist framework
# ---------------------------------------------------------------------------


@dataclass
class Cell:
    """One combinational cell instance in a :class:`Netlist`.

    Attributes
    ----------
    kind:
        Cell type; must be a key of :data:`CELL_COSTS`.
    inputs:
        Names of the nets driving the cell inputs.
    outputs:
        Names of the nets driven by the cell.
    """

    kind: str
    inputs: list[str]
    outputs: list[str]

    def evaluate(self, values: dict[str, int]) -> dict[str, int]:
        """Evaluate the cell function on current net ``values``."""
        bits = [values[name] for name in self.inputs]
        if self.kind == "inv":
            result = [1 - bits[0]]
        elif self.kind == "nand2":
            result = [1 - (bits[0] & bits[1])]
        elif self.kind == "and2":
            result = [bits[0] & bits[1]]
        elif self.kind == "or2":
            result = [bits[0] | bits[1]]
        elif self.kind == "xor2":
            result = [bits[0] ^ bits[1]]
        elif self.kind == "mux2":
            select, zero, one = bits
            result = [one if select else zero]
        elif self.kind == "half_adder":
            a, b = bits
            result = [a ^ b, a & b]
        elif self.kind == "full_adder":
            a, b, c = bits
            result = [a ^ b ^ c, (a & b) | (a & c) | (b & c)]
        else:
            raise ValueError(f"cell kind {self.kind!r} has no evaluate rule")
        return dict(zip(self.outputs, result))


@dataclass
class ToggleCounter:
    """Accumulates weighted output toggles of netlist cells."""

    weighted_toggles: float = 0.0
    raw_toggles: int = 0
    evaluations: int = 0

    def record(self, kind: str, toggles: int) -> None:
        """Record ``toggles`` output flips of a cell of type ``kind``."""
        if toggles < 0:
            raise ValueError("toggles must be non-negative")
        self.raw_toggles += toggles
        self.weighted_toggles += toggles * cell_cost(kind).gate_equivalents

    def reset(self) -> None:
        """Clear all accumulated counts."""
        self.weighted_toggles = 0.0
        self.raw_toggles = 0
        self.evaluations = 0


class Netlist:
    """A small combinational netlist with topological evaluation.

    Cells must be added in topological order (inputs before consumers); this
    is naturally satisfied by the structural generators in this package and
    keeps evaluation a single linear pass.
    """

    def __init__(self) -> None:
        self._cells: list[Cell] = []
        self._primary_inputs: list[str] = []
        self._primary_outputs: list[str] = []
        self._previous_values: dict[str, int] = {}
        self.toggle_counter = ToggleCounter()

    @property
    def cells(self) -> list[Cell]:
        """Cells in evaluation order."""
        return list(self._cells)

    @property
    def primary_inputs(self) -> list[str]:
        """Declared primary input nets."""
        return list(self._primary_inputs)

    @property
    def primary_outputs(self) -> list[str]:
        """Declared primary output nets."""
        return list(self._primary_outputs)

    def add_input(self, name: str) -> str:
        """Declare a primary input net and return its name."""
        if name in self._primary_inputs:
            raise ValueError(f"duplicate primary input {name!r}")
        self._primary_inputs.append(name)
        return name

    def add_output(self, name: str) -> str:
        """Declare a primary output net and return its name."""
        if name in self._primary_outputs:
            raise ValueError(f"duplicate primary output {name!r}")
        self._primary_outputs.append(name)
        return name

    def add_cell(self, kind: str, inputs: list[str], outputs: list[str]) -> Cell:
        """Instantiate a cell; returns the created :class:`Cell`."""
        cell_cost(kind)  # validates the kind
        cell = Cell(kind=kind, inputs=list(inputs), outputs=list(outputs))
        self._cells.append(cell)
        return cell

    @property
    def gate_equivalents(self) -> float:
        """Total gate-equivalent count of the netlist (area proxy)."""
        return sum(cell_cost(cell.kind).gate_equivalents for cell in self._cells)

    def evaluate(self, input_values: dict[str, int], *, count_toggles: bool = True) -> dict[str, int]:
        """Evaluate the netlist for one input vector.

        Returns the values of the primary outputs.  When ``count_toggles`` is
        true, output flips relative to the previous evaluation are added to
        :attr:`toggle_counter`.
        """
        missing = [name for name in self._primary_inputs if name not in input_values]
        if missing:
            raise ValueError(f"missing values for primary inputs: {missing}")
        values: dict[str, int] = {
            name: int(bool(input_values[name])) for name in self._primary_inputs
        }
        for cell in self._cells:
            outputs = cell.evaluate(values)
            if count_toggles:
                toggles = sum(
                    1
                    for net, bit in outputs.items()
                    if self._previous_values.get(net, 0) != bit
                )
                self.toggle_counter.record(cell.kind, toggles)
            values.update(outputs)
        if count_toggles:
            self.toggle_counter.evaluations += 1
            self._previous_values = dict(values)
        return {name: values[name] for name in self._primary_outputs}

    def reset_state(self) -> None:
        """Forget the previous evaluation (toggle baseline) and counts."""
        self._previous_values = {}
        self.toggle_counter.reset()
