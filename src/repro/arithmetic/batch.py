"""Vectorized bit-plane batch evaluation engine for the arithmetic datapath.

The scalar models in :mod:`repro.arithmetic.multiplier` walk every
multiplication through the datapath one stage at a time on Python integers,
which makes a single 16-bit multiply cost tens of microseconds.  This module
re-implements the same stage walk as *bit-plane* operations over whole
operand batches: every pipeline stage (operand registers, Booth encoding,
partial-product selection, carry-save reduction, final addition) is evaluated
for all ``N`` operations at once on ``(N, rows)`` numpy arrays of
two's-complement patterns, and the per-stage toggle accounting becomes a
chained XOR / popcount over the batch axis.

The engine is **bit-identical** to the scalar reference: given the same
operand stream and the same starting toggle baseline it produces the same
products, the same per-stage raw toggle counts, the same weighted
gate-equivalent activity and the same final baseline state, so scalar and
batch evaluation can be freely interleaved on one multiplier instance.  The
scalar models remain the golden reference; the equivalence is enforced by the
property tests in ``tests/test_batch_equivalence.py``.

The engine supports operand widths up to :data:`MAX_BATCH_WIDTH` bits (the
full product must fit one 64-bit lane); wider datapaths fall back to the
scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .booth import booth_digit_count
from .fixed_point import signed_range
from .gates import popcount

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .multiplier import BoothWallaceMultiplier

#: Widest operand the batch engine handles: the double-width product and all
#: intermediate bit planes must fit one unsigned 64-bit lane.
MAX_BATCH_WIDTH = 32

_ONE = np.uint64(1)

# numpy >= 2.0 has a native vectorised popcount; keep a byte-LUT fallback so
# the engine degrades gracefully on older runtimes.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")
_POPCOUNT_LUT = np.array([bin(value).count("1") for value in range(256)], dtype=np.int64)


def bit_count(patterns: np.ndarray) -> np.ndarray:
    """Element-wise population count of an unsigned 64-bit pattern array."""
    patterns = np.ascontiguousarray(patterns, dtype=np.uint64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(patterns).astype(np.int64)
    as_bytes = patterns.view(np.uint8).reshape(patterns.shape + (8,))
    return _POPCOUNT_LUT[as_bytes].sum(axis=-1)


def _unsigned_mask(bits: int) -> np.uint64:
    if not 1 <= bits <= 64:
        raise ValueError(f"bits must be in [1, 64], got {bits}")
    return np.uint64((1 << bits) - 1)


def first_out_of_range(values: np.ndarray, bits: int) -> int | None:
    """First element of ``values`` outside the signed ``bits``-bit range.

    Returns ``None`` when every element fits.  Shared by the batch entry
    points so the range check (and its first-offender semantics) lives in
    one place; callers format their own error message to stay consistent
    with their scalar counterpart.
    """
    values = np.asarray(values, dtype=np.int64)
    lo, hi = signed_range(bits)
    if values.size and (int(values.min()) < lo or int(values.max()) > hi):
        return int(values[(values < lo) | (values > hi)][0])
    return None


def batch_to_twos_complement(values: np.ndarray, bits: int) -> np.ndarray:
    """Vectorised :func:`~repro.arithmetic.fixed_point.to_twos_complement`."""
    values = np.asarray(values, dtype=np.int64)
    bad = first_out_of_range(values, bits)
    if bad is not None:
        raise ValueError(f"value {bad} does not fit in {bits} signed bits")
    return values.astype(np.uint64) & _unsigned_mask(bits)


def batch_from_twos_complement(patterns: np.ndarray, bits: int) -> np.ndarray:
    """Vectorised :func:`~repro.arithmetic.fixed_point.from_twos_complement`."""
    patterns = np.asarray(patterns, dtype=np.uint64) & _unsigned_mask(bits)
    signed = patterns.astype(np.int64)
    if bits == 64:
        return signed
    sign_bit = np.int64(1) << np.int64(bits - 1)
    return np.where(signed >= sign_bit, signed - (np.int64(1) << np.int64(bits)), signed)


def batch_truncate_lsbs(values: np.ndarray, bits: int, active_bits: int) -> np.ndarray:
    """Vectorised :func:`~repro.arithmetic.fixed_point.truncate_lsbs`."""
    if not 1 <= active_bits <= bits:
        raise ValueError(f"active_bits must be in [1, {bits}], got {active_bits}")
    lo, hi = signed_range(bits)
    values = np.clip(np.asarray(values, dtype=np.int64), lo, hi)
    drop = bits - active_bits
    if drop == 0:
        return values
    patterns = values.astype(np.uint64) & _unsigned_mask(bits)
    patterns &= ~_unsigned_mask(drop)
    return batch_from_twos_complement(patterns, bits)


def batch_round_lsbs(values: np.ndarray, bits: int, active_bits: int) -> np.ndarray:
    """Vectorised :func:`~repro.arithmetic.fixed_point.round_lsbs`."""
    if not 1 <= active_bits <= bits:
        raise ValueError(f"active_bits must be in [1, {bits}], got {active_bits}")
    lo, hi = signed_range(bits)
    values = np.clip(np.asarray(values, dtype=np.int64), lo, hi)
    drop = bits - active_bits
    if drop == 0:
        return values
    step = np.int64(1) << np.int64(drop)
    half = step // 2
    positive = ((values + half) // step) * step
    negative = -(((-values + half) // step) * step)
    return np.clip(np.where(values >= 0, positive, negative), lo, hi)


def batch_booth_digits(values: np.ndarray, width: int) -> np.ndarray:
    """Radix-4 Booth digits of a batch of signed ``width``-bit values.

    Returns an ``(N, booth_digit_count(width))`` int64 array, least
    significant digit first, matching
    :func:`~repro.arithmetic.booth.booth_recode` row by row.
    """
    mask = _unsigned_mask(width)
    patterns = batch_to_twos_complement(values, width)
    sign = (patterns >> np.uint64(width - 1)) & _ONE
    extended = patterns | np.where(sign.astype(bool), ~mask, np.uint64(0))
    digits = np.empty((patterns.shape[0], booth_digit_count(width)), dtype=np.int64)
    for index in range(digits.shape[1]):
        if index == 0:
            low = np.zeros(patterns.shape[0], dtype=np.int64)
        else:
            low = ((extended >> np.uint64(2 * index - 1)) & _ONE).astype(np.int64)
        mid = ((extended >> np.uint64(2 * index)) & _ONE).astype(np.int64)
        high = ((extended >> np.uint64(2 * index + 1)) & _ONE).astype(np.int64)
        digits[:, index] = mid + low - 2 * high
    return digits


def batch_digit_codes(digits: np.ndarray) -> np.ndarray:
    """Vectorised :func:`~repro.arithmetic.booth.digit_to_code` (neg, two, one)."""
    digits = np.asarray(digits, dtype=np.int64)
    neg = (digits < 0).astype(np.uint64)
    magnitude = np.abs(digits)
    two = (magnitude == 2).astype(np.uint64)
    one = (magnitude == 1).astype(np.uint64)
    return (neg << np.uint64(2)) | (two << _ONE) | one


def batch_partial_products(
    multiplicands: np.ndarray, digits: np.ndarray, width: int
) -> np.ndarray:
    """Shifted Booth partial-product patterns, masked to the product width.

    ``multiplicands`` is ``(N,)`` signed, ``digits`` is ``(N, rows)``; the
    result is the ``(N, rows)`` uint64 equivalent of
    ``(digit * multiplicand * 4**index) & ((1 << 2 * width) - 1)``.
    """
    product_mask = _unsigned_mask(2 * width)
    x_u = np.asarray(multiplicands, dtype=np.int64).astype(np.uint64)
    d_u = np.asarray(digits, dtype=np.int64).astype(np.uint64)
    shifts = (2 * np.arange(d_u.shape[1], dtype=np.uint64)).astype(np.uint64)
    return ((d_u * x_u[:, None]) << shifts[None, :]) & product_mask


@dataclass
class BatchReductionTrace:
    """Carry-save reduction of a batch: per-level row patterns + final rows.

    ``levels[i]`` is the ``(N, rows_i)`` uint64 pattern array produced by
    compression level ``i``; ``sum_rows`` / ``carry_rows`` are the two final
    ``(N,)`` rows whose modular sum is the product pattern.
    """

    levels: list[np.ndarray]
    sum_rows: np.ndarray
    carry_rows: np.ndarray


def batch_reduce_rows(rows: np.ndarray, product_bits: int) -> BatchReductionTrace:
    """Vectorised :func:`~repro.arithmetic.wallace.reduce_rows`.

    The compression schedule (triples first, then one pair, then a passthrough
    row) is identical to the scalar implementation, so every level's bit
    patterns match row for row.
    """
    if product_bits < 1:
        raise ValueError("product_bits must be at least 1")
    mask = _unsigned_mask(product_bits)
    rows = np.asarray(rows, dtype=np.uint64)
    count = rows.shape[0]
    current = [rows[:, i] & mask for i in range(rows.shape[1])]
    if not current:
        zero = np.zeros(count, dtype=np.uint64)
        return BatchReductionTrace(levels=[], sum_rows=zero, carry_rows=zero.copy())

    levels: list[np.ndarray] = []
    while len(current) > 2:
        next_rows: list[np.ndarray] = []
        index = 0
        while index + 3 <= len(current):
            a, b, c = current[index : index + 3]
            next_rows.append((a ^ b ^ c) & mask)
            next_rows.append((((a & b) | (a & c) | (b & c)) << _ONE) & mask)
            index += 3
        remaining = len(current) - index
        if remaining == 2:
            a, b = current[index], current[index + 1]
            next_rows.append((a ^ b) & mask)
            next_rows.append(((a & b) << _ONE) & mask)
        elif remaining == 1:
            next_rows.append(current[index])
        levels.append(np.stack(next_rows, axis=1))
        current = next_rows

    if len(current) == 1:
        current = [current[0], np.zeros(count, dtype=np.uint64)]
    return BatchReductionTrace(levels=levels, sum_rows=current[0], carry_rows=current[1])


def chained_toggle_counts(
    patterns: np.ndarray, baseline: list[int] | None
) -> np.ndarray:
    """Per-operation raw toggle counts of a chained pattern sequence.

    ``patterns`` is ``(N, rows)``; operation ``i`` toggles the Hamming
    distance between row-set ``i`` and row-set ``i - 1`` (operation 0 is
    measured against ``baseline``, or all-zero rows when ``baseline`` is
    ``None``).  A baseline with a different row count follows the scalar
    rule: rows that appear or disappear contribute their full popcount.
    """
    patterns = np.asarray(patterns, dtype=np.uint64)
    count, rows = patterns.shape
    toggles = np.zeros(count, dtype=np.int64)
    if count == 0:
        return toggles
    if count > 1:
        toggles[1:] = bit_count(patterns[1:] ^ patterns[:-1]).sum(axis=1)
    base = [0] * rows if baseline is None else list(baseline)
    shared = min(len(base), rows)
    first = 0
    first_row = [int(value) for value in patterns[0]]
    for old, new in zip(base[:shared], first_row[:shared]):
        first += popcount(old ^ new)
    longer = first_row if rows > len(base) else base
    for extra in longer[shared:]:
        first += popcount(int(extra))
    toggles[0] = first
    return toggles


@dataclass
class BatchMultiplyResult:
    """Outcome of one :func:`batch_multiply` call.

    Attributes
    ----------
    products:
        ``(N,)`` signed products of the gated operands (int64).
    per_op_weighted_toggles:
        ``(N,)`` float64 gate-equivalent toggles of each operation summed
        over all stages -- the quantity the subword wrapper needs to apply
        its per-cycle reconfiguration overhead exactly like the scalar path.
    stage_raw_toggles:
        Total raw (unweighted) toggles per pipeline stage.
    """

    products: np.ndarray
    per_op_weighted_toggles: np.ndarray
    stage_raw_toggles: dict[str, int]


def batch_multiply(
    multiplier: "BoothWallaceMultiplier",
    xs: np.ndarray | list[int],
    ys: np.ndarray | list[int],
) -> BatchMultiplyResult:
    """Run a whole operand batch through a scalar multiplier's datapath.

    Equivalent to calling ``multiplier.multiply(x, y)`` for every pair in
    order: the multiplier's activity report, toggle baselines and word count
    are updated exactly as the scalar walk would, and the returned products
    are bit-identical.  The multiplier's current precision and rounding
    configuration are honoured.
    """
    from .multiplier import STAGE_WEIGHTS

    width = multiplier.width
    if width > MAX_BATCH_WIDTH:
        raise ValueError(
            f"batch engine supports widths up to {MAX_BATCH_WIDTH}, got {width}"
        )
    try:
        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
    except OverflowError as exc:
        raise ValueError(f"operands must fit in {width} signed bits") from exc
    if xs.shape != ys.shape or xs.ndim != 1:
        raise ValueError("operand batches must be equal-length 1-D arrays")
    count = xs.shape[0]
    if count == 0:
        return BatchMultiplyResult(
            products=np.zeros(0, dtype=np.int64),
            per_op_weighted_toggles=np.zeros(0, dtype=np.float64),
            stage_raw_toggles={},
        )

    for operands in (xs, ys):
        if first_out_of_range(operands, width) is not None:
            raise ValueError(f"operands must fit in {width} signed bits")

    precision = multiplier.precision
    if multiplier.rounding:
        gated_x = batch_round_lsbs(xs, width, precision)
        gated_y = batch_round_lsbs(ys, width, precision)
    else:
        gated_x = batch_truncate_lsbs(xs, width, precision)
        gated_y = batch_truncate_lsbs(ys, width, precision)

    product_bits = multiplier.product_bits
    per_op = np.zeros(count, dtype=np.float64)
    raw_totals: dict[str, int] = {}

    def count_stage(stage: str, key: str, patterns: np.ndarray) -> None:
        toggles = chained_toggle_counts(patterns, multiplier._previous.get(key))
        multiplier._previous[key] = [int(value) for value in patterns[-1]]
        total = int(toggles.sum())
        raw_totals[stage] = raw_totals.get(stage, 0) + total
        weight = STAGE_WEIGHTS[stage]
        multiplier.activity.record(stage, total * weight)
        np.add(per_op, toggles * weight, out=per_op)

    # Stage 1: operand registers.
    input_patterns = np.stack(
        [
            batch_to_twos_complement(gated_x, width),
            batch_to_twos_complement(gated_y, width),
        ],
        axis=1,
    )
    count_stage("input", "input", input_patterns)

    # Stage 2: Booth encoding of the multiplier operand.
    digits = batch_booth_digits(gated_y, width)
    count_stage("booth_encode", "booth", batch_digit_codes(digits))

    # Stage 3: partial-product selection.
    pp_patterns = batch_partial_products(gated_x, digits, width)
    count_stage("pp_generate", "pp", pp_patterns)

    # Stage 4: Wallace (carry-save) reduction.
    reduction = batch_reduce_rows(pp_patterns, product_bits)
    for level_index, level in enumerate(reduction.levels):
        count_stage("wallace", f"wallace{level_index}", level)

    # Stage 5: final carry-propagate addition.
    product_patterns = (reduction.sum_rows + reduction.carry_rows) & _unsigned_mask(
        product_bits
    )
    count_stage("final_adder", "final", product_patterns[:, None])

    multiplier.activity.words += count
    return BatchMultiplyResult(
        products=batch_from_twos_complement(product_patterns, product_bits),
        per_op_weighted_toggles=per_op,
        stage_raw_toggles=raw_totals,
    )
