"""Fig. 2: frequency, slack, supply voltage and activity vs. precision.

Four series at constant 500 MOPS throughput for the Booth-Wallace multiplier:

* (a) operating frequency of the DVAFS modes,
* (b) positive slack at the nominal 1.1 V supply (DAS/DVAS vs. DVAFS),
* (c) minimum supply voltage at zero positive slack,
* (d) relative switching activity (DAS/DVAS per word, DVAFS per cycle).
"""

from __future__ import annotations

from ..analysis.reporting import format_table
from ..core.scaling import MultiplierCharacterization, resolve_characterization

#: Cacheable run() parameters (name -> default); the runner registry's schema.
PARAMS = {"samples": 300, "seed": 2017}
#: Object-valued run() parameters; passing one bypasses the result cache.
OBJECT_PARAMS = ("characterization",)
#: Shared sub-experiment intermediates (artifact -> (producer, params subset)).
ARTIFACTS = {
    "multiplier_characterization": (
        "repro.core.scaling:characterization_artifact",
        ("samples", "seed"),
    ),
}


def run(
    *, samples: int = 300, seed: int = 2017, characterization: MultiplierCharacterization | None = None
) -> list[dict[str, object]]:
    """One record per precision with every Fig. 2 quantity."""
    characterization = resolve_characterization(
        samples=samples, seed=seed, characterization=characterization
    )
    das_activity = characterization.relative_activity("das")
    dvafs_activity = characterization.relative_activity("dvafs")
    rows = []
    for precision in sorted(characterization.profiles, reverse=True):
        profile = characterization.profiles[precision]
        rows.append(
            {
                "precision": precision,
                "frequency_mhz (2a)": profile.frequency_mhz,
                "das_slack_ns (2b)": round(profile.das_slack_ns, 2),
                "dvafs_slack_ns (2b)": round(profile.dvafs_slack_ns, 2),
                "dvas_voltage (2c)": round(profile.dvas_voltage, 2),
                "dvafs_voltage (2c)": round(profile.dvafs_as_voltage, 2),
                "das_activity (2d)": round(das_activity[precision], 3),
                "dvafs_activity (2d)": round(dvafs_activity[precision], 3),
            }
        )
    return rows


def render(rows: list[dict[str, object]]) -> str:
    """Format rows (live or cached) as the Fig. 2 reproduction."""
    return format_table(
        rows,
        title="Fig. 2: multiplier frequency / slack / voltage / activity vs precision",
    )


def report(**kwargs) -> str:
    """Formatted Fig. 2 reproduction."""
    return render(run(**kwargs))


if __name__ == "__main__":  # pragma: no cover - thin shim over the unified CLI
    from ..runner.cli import main

    raise SystemExit(main(["report", "fig2"]))
