"""Fig. 8: Envision energy per word vs. precision.

Two schedules are reported, both on a dense 5x5 CONV workload at the chip's
typical 73 % MAC efficiency:

* (a) constant 200 MHz clock -- throughput grows with the subword
  parallelism, energy per operation drops through activity + voltage
  scaling;
* (b) constant 76 GOPS throughput -- the clock drops with N, allowing the
  0.80 V / 0.65 V supplies and the full DVAFS gains (4.2 TOPS/W at 4x4b).
"""

from __future__ import annotations

from ..analysis.reporting import format_table
from ..envision import EnvisionChip

#: Cacheable run() parameters (name -> default); the chip model is the only
#: input and is an object parameter, so the default config has no knobs.
PARAMS: dict[str, object] = {}
#: Object-valued run() parameters; passing one bypasses the result cache.
OBJECT_PARAMS = ("chip",)


def run(*, chip: EnvisionChip | None = None) -> list[dict[str, object]]:
    """Records for both Fig. 8a (constant f) and Fig. 8b (constant throughput)."""
    chip = chip or EnvisionChip()
    rows: list[dict[str, object]] = []
    for schedule, constant_throughput in (("8a: constant 200MHz", False), ("8b: constant 76GOPS", True)):
        for record in chip.energy_per_word_curve(constant_throughput=constant_throughput):
            rows.append({"schedule": schedule, **record})
    return rows


def headline_gains(rows: list[dict[str, object]]) -> dict[str, float]:
    """Gains quoted in the paper: DVAFS vs DAS and vs DVAS at 4 b, constant throughput."""
    constant_throughput = [r for r in rows if str(r["schedule"]).startswith("8b")]

    def energy(technique: str, precision: int) -> float:
        for record in constant_throughput:
            if record["technique"] == technique and record["precision"] == precision:
                return float(record["relative_energy_per_word"])
        raise KeyError((technique, precision))

    return {
        "dvafs_vs_das_4b": energy("DAS", 4) / energy("DVAFS", 4),
        "dvafs_vs_dvas_4b": energy("DVAS", 4) / energy("DVAFS", 4),
        "dvafs_16b_to_4b_range": energy("DVAFS", 16) / energy("DVAFS", 4),
    }


def render(rows: list[dict[str, object]]) -> str:
    """Format rows (live or cached) as the Fig. 8 reproduction + headline gains."""
    text = format_table(rows, title="Fig. 8: Envision energy per word vs precision")
    gains = headline_gains(rows)
    text += (
        f"\nDVAFS vs DAS at 4b: {gains['dvafs_vs_das_4b']:.1f}x  "
        f"(paper: 6.9x)\nDVAFS vs DVAS at 4b: {gains['dvafs_vs_dvas_4b']:.1f}x  (paper: 4.1x)\n"
    )
    return text


def report(**kwargs) -> str:
    """Formatted Fig. 8 reproduction."""
    return render(run(**kwargs))


if __name__ == "__main__":  # pragma: no cover - thin shim over the unified CLI
    from ..runner.cli import main

    raise SystemExit(main(["report", "fig8"]))
