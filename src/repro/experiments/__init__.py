"""Experiment drivers: one module per table/figure of the paper's evaluation.

============  ===========================================================
module        reproduces
============  ===========================================================
``table1``    Table I  -- multiplier scaling parameters k0..k5, N
``fig2``      Fig. 2   -- frequency / slack / voltage / activity vs bits
``fig3``      Fig. 3a  -- multiplier energy vs precision,
              Fig. 3b  -- energy vs RMSE against baselines [3]-[5], [8]
``fig4``      Fig. 4   -- SIMD processor energy vs precision (SW = 8, 64)
``table2``    Table II -- SIMD processor power distribution per mode
``fig6``      Fig. 6   -- per-layer minimum precision (LeNet-5, AlexNet)
``fig8``      Fig. 8   -- Envision energy vs precision (const f / const T)
``table3``    Table III-- per-layer power/efficiency of VGG16/AlexNet/LeNet
============  ===========================================================

Each module exposes ``run(**kwargs) -> list[dict]`` returning the raw rows,
``render(rows) -> str`` formatting rows from a live run or the result cache
alike, and ``report(**kwargs) -> str`` (= ``render(run(**kwargs))``).  The
cacheable parameters are declared in each module's ``PARAMS`` mapping
(name -> default) -- the schema consumed by :mod:`repro.runner.registry`;
object-valued injection parameters are listed in ``OBJECT_PARAMS`` and
bypass the cache.  ``python -m repro`` is the unified entry point.
"""

from . import fig2, fig3, fig4, fig6, fig8, table1, table2, table3

#: Registry of all experiments, keyed by the paper artefact they regenerate.
EXPERIMENTS = {
    "table1": table1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "table2": table2,
    "fig6": fig6,
    "fig8": fig8,
    "table3": table3,
}

__all__ = ["EXPERIMENTS", "fig2", "fig3", "fig4", "fig6", "fig8", "table1", "table2", "table3"]
