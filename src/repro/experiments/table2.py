"""Table II: SIMD-processor power distribution per mode and SIMD width.

For SW = 8 and SW = 64 and the modes 1x16b, 1x8b, 1x4b (DVAS) and 2x8b,
4x4b (DVAFS), reports the supplies, the mem / nas / as percentage split and
the total power, next to the values published in the paper.  The convolution
counters come from the trace-compiled execution engine by default
(``batch=True``); they are bit-identical to the cycle-level interpreter.
"""

from __future__ import annotations

import numpy as np

from ..analysis.reporting import format_table
from ..simd import SimdPowerModel, SimdProcessor, convolution_kernel, run_convolution

#: Published Table II rows: (SW, mode label, total power in mW).
PAPER_TABLE_II_POWER = {
    (8, "1x16b"): 36.0,
    (8, "1x8b"): 24.0,
    (8, "1x4b"): 20.0,
    (8, "2x8b"): 15.0,
    (8, "4x4b"): 7.0,
    (64, "1x16b"): 289.0,
    (64, "1x8b"): 160.0,
    (64, "1x4b"): 111.0,
    (64, "2x8b"): 103.0,
    (64, "4x4b"): 45.0,
}

#: Cacheable run() parameters (name -> default); the runner registry's schema.
PARAMS = {
    "simd_widths": (8, 64),
    "input_length": 48,
    "taps": 9,
    "seed": 2017,
    "batch": True,
}

#: Modes of Table II as (technique, precision) pairs, in row order.
TABLE_II_MODES = [
    ("DAS", 16),
    ("DVAS", 8),
    ("DVAS", 4),
    ("DVAFS", 8),
    ("DVAFS", 4),
]


def run(
    *,
    simd_widths: tuple[int, ...] = (8, 64),
    input_length: int = 48,
    taps: int = 9,
    seed: int = 2017,
    batch: bool = True,
) -> list[dict[str, object]]:
    """One record per Table II row."""
    rows: list[dict[str, object]] = []
    for simd_width in simd_widths:
        processor = SimdProcessor(simd_width)
        workload = convolution_kernel(simd_width, input_length=input_length, taps=taps, seed=seed)
        outputs, execution = run_convolution(processor, workload, batch=batch)
        if not np.array_equal(outputs, workload.reference_output()):
            raise AssertionError("SIMD convolution output mismatch")
        model = SimdPowerModel(simd_width)
        model.calibrate(execution)
        for technique, precision in TABLE_II_MODES:
            report_ = model.report(execution, technique=technique, precision=precision)
            fractions = report_.domain_fractions()
            label = report_.mode_label
            rows.append(
                {
                    "SW": simd_width,
                    "mode": label,
                    "Vnas": round(report_.nas_voltage, 2),
                    "Vas": round(report_.as_voltage, 2),
                    "mem %": round(100 * fractions["mem"]),
                    "nas %": round(100 * fractions["nas"]),
                    "as %": round(100 * fractions["as"]),
                    "P [mW]": round(report_.power_mw, 1),
                    "P paper [mW]": PAPER_TABLE_II_POWER.get((simd_width, label), "-"),
                }
            )
    return rows


def render(rows: list[dict[str, object]]) -> str:
    """Format rows (live or cached) as the Table II reproduction."""
    return format_table(rows, title="Table II: SIMD processor power distribution")


def report(**kwargs) -> str:
    """Formatted Table II reproduction."""
    return render(run(**kwargs))


if __name__ == "__main__":  # pragma: no cover - thin shim over the unified CLI
    from ..runner.cli import main

    raise SystemExit(main(["report", "table2"]))
