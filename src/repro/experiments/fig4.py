"""Fig. 4: SIMD-processor energy per word vs. precision (SW = 8 and 64).

Runs the convolution benchmark on the SIMD processor model -- through the
trace-compiled execution engine by default (``batch=True``), which produces
counters bit-identical to the cycle-level interpreter -- calibrates the
power model to the published full-precision reference point, and sweeps
DAS / DVAS / DVAFS across the 16 / 12 / 8 / 4 b precisions at constant
throughput, normalising to the 1 x 16 b point of the same SW.
"""

from __future__ import annotations

import numpy as np

from ..analysis.reporting import format_table
from ..simd import SimdPowerModel, SimdProcessor, convolution_kernel, run_convolution

#: Cacheable run() parameters (name -> default); the runner registry's schema.
PARAMS = {
    "simd_widths": (8, 64),
    "precisions": (16, 12, 8, 4),
    "input_length": 48,
    "taps": 9,
    "seed": 2017,
    "batch": True,
}


def run(
    *,
    simd_widths: tuple[int, ...] = (8, 64),
    precisions: tuple[int, ...] = (16, 12, 8, 4),
    input_length: int = 48,
    taps: int = 9,
    seed: int = 2017,
    batch: bool = True,
) -> list[dict[str, object]]:
    """One record per (SW, technique, precision) with relative energy per word."""
    rows: list[dict[str, object]] = []
    for simd_width in simd_widths:
        processor = SimdProcessor(simd_width)
        workload = convolution_kernel(simd_width, input_length=input_length, taps=taps, seed=seed)
        outputs, execution = run_convolution(processor, workload, batch=batch)
        if not np.array_equal(outputs, workload.reference_output()):
            raise AssertionError("SIMD convolution output mismatch")
        model = SimdPowerModel(simd_width)
        model.calibrate(execution)
        baseline = model.report(execution, technique="DAS", precision=16)
        for technique in ("DAS", "DVAS", "DVAFS"):
            for precision in precisions:
                if precision not in model.scaling_table:
                    continue
                report_ = model.report(execution, technique=technique, precision=precision)
                rows.append(
                    {
                        "simd_width": simd_width,
                        "technique": technique,
                        "precision": precision,
                        "mode": report_.mode_label,
                        "power_mw": round(report_.power_mw, 1),
                        "relative_energy_per_word": round(
                            report_.energy_per_word_pj / baseline.energy_per_word_pj, 4
                        ),
                    }
                )
    return rows


def render(rows: list[dict[str, object]]) -> str:
    """Format rows (live or cached) as the Fig. 4 reproduction."""
    return format_table(
        rows, title="Fig. 4: SIMD processor energy per word vs precision (constant throughput)"
    )


def report(**kwargs) -> str:
    """Formatted Fig. 4 reproduction."""
    return render(run(**kwargs))


if __name__ == "__main__":  # pragma: no cover - thin shim over the unified CLI
    from ..runner.cli import main

    raise SystemExit(main(["report", "fig4"]))
