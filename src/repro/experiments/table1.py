"""Table I: D(V)A(F)S scaling parameters of the 16-bit multiplier.

Re-extracts k0, k1, k2, k3, k4 (and k5) plus the subword parallelism N from
the structural multiplier models and prints them next to the values the
paper reports.
"""

from __future__ import annotations

from ..analysis.reporting import format_table
from ..core.power_model import PAPER_TABLE_I
from ..core.scaling import MultiplierCharacterization, resolve_characterization

#: Cacheable run() parameters (name -> default); the runner registry's schema.
PARAMS = {"samples": 300, "seed": 2017}
#: Object-valued run() parameters; passing one bypasses the result cache.
OBJECT_PARAMS = ("characterization",)
#: Shared sub-experiment intermediates (artifact -> (producer, params subset)).
ARTIFACTS = {
    "multiplier_characterization": (
        "repro.core.scaling:characterization_artifact",
        ("samples", "seed"),
    ),
}


def run(
    *, samples: int = 300, seed: int = 2017, characterization: MultiplierCharacterization | None = None
) -> list[dict[str, object]]:
    """Compute the Table I rows; returns one record per precision."""
    characterization = resolve_characterization(
        samples=samples, seed=seed, characterization=characterization
    )
    extracted = characterization.scaling_parameters()
    rows = []
    for precision in sorted(extracted, reverse=True):
        ours = extracted[precision]
        paper = PAPER_TABLE_I.get(precision)
        rows.append(
            {
                "precision": precision,
                "k0": round(ours.k0, 2),
                "k0 (paper)": paper.k0 if paper else "-",
                "k2": round(ours.k2, 2),
                "k2 (paper)": paper.k2 if paper else "-",
                "k3": round(ours.k3, 2),
                "k3 (paper)": paper.k3 if paper else "-",
                "k4": round(ours.k4, 2),
                "k4 (paper)": paper.k4 if paper else "-",
                "k5": round(ours.k5, 2),
                "N": ours.parallelism,
                "N (paper)": paper.parallelism if paper else "-",
            }
        )
    return rows


def render(rows: list[dict[str, object]]) -> str:
    """Format rows (live or cached) as the Table I reproduction."""
    return format_table(rows, title="Table I: D(V)A(F)S multiplier scaling parameters")


def report(**kwargs) -> str:
    """Formatted Table I reproduction."""
    return render(run(**kwargs))


if __name__ == "__main__":  # pragma: no cover - thin shim over the unified CLI
    from ..runner.cli import main

    raise SystemExit(main(["report", "table1"]))
