"""Table III: per-layer power and efficiency of VGG16, AlexNet and LeNet-5 on Envision.

Every layer runs in the smallest Envision mode covering its precision
requirement, at the constant-throughput frequency/voltage of that mode, with
its published weight / input sparsity driving the guarding model.  The layer
workloads default to the paper's published profile
(:data:`repro.envision.scheduler.PAPER_TABLE_III_WORKLOADS`); pass
``from_substrate=True`` to regenerate the workloads from our own CNN
substrate (MAC counts from the topology builders, sparsity measured on
synthetic data, precisions from the quantisation search defaults).
"""

from __future__ import annotations

from ..analysis.reporting import format_table
from ..envision import EnvisionScheduler, LayerWorkload, PAPER_TABLE_III_WORKLOADS
from ..nn import alexnet, lenet5, measure_sparsity, prune_network, synthetic_natural_images, vgg16

#: Cacheable run() parameters (name -> default); the runner registry's schema.
PARAMS = {"from_substrate": False, "seed": 2017, "batch": True}
#: Shared sub-experiment intermediates; the substrate workloads (MAC counts
#: + measured sparsity) are only derived -- and only produced -- when
#: ``from_substrate`` is set.
ARTIFACTS = {
    "table3_substrate_workloads": (
        "repro.experiments.table3:substrate_workloads",
        ("seed", "batch"),
        {"when": "from_substrate"},
    ),
}

#: Published per-layer power (mW) and efficiency (TOPS/W) for comparison.
PAPER_TABLE_III_RESULTS = {
    "VGG1": (25.0, 2.1),
    "VGG2-13": (27.0, 2.15),
    "AlexNet1": (37.0, 2.7),
    "AlexNet2": (20.0, 3.8),
    "AlexNet3": (52.0, 1.0),
    "AlexNet4-5": (60.0, 0.85),
    "LeNet1": (5.6, 13.6),
    "LeNet2": (29.0, 2.6),
}

#: Published totals: (power mW, TOPS/W).
PAPER_TABLE_III_TOTALS = {
    "VGG16": (26.0, 2.0),
    "AlexNet": (44.0, 1.8),
    "LeNet-5": (25.0, 3.0),
}


def substrate_workloads(*, seed: int = 2017, batch: bool = True) -> dict[str, list[LayerWorkload]]:
    """Layer workloads regenerated from the CNN substrate itself.

    MAC counts come from the full-resolution topology builders; weight
    sparsity from magnitude pruning at the paper's reported levels is
    approximated with a uniform 30 % prune; input sparsity is measured by
    running synthetic inputs through (reduced-resolution) instances; the
    precision requirements use the paper's per-network ranges.  ``batch``
    selects the vectorised batched forward for the sparsity probes (the
    default) or the per-sample reference path.
    """
    workloads: dict[str, list[LayerWorkload]] = {}
    precision_defaults = {"VGG16": (5, 6), "AlexNet": (8, 8), "LeNet-5": (3, 5)}
    for name, builder, probe_size in (
        ("VGG16", vgg16, 64),
        ("AlexNet", alexnet, 67),
        ("LeNet-5", lenet5, 28),
    ):
        full = builder()
        conv_summaries = [s for s in full.layer_summaries() if s.kind == "Conv2D"]
        if name == "LeNet-5":
            probe = builder(input_size=probe_size)
            samples = synthetic_natural_images(samples=4, size=probe_size, channels=1, seed=seed)
        else:
            probe = builder(input_size=probe_size)
            samples = synthetic_natural_images(samples=2, size=probe_size, seed=seed)
        prune_network(probe, 0.3)
        sparsity = {
            s.name: s
            for s in measure_sparsity(probe, samples.train_images, batch=batch)
        }
        weight_bits, activation_bits = precision_defaults[name]
        layer_workloads = []
        for summary in conv_summaries:
            layer_sparsity = sparsity.get(summary.name)
            layer_workloads.append(
                LayerWorkload(
                    name=f"{name}:{summary.name}",
                    macs=summary.macs,
                    weight_bits=weight_bits,
                    activation_bits=activation_bits,
                    weight_sparsity=layer_sparsity.weight_sparsity if layer_sparsity else 0.3,
                    input_sparsity=layer_sparsity.input_sparsity if layer_sparsity else 0.3,
                )
            )
        workloads[name] = layer_workloads
    return workloads


def resolve_substrate_workloads(
    *, seed: int = 2017, batch: bool = True
) -> dict[str, list[LayerWorkload]]:
    """Load-or-measure the substrate workloads through the artifact store."""
    from ..runner.artifacts import resolve_artifact

    return resolve_artifact(
        "table3_substrate_workloads",
        {"seed": seed, "batch": batch},
        producer=substrate_workloads,
    )


def run(
    *, from_substrate: bool = False, seed: int = 2017, batch: bool = True
) -> list[dict[str, object]]:
    """One record per Table III row plus a total row per network."""
    scheduler = EnvisionScheduler()
    workloads = (
        resolve_substrate_workloads(seed=seed, batch=batch)
        if from_substrate
        else PAPER_TABLE_III_WORKLOADS
    )
    rows: list[dict[str, object]] = []
    for network_name, layer_workloads in workloads.items():
        schedule = scheduler.schedule_network(network_name, layer_workloads)
        for execution in schedule.layers:
            paper_power, paper_eff = PAPER_TABLE_III_RESULTS.get(execution.layer, ("-", "-"))
            rows.append(
                {
                    "layer": execution.layer,
                    "mode": execution.mode_label,
                    "f [MHz]": execution.frequency_mhz,
                    "V [V]": execution.voltage,
                    "wght [b]": execution.weight_bits,
                    "in [b]": execution.activation_bits,
                    "wght sp": round(execution.weight_sparsity, 2),
                    "in sp": round(execution.input_sparsity, 2),
                    "MMACs": round(execution.mmacs, 1),
                    "P [mW]": round(execution.power_mw, 1),
                    "P paper": paper_power,
                    "Eff [TOPS/W]": round(execution.tops_per_watt, 2),
                    "Eff paper": paper_eff,
                }
            )
        paper_total_power, paper_total_eff = PAPER_TABLE_III_TOTALS.get(network_name, ("-", "-"))
        rows.append(
            {
                "layer": f"{network_name} TOTAL",
                "mode": "-",
                "f [MHz]": "-",
                "V [V]": "-",
                "wght [b]": "-",
                "in [b]": "-",
                "wght sp": "-",
                "in sp": "-",
                "MMACs": round(schedule.total_macs / 1e6, 1),
                "P [mW]": round(schedule.average_power_mw, 1),
                "P paper": paper_total_power,
                "Eff [TOPS/W]": round(schedule.tops_per_watt, 2),
                "Eff paper": paper_total_eff,
            }
        )
    return rows


def render(rows: list[dict[str, object]]) -> str:
    """Format rows (live or cached) as the Table III reproduction."""
    return format_table(rows, title="Table III: CNN benchmarks on Envision")


def report(**kwargs) -> str:
    """Formatted Table III reproduction."""
    return render(run(**kwargs))


if __name__ == "__main__":  # pragma: no cover - thin shim over the unified CLI
    from ..runner.cli import main

    raise SystemExit(main(["report", "table3"]))
