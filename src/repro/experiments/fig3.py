"""Fig. 3: multiplier energy-accuracy trade-off and baseline comparison.

* Fig. 3a -- energy per word of the DAS, DVAS and DVAFS multipliers vs.
  precision, normalised to the non-reconfigurable 16 b multiplier.
* Fig. 3b -- the same DVAFS curve on an RMSE axis, compared against the
  approximate-multiplier baselines [3], [3]+VS, [4], [5] and [8].
"""

from __future__ import annotations

import numpy as np

from ..analysis.reporting import format_table
from ..arithmetic.baselines import all_baseline_curves
from ..arithmetic.fixed_point import quantization_rmse
from ..core.pareto import TradeoffPoint, pareto_front
from ..core.scaling import (
    MultiplierCharacterization,
    multiplier_energy_curves,
    resolve_characterization,
)


#: Cacheable run() parameters (name -> default); the runner registry's schema.
PARAMS = {"samples": 300, "rmse_samples": 1500, "seed": 2017}
#: Object-valued run() parameters; passing one bypasses the result cache.
OBJECT_PARAMS = ("characterization",)
#: Shared sub-experiment intermediates (artifact -> (producer, params subset)).
ARTIFACTS = {
    "multiplier_characterization": (
        "repro.core.scaling:characterization_artifact",
        ("samples", "seed"),
    ),
}


def run_fig3a(
    *, samples: int = 300, seed: int = 2017, characterization: MultiplierCharacterization | None = None
) -> list[dict[str, object]]:
    """Energy/word (relative to the plain 16 b multiplier) per technique and precision."""
    characterization = resolve_characterization(
        samples=samples, seed=seed, characterization=characterization
    )
    rows = []
    for point in multiplier_energy_curves(characterization):
        rows.append(
            {
                "technique": point.technique,
                "precision": point.precision,
                "parallelism": point.parallelism,
                "relative_energy": round(point.relative_energy, 4),
                "energy_pj": round(point.energy_per_word_pj, 3),
                "as_voltage": round(point.voltage_as, 2),
                "frequency_mhz": point.frequency_mhz,
            }
        )
    return rows


def run_fig3b(
    *,
    samples: int = 300,
    rmse_samples: int = 1500,
    seed: int = 2017,
    characterization: MultiplierCharacterization | None = None,
) -> list[dict[str, object]]:
    """Relative energy vs. RMSE for DVAFS and the baselines of [3]-[5], [8]."""
    characterization = resolve_characterization(
        samples=samples, seed=seed, characterization=characterization
    )
    rng = np.random.default_rng(seed)
    operand_values = rng.uniform(-1.0, 1.0, size=rmse_samples)

    rows: list[dict[str, object]] = []
    for point in multiplier_energy_curves(characterization):
        if point.technique != "DVAFS":
            continue
        # RMSE of quantising both operands to `precision` bits, propagated to
        # the product of values in [-1, 1).
        input_rmse = quantization_rmse(point.precision, operand_values)
        product_rmse = float(np.sqrt(2.0) * input_rmse * np.mean(np.abs(operand_values)))
        rows.append(
            {
                "scheme": "DVAFS",
                "configuration": f"{point.parallelism}x{point.precision}b",
                "rmse": product_rmse,
                "relative_energy": round(point.relative_energy, 4),
                "runtime_adaptive": True,
            }
        )
    for name, points in all_baseline_curves().items():
        for baseline_point in points:
            rows.append(
                {
                    "scheme": name,
                    "configuration": baseline_point.label,
                    "rmse": baseline_point.rmse,
                    "relative_energy": round(baseline_point.relative_energy, 4),
                    "runtime_adaptive": baseline_point.runtime_adaptive,
                }
            )
    return rows


def dvafs_dominance(rows: list[dict[str, object]]) -> float:
    """Fraction of baseline points dominated by the DVAFS curve (Fig. 3b claim)."""
    dvafs = [
        TradeoffPoint(float(r["rmse"]), float(r["relative_energy"]), str(r["configuration"]))
        for r in rows
        if r["scheme"] == "DVAFS"
    ]
    others = [
        TradeoffPoint(float(r["rmse"]), float(r["relative_energy"]), str(r["configuration"]))
        for r in rows
        if r["scheme"] != "DVAFS"
    ]
    if not others:
        return 0.0
    front = pareto_front(dvafs + others)
    dvafs_on_front = sum(1 for point in front if any(point is d for d in dvafs))
    return dvafs_on_front / len(front)


def run(
    *,
    samples: int = 300,
    rmse_samples: int = 1500,
    seed: int = 2017,
    characterization: MultiplierCharacterization | None = None,
) -> list[dict[str, object]]:
    """Both panels' rows, tagged with a ``panel`` column (the Fig. 3 data)."""
    characterization = resolve_characterization(
        samples=samples, seed=seed, characterization=characterization
    )
    rows_a = run_fig3a(samples=samples, seed=seed, characterization=characterization)
    rows_b = run_fig3b(
        samples=samples, rmse_samples=rmse_samples, seed=seed, characterization=characterization
    )
    return [{"panel": "3a", **row} for row in rows_a] + [{"panel": "3b", **row} for row in rows_b]


def render(rows: list[dict[str, object]]) -> str:
    """Format rows (live or cached) as the two Fig. 3 panels."""
    def panel(tag: str) -> list[dict[str, object]]:
        return [
            {key: value for key, value in row.items() if key != "panel"}
            for row in rows
            if row.get("panel") == tag
        ]

    text = format_table(panel("3a"), title="Fig. 3a: multiplier energy per word vs precision")
    text += "\n"
    text += format_table(panel("3b"), title="Fig. 3b: relative energy vs RMSE (DVAFS vs baselines)")
    return text


def report(**kwargs) -> str:
    """Formatted Fig. 3a and Fig. 3b reproduction."""
    return render(run(**kwargs))


if __name__ == "__main__":  # pragma: no cover - thin shim over the unified CLI
    from ..runner.cli import main

    raise SystemExit(main(["report", "fig3"]))
