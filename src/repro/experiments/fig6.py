"""Fig. 6: minimum per-layer precision of LeNet-5 and AlexNet.

For every weighted layer the smallest weight and input-feature-map precision
is found that keeps the network at >= 99 % relative accuracy.

* **LeNet-5** is trained from scratch on the synthetic digit task (the MNIST
  stand-in) and evaluated against ground-truth labels.
* **AlexNet** is instantiated at reduced spatial resolution with synthetic
  weights and evaluated with the top-1-agreement proxy on synthetic natural
  images, because ImageNet is not available offline; the layer structure and
  therefore the depth-dependent error propagation are preserved.
"""

from __future__ import annotations

from ..analysis.reporting import format_table
from ..nn import (
    PrecisionSearch,
    Trainer,
    alexnet,
    lenet5,
    synthetic_digits,
    synthetic_natural_images,
)

#: Cacheable run() parameters (name -> default); the runner registry's schema.
#: ``evaluation_samples`` feeds the LeNet search; ``input_size`` the AlexNet
#: stand-in (see the per-network helpers for their individual defaults).
PARAMS = {
    "train_samples": 400,
    "test_samples": 100,
    "image_size": 16,
    "epochs": 6,
    "evaluation_samples": 40,
    "input_size": 67,
    "seed": 2017,
}


def run_lenet(
    *,
    train_samples: int = 400,
    test_samples: int = 100,
    image_size: int = 16,
    epochs: int = 6,
    evaluation_samples: int = 40,
    seed: int = 2017,
) -> list[dict[str, object]]:
    """Per-layer minimum precisions of a LeNet-5 trained on synthetic digits."""
    dataset = synthetic_digits(
        train_samples=train_samples, test_samples=test_samples, size=image_size, seed=seed
    )
    network = lenet5(input_size=image_size, seed=seed)
    trainer = Trainer(network, learning_rate=0.1)
    history = trainer.fit(dataset, epochs=epochs, batch_size=25, seed=seed)
    search = PrecisionSearch(
        network,
        dataset.test_images[:evaluation_samples],
        labels=dataset.test_labels[:evaluation_samples],
    )
    rows = []
    for index, profile in enumerate(search.profile()):
        rows.append(
            {
                "network": "LeNet-5",
                "layer_index": index,
                "layer": profile.layer,
                "weight_bits": profile.weight_bits,
                "activation_bits": profile.activation_bits,
                "baseline_accuracy": round(history.final_accuracy, 3),
            }
        )
    return rows


def run_alexnet(
    *,
    input_size: int = 67,
    evaluation_samples: int = 12,
    seed: int = 2017,
) -> list[dict[str, object]]:
    """Per-layer minimum precisions of the AlexNet stand-in (agreement proxy)."""
    network = alexnet(input_size=input_size, num_classes=50, seed=seed)
    dataset = synthetic_natural_images(
        samples=evaluation_samples, size=input_size, seed=seed, num_classes=10
    )
    search = PrecisionSearch(network, dataset.train_images[:evaluation_samples])
    rows = []
    for index, profile in enumerate(search.profile()):
        rows.append(
            {
                "network": "AlexNet",
                "layer_index": index,
                "layer": profile.layer,
                "weight_bits": profile.weight_bits,
                "activation_bits": profile.activation_bits,
                "baseline_accuracy": 1.0,
            }
        )
    return rows


#: run() keyword routing: which declared parameters feed which network.
_LENET_PARAMS = ("train_samples", "test_samples", "image_size", "epochs", "evaluation_samples", "seed")
_ALEXNET_PARAMS = ("input_size", "seed")


def run(**kwargs) -> list[dict[str, object]]:
    """Both networks' per-layer precision profiles (the Fig. 6 data)."""
    unknown = set(kwargs) - set(_LENET_PARAMS) - set(_ALEXNET_PARAMS)
    if unknown:
        raise TypeError(f"fig6.run() got unexpected keyword argument(s) {sorted(unknown)}")
    lenet_kwargs = {k: v for k, v in kwargs.items() if k in _LENET_PARAMS}
    alexnet_kwargs = {k: v for k, v in kwargs.items() if k in _ALEXNET_PARAMS}
    return run_lenet(**lenet_kwargs) + run_alexnet(**alexnet_kwargs)


def render(rows: list[dict[str, object]]) -> str:
    """Format rows (live or cached) as the Fig. 6 reproduction."""
    return format_table(
        rows,
        title="Fig. 6: minimum per-layer precision at 99% relative accuracy",
    )


def report(**kwargs) -> str:
    """Formatted Fig. 6 reproduction."""
    return render(run(**kwargs))


if __name__ == "__main__":  # pragma: no cover - thin shim over the unified CLI
    from ..runner.cli import main

    raise SystemExit(main(["report", "fig6"]))
