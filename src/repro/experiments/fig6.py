"""Fig. 6: minimum per-layer precision of LeNet-5 and AlexNet.

For every weighted layer the smallest weight and input-feature-map precision
is found that keeps the network at >= 99 % relative accuracy.

* **LeNet-5** is trained from scratch on the synthetic digit task (the MNIST
  stand-in) and evaluated against ground-truth labels.
* **AlexNet** is instantiated at reduced spatial resolution with synthetic
  weights and evaluated with the top-1-agreement proxy on synthetic natural
  images, because ImageNet is not available offline; the layer structure and
  therefore the depth-dependent error propagation are preserved.

Both searches flow through the cross-experiment artifact graph: the trained
LeNet is one content-addressed artifact, its per-layer profile a second
(produced *after* the first -- a two-wave DAG), and the AlexNet profile a
third.  The artifact producers run the search in ``incremental`` mode
(baseline prefix activations reused, certified early exit -- see
:class:`~repro.nn.precision_search.PrecisionSearch`), which is bit-identical
to the full-forward reference search that direct, store-less driver calls
keep using as the golden path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.reporting import format_table
from ..nn import (
    LayerPrecisionProfile,
    PrecisionSearch,
    alexnet,
    resolve_trained_lenet,
    synthetic_digits,
    synthetic_natural_images,
)

#: Cacheable run() parameters (name -> default); the runner registry's schema.
#: ``evaluation_samples`` feeds the LeNet search; ``input_size`` the AlexNet
#: stand-in (see the per-network helpers for their individual defaults).
PARAMS = {
    "train_samples": 400,
    "test_samples": 100,
    "image_size": 16,
    "epochs": 6,
    "evaluation_samples": 40,
    "input_size": 67,
    "seed": 2017,
}

#: Shared sub-experiment intermediates (artifact -> (producer, params subset)).
#: ``fig6_lenet_profile`` consumes ``lenet_state`` (a second topological
#: wave); the AlexNet profile is an independent wave-0 unit.
ARTIFACTS = {
    "lenet_state": (
        "repro.nn.training:lenet_state_artifact",
        ("train_samples", "test_samples", "image_size", "epochs", "seed"),
    ),
    "fig6_lenet_profile": (
        "repro.experiments.fig6:lenet_profile_artifact",
        ("train_samples", "test_samples", "image_size", "epochs", "evaluation_samples", "seed"),
        {"after": ("lenet_state",)},
    ),
    "fig6_alexnet_profile": (
        "repro.experiments.fig6:alexnet_profile_artifact",
        ("input_size", "seed"),
    ),
}

#: AlexNet evaluation-set size baked into the artifact (the run() schema
#: never varies it; direct calls overriding it bypass the store).
ALEXNET_EVALUATION_SAMPLES = 12


@dataclass(frozen=True)
class LenetPrecisionData:
    """Fig. 6's LeNet intermediate: per-layer profile + training accuracy."""

    profiles: tuple[LayerPrecisionProfile, ...]
    baseline_accuracy: float


def _lenet_profile(
    *,
    train_samples: int,
    test_samples: int,
    image_size: int,
    epochs: int,
    evaluation_samples: int,
    seed: int,
    incremental: bool,
) -> LenetPrecisionData:
    """LeNet per-layer precision profile on the held-out digits.

    Resolves the trained network through the store (a wave-0 artifact on
    scheduled runs, trained inline otherwise) and runs the search with the
    requested evaluation mode.
    """
    trained = resolve_trained_lenet(
        train_samples=train_samples,
        test_samples=test_samples,
        image_size=image_size,
        epochs=epochs,
        seed=seed,
    )
    dataset = synthetic_digits(
        train_samples=train_samples, test_samples=test_samples, size=image_size, seed=seed
    )
    search = PrecisionSearch(
        trained.network,
        dataset.test_images[:evaluation_samples],
        labels=dataset.test_labels[:evaluation_samples],
    )
    return LenetPrecisionData(
        profiles=tuple(search.profile(incremental=incremental)),
        baseline_accuracy=trained.history.final_accuracy,
    )


def lenet_profile_artifact(
    *,
    train_samples: int,
    test_samples: int,
    image_size: int,
    epochs: int,
    evaluation_samples: int,
    seed: int,
) -> LenetPrecisionData:
    """Artifact producer: the LeNet profile via the incremental search."""
    return _lenet_profile(
        train_samples=train_samples,
        test_samples=test_samples,
        image_size=image_size,
        epochs=epochs,
        evaluation_samples=evaluation_samples,
        seed=seed,
        incremental=True,
    )


def _alexnet_search(*, input_size: int, evaluation_samples: int, seed: int) -> PrecisionSearch:
    network = alexnet(input_size=input_size, num_classes=50, seed=seed)
    dataset = synthetic_natural_images(
        samples=evaluation_samples, size=input_size, seed=seed, num_classes=10
    )
    return PrecisionSearch(network, dataset.train_images[:evaluation_samples])


def alexnet_profile_artifact(
    *, input_size: int, seed: int
) -> tuple[LayerPrecisionProfile, ...]:
    """Artifact producer: the AlexNet profile via the incremental search."""
    search = _alexnet_search(
        input_size=input_size, evaluation_samples=ALEXNET_EVALUATION_SAMPLES, seed=seed
    )
    return tuple(search.profile(incremental=True))


def resolve_alexnet_profiles(
    *,
    input_size: int,
    seed: int,
    evaluation_samples: int = ALEXNET_EVALUATION_SAMPLES,
) -> list[LayerPrecisionProfile]:
    """AlexNet per-layer profiles, through the store when possible.

    With an active store (and the standard evaluation-set size) the profile
    resolves from the artifact produced by the scheduler's wave via the
    incremental search; without one, the full-forward reference search runs
    inline.  The two paths are bit-identical
    (``tests/test_artifacts.py`` gates the equivalence).
    """
    from ..runner.artifacts import active_store, resolve_artifact

    if evaluation_samples == ALEXNET_EVALUATION_SAMPLES and active_store() is not None:
        return list(
            resolve_artifact(
                "fig6_alexnet_profile",
                {"input_size": input_size, "seed": seed},
                producer=alexnet_profile_artifact,
            )
        )
    search = _alexnet_search(
        input_size=input_size, evaluation_samples=evaluation_samples, seed=seed
    )
    return search.profile()


def run_lenet(
    *,
    train_samples: int = 400,
    test_samples: int = 100,
    image_size: int = 16,
    epochs: int = 6,
    evaluation_samples: int = 40,
    seed: int = 2017,
) -> list[dict[str, object]]:
    """Per-layer minimum precisions of a LeNet-5 trained on synthetic digits."""
    from ..runner.artifacts import active_store, resolve_artifact

    if active_store() is not None:
        data = resolve_artifact(
            "fig6_lenet_profile",
            {
                "train_samples": train_samples,
                "test_samples": test_samples,
                "image_size": image_size,
                "epochs": epochs,
                "evaluation_samples": evaluation_samples,
                "seed": seed,
            },
            producer=lenet_profile_artifact,
        )
    else:
        data = _lenet_profile(
            train_samples=train_samples,
            test_samples=test_samples,
            image_size=image_size,
            epochs=epochs,
            evaluation_samples=evaluation_samples,
            seed=seed,
            incremental=False,
        )
    rows = []
    for index, profile in enumerate(data.profiles):
        rows.append(
            {
                "network": "LeNet-5",
                "layer_index": index,
                "layer": profile.layer,
                "weight_bits": profile.weight_bits,
                "activation_bits": profile.activation_bits,
                "baseline_accuracy": round(data.baseline_accuracy, 3),
            }
        )
    return rows


def run_alexnet(
    *,
    input_size: int = 67,
    evaluation_samples: int = ALEXNET_EVALUATION_SAMPLES,
    seed: int = 2017,
) -> list[dict[str, object]]:
    """Per-layer minimum precisions of the AlexNet stand-in (agreement proxy)."""
    profiles = resolve_alexnet_profiles(
        input_size=input_size, seed=seed, evaluation_samples=evaluation_samples
    )
    rows = []
    for index, profile in enumerate(profiles):
        rows.append(
            {
                "network": "AlexNet",
                "layer_index": index,
                "layer": profile.layer,
                "weight_bits": profile.weight_bits,
                "activation_bits": profile.activation_bits,
                "baseline_accuracy": 1.0,
            }
        )
    return rows


#: run() keyword routing: which declared parameters feed which network.
_LENET_PARAMS = ("train_samples", "test_samples", "image_size", "epochs", "evaluation_samples", "seed")
_ALEXNET_PARAMS = ("input_size", "seed")


def run(**kwargs) -> list[dict[str, object]]:
    """Both networks' per-layer precision profiles (the Fig. 6 data)."""
    unknown = set(kwargs) - set(_LENET_PARAMS) - set(_ALEXNET_PARAMS)
    if unknown:
        raise TypeError(f"fig6.run() got unexpected keyword argument(s) {sorted(unknown)}")
    lenet_kwargs = {k: v for k, v in kwargs.items() if k in _LENET_PARAMS}
    alexnet_kwargs = {k: v for k, v in kwargs.items() if k in _ALEXNET_PARAMS}
    return run_lenet(**lenet_kwargs) + run_alexnet(**alexnet_kwargs)


def render(rows: list[dict[str, object]]) -> str:
    """Format rows (live or cached) as the Fig. 6 reproduction."""
    return format_table(
        rows,
        title="Fig. 6: minimum per-layer precision at 99% relative accuracy",
    )


def report(**kwargs) -> str:
    """Formatted Fig. 6 reproduction."""
    return render(run(**kwargs))


if __name__ == "__main__":  # pragma: no cover - thin shim over the unified CLI
    from ..runner.cli import main

    raise SystemExit(main(["report", "fig6"]))
