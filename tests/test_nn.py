"""Unit and integration tests for the CNN substrate."""

import numpy as np
import pytest

from repro.nn import (
    Conv2D,
    Flatten,
    FullyConnected,
    MaxPool2D,
    Network,
    PrecisionSearch,
    QuantizationConfig,
    ReLU,
    alexnet,
    lenet5,
    measure_sparsity,
    prune_network,
    quantization_error,
    quantize,
    synthetic_digits,
    synthetic_natural_images,
    vgg16,
)
from repro.nn.training import cross_entropy_loss, softmax


class TestQuantization:
    def test_full_precision_none_is_identity(self):
        values = np.array([0.1, -0.7, 2.5])
        assert np.array_equal(quantize(values, None), values)

    def test_error_decreases_with_bits(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=1000)
        assert quantization_error(values, 4) > quantization_error(values, 8) > quantization_error(values, 12)

    def test_binary_quantization(self):
        values = np.array([0.5, -0.25, 0.75])
        binary = quantize(values, 1)
        assert set(np.sign(binary)) <= {-1.0, 1.0}
        assert len(set(np.abs(binary))) == 1

    def test_quantized_values_on_grid(self):
        values = np.array([0.3, -0.45, 0.11])
        quantized = quantize(values, 6)
        from repro.nn.quantization import quantization_scale

        scale = quantization_scale(values, 6)
        assert np.allclose(quantized / scale, np.round(quantized / scale))

    def test_config_required_bits(self):
        assert QuantizationConfig(weight_bits=5, activation_bits=9).required_bits == 9
        assert QuantizationConfig().required_bits == 16


class TestLayers:
    def test_conv_matches_manual_computation(self):
        conv = Conv2D(1, 1, 2, name="c")
        conv.weights = np.array([[[[1.0, 0.0], [0.0, -1.0]]]])
        conv.bias = np.array([0.5])
        inputs = np.arange(9, dtype=float).reshape(1, 3, 3)
        outputs = conv.forward(inputs)
        assert outputs.shape == (1, 2, 2)
        assert outputs[0, 0, 0] == pytest.approx(inputs[0, 0, 0] - inputs[0, 1, 1] + 0.5)

    def test_conv_stride_and_padding_shapes(self):
        conv = Conv2D(3, 8, 3, stride=2, padding=1)
        assert conv.output_shape((3, 16, 16)) == (8, 8, 8)

    def test_grouped_conv_macs_halved(self):
        plain = Conv2D(4, 4, 3)
        grouped = Conv2D(4, 4, 3, groups=2)
        assert grouped.macs((4, 8, 8)) == plain.macs((4, 8, 8)) // 2

    def test_grouped_conv_forward_block_diagonal(self):
        grouped = Conv2D(2, 2, 1, groups=2, name="g")
        grouped.weights = np.ones_like(grouped.weights)
        grouped.bias = np.zeros(2)
        inputs = np.stack([np.full((2, 2), 3.0), np.full((2, 2), 5.0)])
        outputs = grouped.forward(inputs)
        assert np.allclose(outputs[0], 3.0)
        assert np.allclose(outputs[1], 5.0)

    def test_relu_and_pool(self):
        relu = ReLU()
        assert np.array_equal(relu.forward(np.array([[[-1.0, 2.0]]])), np.array([[[0.0, 2.0]]]))
        pool = MaxPool2D(2)
        inputs = np.arange(16, dtype=float).reshape(1, 4, 4)
        pooled = pool.forward(inputs)
        assert pooled.shape == (1, 2, 2)
        assert pooled[0, 0, 0] == 5.0

    def test_fully_connected(self):
        fc = FullyConnected(3, 2)
        fc.weights = np.array([[1.0, 0.0, -1.0], [0.5, 0.5, 0.5]])
        fc.bias = np.array([0.0, 1.0])
        outputs = fc.forward(np.array([2.0, 4.0, 6.0]))
        assert outputs == pytest.approx([-4.0, 7.0])

    def test_channel_mismatch_rejected(self):
        conv = Conv2D(3, 4, 3)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 8, 8)))


class TestNetworkAndModels:
    def test_lenet_macs_match_table3(self):
        summaries = {s.name: s for s in lenet5().layer_summaries()}
        assert summaries["conv1"].mmacs == pytest.approx(0.29, abs=0.02)
        assert summaries["conv2"].mmacs == pytest.approx(1.60, abs=0.05)

    def test_alexnet_macs_match_table3(self):
        convs = [s for s in alexnet().layer_summaries() if s.kind == "Conv2D"]
        expected = [105, 224, 150, 112, 75]
        for summary, value in zip(convs, expected):
            assert summary.mmacs == pytest.approx(value, rel=0.03)
        assert sum(s.mmacs for s in convs) == pytest.approx(666, rel=0.02)

    def test_vgg16_macs_match_table3(self):
        convs = [s for s in vgg16().layer_summaries() if s.kind == "Conv2D"]
        assert len(convs) == 13
        assert convs[0].mmacs == pytest.approx(87, rel=0.02)
        assert max(s.mmacs for s in convs) == pytest.approx(1850, rel=0.02)
        assert sum(s.mmacs for s in convs) == pytest.approx(15346, rel=0.02)

    def test_forward_shapes(self):
        network = lenet5(input_size=16)
        output = network.forward(np.zeros((1, 16, 16)))
        assert output.shape == (10,)

    def test_per_layer_quantization_changes_output(self):
        network = lenet5(input_size=16)
        sample = np.random.default_rng(0).random((1, 16, 16))
        full = network.forward(sample)
        quantized = network.forward(sample, configs={"conv1": QuantizationConfig(weight_bits=2)})
        assert not np.allclose(full, quantized)

    def test_duplicate_layer_names_rejected(self):
        layers = [Flatten(), FullyConnected(4, 4, name="fc"), FullyConnected(4, 2, name="fc")]
        with pytest.raises(ValueError):
            Network(layers, (2, 2))

    def test_unknown_model_name(self):
        from repro.nn import build_model

        with pytest.raises(KeyError):
            build_model("resnet50")


class TestTraining:
    def test_softmax_normalised(self):
        probabilities = softmax(np.array([[1.0, 2.0, 3.0]]))
        assert probabilities.sum() == pytest.approx(1.0)

    def test_cross_entropy_gradient_direction(self):
        logits = np.array([[2.0, 0.0]])
        labels = np.array([1])
        _, gradient = cross_entropy_loss(logits, labels)
        assert gradient[0, 1] < 0 < gradient[0, 0]

    def test_lenet_learns_synthetic_digits(self, trained_lenet):
        _, history = trained_lenet
        assert history.final_accuracy > 0.75

    def test_loss_decreases(self, trained_lenet):
        _, history = trained_lenet
        assert history.epoch_losses[-1] < history.epoch_losses[0]


class TestSparsityAndSearch:
    def test_pruning_creates_weight_sparsity(self):
        network = lenet5(input_size=16)
        prune_network(network, 0.5)
        for layer in network.weighted_layers():
            assert layer.weight_sparsity() == pytest.approx(0.5, abs=0.05)

    def test_relu_creates_input_sparsity(self, trained_lenet, digit_dataset):
        network, _ = trained_lenet
        report = measure_sparsity(network, digit_dataset.test_images[:10])
        by_name = {entry.name: entry for entry in report}
        # Layers behind a ReLU see many zero activations.
        assert by_name["conv2"].input_sparsity > 0.2
        assert by_name["fc1"].input_sparsity > 0.2
        assert 0.0 <= by_name["conv1"].input_sparsity <= 1.0

    def test_precision_search_monotone_threshold(self, trained_lenet, digit_dataset):
        network, _ = trained_lenet
        search = PrecisionSearch(
            network, digit_dataset.test_images[:30], labels=digit_dataset.test_labels[:30]
        )
        bits_strict = search.minimum_bits_for_layer("conv1", target="weights")
        relaxed = PrecisionSearch(
            network,
            digit_dataset.test_images[:30],
            labels=digit_dataset.test_labels[:30],
            relative_accuracy_target=0.5,
        )
        bits_relaxed = relaxed.minimum_bits_for_layer("conv1", target="weights")
        assert bits_relaxed <= bits_strict <= 10

    def test_precision_search_agreement_proxy(self):
        network = lenet5(input_size=16, seed=3)
        samples = synthetic_natural_images(samples=8, size=16, channels=1, seed=3).train_images
        search = PrecisionSearch(network, samples)
        assert search.baseline_accuracy() == 1.0
        profile = search.profile()
        assert all(1 <= p.weight_bits <= 16 for p in profile)

    def test_synthetic_digits_are_classifiable_shapes(self):
        dataset = synthetic_digits(train_samples=20, test_samples=5, size=16, seed=1)
        assert dataset.train_images.shape == (20, 1, 16, 16)
        assert dataset.num_classes == 10
        assert dataset.train_images.max() <= 1.0
