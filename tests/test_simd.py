"""Unit and integration tests for the SIMD processor substrate."""

import numpy as np
import pytest

from repro.simd import (
    AssemblerError,
    Opcode,
    SimdPowerModel,
    SimdProcessor,
    assemble,
    convolution_kernel,
    run_convolution,
)


class TestAssembler:
    def test_basic_program(self):
        program = assemble("li r1, 5\naddi r1, r1, 3\nhalt\n")
        assert len(program) == 3
        assert program[0].opcode == Opcode.LI

    def test_labels_and_branches(self):
        program = assemble(
            """
            li r1, 0
            loop: addi r1, r1, 1
            blt r1, r2, loop
            halt
            """
        )
        assert program.labels["loop"] == 1
        assert program[2].operands[2] == 1

    def test_comments_and_hex(self):
        program = assemble("li r1, 0x10 ; comment\n# another\nhalt\n")
        assert program[0].operands == (1, 16)

    def test_unknown_opcode(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate r1, r2\n")

    def test_undefined_label(self):
        with pytest.raises(AssemblerError):
            assemble("jmp nowhere\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r2\n")

    def test_disassembly_roundtrip_length(self):
        source = "li r1, 3\nvclr\nhalt\n"
        program = assemble(source)
        listing = program.disassemble()
        assert "vclr" in listing and "halt" in listing


class TestProcessorScalar:
    def _run(self, source):
        processor = SimdProcessor(4)
        result = processor.run(assemble(source))
        return processor, result

    def test_arithmetic(self):
        processor, _ = self._run("li r1, 7\nli r2, 5\nadd r3, r1, r2\nsub r4, r1, r2\nmul r5, r1, r2\nhalt\n")
        registers = processor.scalar_registers.dump()
        assert registers[3] == 12 and registers[4] == 2 and registers[5] == 35

    def test_r0_is_zero(self):
        processor, _ = self._run("li r0, 99\nadd r1, r0, r0\nhalt\n")
        assert processor.scalar_registers.dump()[0] == 0
        assert processor.scalar_registers.dump()[1] == 0

    def test_loop_counts_cycles(self):
        _, result = self._run(
            "li r1, 0\nli r2, 10\nloop: addi r1, r1, 1\nblt r1, r2, loop\nhalt\n"
        )
        assert result.counters.branches_taken == 9
        assert result.halted

    def test_watchdog(self):
        processor = SimdProcessor(2)
        program = assemble("loop: jmp loop\nhalt\n")
        from repro.simd import ExecutionError

        with pytest.raises(ExecutionError):
            processor.run(program, max_cycles=100)


class TestProcessorVector:
    def test_vector_mac_pipeline(self):
        processor = SimdProcessor(4)
        for bank in range(4):
            processor.memory.load_bank(bank, 0, np.array([bank + 1, 2]))
            processor.memory.load_bank(bank, 10, np.array([3, 4]))
        program = assemble(
            """
            vclr
            vload v0, r0, 0
            vload v1, r0, 10
            vmac v0, v1
            vload v0, r0, 1
            vload v1, r0, 11
            vmac v0, v1
            vstacc v2
            vstore v2, r0, 20
            halt
            """
        )
        processor.run(program)
        outputs = [int(processor.memory.dump_bank(bank, 20, 1)[0]) for bank in range(4)]
        assert outputs == [(bank + 1) * 3 + 2 * 4 for bank in range(4)]

    def test_setprec_changes_mode(self):
        processor = SimdProcessor(4)
        result = processor.run(assemble("setprec 4\nhalt\n"))
        assert result.precision_bits == 4
        assert result.parallelism == 4

    def test_relu_clamps_negative(self):
        processor = SimdProcessor(2)
        processor.memory.load_bank(0, 0, np.array([-5]))
        processor.memory.load_bank(1, 0, np.array([7]))
        processor.run(assemble("vload v0, r0, 0\nvrelu v1, v0\nvstore v1, r0, 1\nhalt\n"))
        assert int(processor.memory.dump_bank(0, 1, 1)[0]) == 0
        assert int(processor.memory.dump_bank(1, 1, 1)[0]) == 7


class TestConvolutionKernel:
    def test_output_matches_reference(self, simd_execution):
        workload, outputs, _ = simd_execution
        assert np.array_equal(outputs, workload.reference_output())

    def test_mac_count_accounting(self, simd_execution):
        workload, _, result = simd_execution
        # One VMAC instruction per (output, tap); each does one MAC per lane.
        vmacs = result.counters.opcode_histogram["vmac"]
        assert vmacs == workload.output_length * workload.taps
        assert workload.macs == vmacs * workload.inputs.shape[0]

    def test_sparsity_increases_guarding(self):
        processor = SimdProcessor(4, guard_zero_operands=True)
        workload = convolution_kernel(4, input_length=24, taps=3, sparsity=0.6, seed=3)
        run_convolution(processor, workload)
        assert processor.vector_unit.counters.guarded_macs > 0

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            convolution_kernel(4, input_length=4, taps=8)


class TestWordsProcessed:
    def test_accounts_lanes_and_parallelism(self):
        """words_processed = vector-ALU instructions x lanes x parallelism.

        Regression test: the old implementation returned the raw vector-ALU
        instruction count, ignoring both the SIMD width and the packed
        subwords despite documenting "lanes x subwords x cycles".
        """
        source = "vclr\nvbcast v0, r0\nvstacc v1\nhalt\n"
        processor = SimdProcessor(8)
        result = processor.run(assemble(source))
        assert result.counters.vector_alu_instructions == 3
        assert result.lanes == 8
        assert result.parallelism == 1
        assert result.words_processed == 3 * 8

        packed = SimdProcessor(8)
        result = packed.run(assemble("setprec 4\n" + source))
        assert result.parallelism == 4
        assert result.words_processed == 3 * 8 * 4

    def test_matches_power_model_word_accounting(self, simd_execution):
        """The per-word energy denominator of the power model must agree with
        the execution result's own word count at the executed mode."""
        from repro.simd import SimdPowerModel

        _, _, result = simd_execution
        model = SimdPowerModel(8)
        report = model.report(result, technique="DAS", precision=16)
        assert report.words == result.words_processed


class TestSimdPowerModel:
    def test_calibration_hits_reference_point(self, simd_execution):
        _, _, result = simd_execution
        model = SimdPowerModel(8)
        model.calibrate(result)
        report = model.report(result, technique="DAS", precision=16)
        assert report.power_mw == pytest.approx(36.0, rel=0.02)
        fractions = report.domain_fractions()
        assert fractions["mem"] == pytest.approx(0.31, abs=0.02)
        assert fractions["nas"] == pytest.approx(0.46, abs=0.02)
        assert fractions["as"] == pytest.approx(0.23, abs=0.02)

    def test_mode_ordering_table2(self, simd_execution):
        """Total power per mode must follow Table II: 1x16b > 1x8b > 1x4b > 2x8b > 4x4b."""
        _, _, result = simd_execution
        model = SimdPowerModel(8)
        model.calibrate(result)
        powers = [
            model.report(result, technique=tech, precision=prec).power_mw
            for tech, prec in [("DAS", 16), ("DVAS", 8), ("DVAS", 4), ("DVAFS", 8), ("DVAFS", 4)]
        ]
        assert powers == sorted(powers, reverse=True)

    def test_dvafs_4b_saves_at_least_80_percent(self, simd_execution):
        """The paper reports ~85 % energy reduction at 4x4b for the SW=8 processor."""
        _, _, result = simd_execution
        model = SimdPowerModel(8)
        model.calibrate(result)
        baseline = model.report(result, technique="DAS", precision=16)
        dvafs = model.report(result, technique="DVAFS", precision=4)
        saving = 1.0 - dvafs.energy_per_word_pj / baseline.energy_per_word_pj
        assert saving > 0.80

    def test_memory_fraction_grows_in_subword_modes(self, simd_execution):
        _, _, result = simd_execution
        model = SimdPowerModel(8)
        model.calibrate(result)
        base = model.report(result, technique="DAS", precision=16).domain_fractions()["mem"]
        dvafs = model.report(result, technique="DVAFS", precision=4).domain_fractions()["mem"]
        assert dvafs > base

    def test_unknown_precision_rejected(self, simd_execution):
        _, _, result = simd_execution
        model = SimdPowerModel(8)
        with pytest.raises(KeyError):
            model.report(result, technique="DAS", precision=5)

    def test_unknown_technique_rejected(self, simd_execution):
        _, _, result = simd_execution
        model = SimdPowerModel(8)
        with pytest.raises(ValueError):
            model.report(result, technique="DVFS")
