"""Networked store suite: protocol, deadlines, retries, breaker, tiering.

The backend *contract* over the wire lives in ``test_stores.py`` (the
remote parametrization of the shared suite); this file covers what is
specific to the network: the frame format and its bounds, per-operation
deadlines, bounded retries with deterministic backoff, the circuit
breaker's closed -> open -> half-open lifecycle, and the tiered
composition that degrades to local disk when the server is gone --
including the acceptance property that a dead server costs latency,
never correctness (rows stay bit-identical to a local-only run).
"""

from __future__ import annotations

import importlib
import json
import socket
import time
import uuid

import pytest

from repro.faults import injected
from repro.runner.artifacts import load_stats
from repro.runner.backends import DiskBackend
from repro.runner.cache import ResultCache
from repro.runner.cli import main
from repro.runner.netstore import (
    MAX_HEADER_BYTES,
    _FRAME_HEADER,
    CircuitBreaker,
    RemoteBackend,
    StoreProtocolError,
    StoreServer,
    StoreUnavailableError,
    make_store_backend,
    parse_store_url,
    read_frame,
    write_frame,
)
from repro.runner.registry import ExperimentSpec
from repro.runner.service import ExperimentRunner


def _dead_url():
    """A url nothing listens on (bind an ephemeral port, then free it)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"tcp://127.0.0.1:{port}"


@pytest.fixture()
def server(tmp_path):
    with StoreServer(tmp_path / "server") as running:
        yield running


# -- url parsing --------------------------------------------------------------------


class TestUrls:
    def test_accepted_shapes(self):
        assert parse_store_url("tcp://stores.example:8484") == ("stores.example", 8484)
        assert parse_store_url("127.0.0.1:9") == ("127.0.0.1", 9)

    @pytest.mark.parametrize(
        "bad",
        ["http://host:1", "hostonly", "host:", ":8484", "host:notaport", "host:0", "host:70000"],
    )
    def test_rejected_shapes(self, bad):
        with pytest.raises(ValueError):
            parse_store_url(bad)


# -- framing ------------------------------------------------------------------------


class TestFraming:
    def test_round_trip_header_and_blob(self):
        left, right = socket.socketpair()
        try:
            write_frame(left, {"op": "put", "ns": "n"}, b"payload-bytes")
            header, blob = read_frame(right)
            assert header == {"op": "put", "ns": "n"}
            assert blob == b"payload-bytes"
        finally:
            left.close()
            right.close()

    def test_clean_close_raises_eof(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(EOFError):
                read_frame(right)
        finally:
            right.close()

    def test_torn_frame_is_a_protocol_error(self):
        left, right = socket.socketpair()
        try:
            left.sendall(_FRAME_HEADER.pack(10, 0) + b"abc")  # 7 bytes short
            left.close()
            with pytest.raises(StoreProtocolError, match="mid-frame"):
                read_frame(right)
        finally:
            right.close()

    def test_oversized_lengths_are_rejected_without_allocating(self):
        left, right = socket.socketpair()
        try:
            left.sendall(_FRAME_HEADER.pack(MAX_HEADER_BYTES + 1, 0))
            with pytest.raises(StoreProtocolError, match="too large"):
                read_frame(right)
        finally:
            left.close()
            right.close()

    def test_undecodable_header_is_a_protocol_error(self):
        left, right = socket.socketpair()
        try:
            garbage = b"\xde\xad\xbe\xef"
            left.sendall(_FRAME_HEADER.pack(len(garbage), 0) + garbage)
            with pytest.raises(StoreProtocolError, match="undecodable"):
                read_frame(right)
        finally:
            left.close()
            right.close()


# -- server + client basics ---------------------------------------------------------


class TestServerBasics:
    def test_ping_reports_server_identity(self, server):
        remote = RemoteBackend(server.url)
        identity = remote.ping()
        assert identity is not None and identity["root"] == str(server.root)
        remote.close()

    def test_application_errors_answer_without_tripping_the_breaker(self, server):
        remote = RemoteBackend(server.url, retries=0)
        with pytest.raises(StoreProtocolError, match="unknown op"):
            remote._call("frobnicate", namespace="ns", filename="f.json")
        with pytest.raises(StoreProtocolError, match="unknown subroot"):
            RemoteBackend(server.url, subroot="nope")._call("ping")
        # A coherent error reply is the server *working*: the same
        # connection keeps serving and the breaker never counts it.
        assert remote.breaker_state == "closed"
        assert remote.get("ns", "missing.json") is None
        remote.close()

    def test_artifact_subroot_is_isolated_from_results(self, server):
        results = RemoteBackend(server.url)
        artifacts = RemoteBackend(server.url, subroot="artifacts")
        results.put("ns", "a.json", b"result")
        artifacts.put("ns", "a.json", b"artifact")
        assert results.get("ns", "a.json") == b"result"
        assert artifacts.get("ns", "a.json") == b"artifact"
        assert (server.root / "artifacts" / "ns" / "a.json").read_bytes() == b"artifact"
        results.close()
        artifacts.close()

    def test_server_side_byte_budget_evicts_lru(self, tmp_path):
        with StoreServer(tmp_path / "server", max_bytes=250) as server:
            remote = RemoteBackend(server.url)
            for index in range(4):
                remote.put("ns", f"{index}.json", b"x" * 100)
                time.sleep(0.01)
            survivors = [filename for _ns, filename in remote.iter()]
            assert len(survivors) == 2  # the budget pruned the two oldest
            assert "3.json" in survivors  # newest always survives
            remote.close()


# -- deadlines, retries, breaker ----------------------------------------------------


class TestDeadlinesAndRetries:
    def test_hung_server_is_bounded_by_the_deadline(self, server):
        remote = RemoteBackend(server.url, timeout=0.3, retries=0)
        remote.put("ns", "k.json", b"blob")  # connection warm, server healthy
        with injected("net.server:hang:seconds=5:match=get"):
            start = time.monotonic()
            with pytest.raises(StoreUnavailableError):
                remote.get("ns", "k.json")
            assert time.monotonic() - start < 3.0  # deadline, not the hang
        remote.close()

    def test_transient_fault_is_absorbed_by_one_retry(self, server):
        remote = RemoteBackend(server.url, retries=1)
        remote.put("ns", "k.json", b"blob")
        with injected("net.send:exc:times=1:match=get"):
            assert remote.get("ns", "k.json") == b"blob"
        assert remote.breaker_state == "closed"  # the retry succeeded in time
        assert remote.errors_total == 0  # only exhausted retries count
        remote.close()

    def test_exhausted_retries_raise_and_count(self):
        remote = RemoteBackend(_dead_url(), timeout=0.2, retries=1, breaker_failures=5)
        with pytest.raises(StoreUnavailableError, match="after 2 attempt"):
            remote.get("ns", "k.json")
        assert remote.errors_total == 1
        assert remote.drain_counters()["remote_errors"] == 1
        assert remote.drain_counters()["remote_errors"] == 0  # drained


class TestCircuitBreaker:
    def test_lifecycle_closed_open_half_open_closed(self):
        breaker = CircuitBreaker(failures=2, reset_seconds=0.05)
        assert breaker.allow() and breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "closed"  # one failure is not an outage
        breaker.record_failure()
        assert breaker.state == "open" and breaker.opens == 1
        assert not breaker.allow()  # fast-fail during cooldown
        time.sleep(0.06)
        assert breaker.allow() and breaker.state == "half_open"
        breaker.record_failure()  # the probe failed: re-open
        assert breaker.state == "open" and not breaker.allow()
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()
        assert breaker.opens == 1  # re-opens of one outage are one open
        assert breaker.degraded_seconds() >= 0.1  # both cooldowns counted

    def test_open_circuit_fast_fails_without_the_network(self):
        remote = RemoteBackend(_dead_url(), timeout=0.2, retries=0, breaker_failures=1)
        with pytest.raises(StoreUnavailableError):
            remote.get("ns", "k.json")  # trips the breaker open
        assert remote.breaker_state == "open"
        start = time.monotonic()
        with pytest.raises(StoreUnavailableError, match="circuit open"):
            remote.get("ns", "k.json")
        assert time.monotonic() - start < 0.05  # no connect attempt at all
        assert remote.drain_counters()["breaker_opens"] == 1

    def test_half_open_probe_recovers_when_the_server_returns(self, tmp_path):
        root = tmp_path / "server"
        with StoreServer(root) as server:
            url = server.url
            port = server.port
        remote = RemoteBackend(url, timeout=0.3, retries=0, breaker_failures=1,
                               breaker_reset_seconds=0.05)
        with pytest.raises(StoreUnavailableError):
            remote.get("ns", "k.json")
        assert remote.breaker_state == "open"
        # The server comes back on the same port; the half-open probe heals.
        with StoreServer(root, port=port):
            time.sleep(0.06)
            assert remote.get("ns", "missing.json") is None  # a served miss
            assert remote.breaker_state == "closed"
            assert remote.degraded_seconds() > 0.0
        remote.close()


# -- tiered composition -------------------------------------------------------------


class TestTiered:
    def test_put_writes_through_and_get_prefers_local(self, tmp_path, server):
        tiered = make_store_backend(tmp_path / "local", server.url)
        tiered.put("ns", "k.json", b"blob")
        assert (tmp_path / "local" / "ns" / "k.json").read_bytes() == b"blob"
        assert (server.root / "ns" / "k.json").read_bytes() == b"blob"
        assert tiered.get("ns", "k.json") == b"blob"
        tiered.close()

    def test_remote_hit_is_promoted_into_the_local_tier(self, tmp_path, server):
        DiskBackend(server.root).put("ns", "shared.json", b"fleet-bytes")
        tiered = make_store_backend(tmp_path / "local", server.url)
        assert tiered.get("ns", "shared.json") == b"fleet-bytes"
        # Promoted: the repeat read never touches the network.
        assert (tmp_path / "local" / "ns" / "shared.json").read_bytes() == b"fleet-bytes"
        assert tiered.remote_status()["remote_hits"] == 1
        tiered.close()

    def test_delete_and_iter_are_local_only(self, tmp_path, server):
        tiered = make_store_backend(tmp_path / "local", server.url)
        tiered.put("ns", "k.json", b"blob")
        assert tiered.delete("ns", "k.json") is True  # local eviction ...
        assert (server.root / "ns" / "k.json").exists()  # ... never prunes the fleet
        assert list(tiered.iter()) == []
        assert tiered.get("ns", "k.json") == b"blob"  # and re-promotes on demand
        tiered.close()

    def test_dead_server_degrades_every_operation_to_local(self, tmp_path):
        tiered = make_store_backend(
            tmp_path / "local", _dead_url(), timeout=0.2, retries=0
        )
        tiered.remote.breaker.failure_threshold = 1
        tiered.put("ns", "k.json", b"blob")  # write-through failure absorbed
        assert tiered.get("ns", "k.json") == b"blob"
        assert tiered.claim("ns", "other.json") is True  # local arbitration
        assert tiered.release("ns", "other.json") is True
        status = tiered.remote_status()
        assert status["breaker_state"] == "open"
        assert status["remote_errors"] >= 1 and status["breaker_opens"] == 1
        drained = tiered.drain_remote_counters()
        assert drained["remote_errors"] >= 1 and drained["breaker_opens"] == 1
        health = tiered.health()
        assert health["backend"] == "tiered" and health["reachable"] is False
        tiered.close()


# -- runners sharing one server -----------------------------------------------------


TOY_SOURCE = '''\
"""Toy experiment driver for netstore tests (milliseconds per run)."""

PARAMS = {"x": 2}


def run(*, x=2):
    return [{"x": x, "y": x * x}]


def render(rows):
    return "\\n".join(f"{row['x']} -> {row['y']}" for row in rows)
'''


def _toy_spec(tmp_path, monkeypatch):
    module_dir = tmp_path / "modules"
    module_dir.mkdir(exist_ok=True)
    module_name = f"nettoy_{uuid.uuid4().hex[:8]}"
    (module_dir / f"{module_name}.py").write_text(TOY_SOURCE)
    monkeypatch.syspath_prepend(str(module_dir))
    module = importlib.import_module(module_name)
    return ExperimentSpec.from_module("toy", module)


def _toy_runner(spec, cache):
    return ExperimentRunner(cache=cache, registry={"toy": spec})


class TestSharedServer:
    def test_two_runners_compute_each_address_exactly_once(
        self, tmp_path, monkeypatch, server
    ):
        requests = [("toy", {"x": x}) for x in range(3)]
        caches = [
            ResultCache(backend=make_store_backend(tmp_path / f"client{i}", server.url))
            for i in range(2)
        ]
        spec = _toy_spec(tmp_path, monkeypatch)  # one driver: identical addresses
        first = _toy_runner(spec, caches[0])
        second = _toy_runner(spec, caches[1])
        cold = first.run_many(list(requests))
        warm = second.run_many(list(requests))
        # The second client never recomputes: every address is a remote hit.
        assert all(report.cached is False for report in cold)
        assert all(report.cached is True for report in warm)
        assert json.dumps([r.rows for r in warm]) == json.dumps([r.rows for r in cold])
        # Exactly-once across the fleet: misses == claims + claim_waits.
        stats = [load_stats(cache.root) for cache in caches]
        misses = sum(s.result_misses for s in stats)
        assert misses == len(requests)
        assert misses == sum(s.result_claims + s.result_claim_waits for s in stats)
        assert stats[1].remote_hits == len(requests)

    def test_dead_server_run_is_bit_identical_to_local_only(
        self, tmp_path, monkeypatch
    ):
        requests = [("toy", {"x": x}) for x in range(3)]
        spec = _toy_spec(tmp_path, monkeypatch)
        baseline = _toy_runner(spec, ResultCache(tmp_path / "baseline"))
        clean = baseline.run_many(list(requests))
        degraded_cache = ResultCache(
            backend=make_store_backend(
                tmp_path / "degraded", _dead_url(), timeout=0.2, retries=0
            )
        )
        degraded = _toy_runner(spec, degraded_cache)
        rows = degraded.run_many(list(requests))
        # The acceptance property: a dead server costs latency, never
        # correctness -- the cold run completes with identical bytes.
        assert json.dumps([r.rows for r in rows]) == json.dumps([r.rows for r in clean])
        counters = load_stats(degraded_cache.root)
        assert counters.result_misses == len(requests)
        assert counters.remote_errors >= 1
        assert degraded_cache.backend.remote_status()["breaker_state"] == "open"


# -- CLI surface --------------------------------------------------------------------


class TestStoreCommand:
    def test_store_serve_wires_flags_into_the_server(self, tmp_path, monkeypatch):
        import repro.runner.netstore as netstore

        captured = {}

        def fake_serve_store(*, host, port, root, max_bytes=None):
            captured.update(host=host, port=port, root=root, max_bytes=max_bytes)
            return 0

        monkeypatch.setattr(netstore, "serve_store", fake_serve_store)
        exit_code = main(
            [
                "store", "serve",
                "--host", "127.0.0.2",
                "--port", "9009",
                "--root", str(tmp_path / "store"),
                "--max-bytes", "5000",
            ]
        )
        assert exit_code == 0
        assert captured["host"] == "127.0.0.2" and captured["port"] == 9009
        assert str(captured["root"]) == str(tmp_path / "store")
        assert captured["max_bytes"] == 5000

    def test_run_with_store_url_shares_results(self, tmp_path, capsys, server):
        common = ["--param", "samples=40", "--param", "seed=11", "--store-url", server.url]
        assert main(["run", "table1", "--cache-dir", str(tmp_path / "a"), *common]) == 0
        capsys.readouterr()
        # A second client with a cold local cache replays from the server.
        assert main(
            ["run", "table1", "--json", "--cache-dir", str(tmp_path / "b"), *common]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["table1"]["cached"] is True

    def test_cache_stats_reports_the_remote_section(self, tmp_path, capsys, server):
        common = ["--cache-dir", str(tmp_path / "a"), "--store-url", server.url]
        assert main(
            ["run", "table1", "--param", "samples=40", "--param", "seed=3", *common]
        ) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--json", *common]) == 0
        summary = json.loads(capsys.readouterr().out)
        remote = summary["remote"]
        assert remote["url"] == server.url
        assert remote["reachable"] is True
        assert summary["recovery"]["claim_wait_timeouts"] == 0
