"""Determinism suite for the orchestration layer (registry, cache, executor, CLI).

The contracts gated here:

* the typed registry canonicalises configs deterministically and rejects
  mistyped/unknown parameters;
* code fingerprints track the static import closure and change with source;
* a cache hit replays rows bit-identically (fig4/table2), and the entry
  invalidates when either the params or the code fingerprint change;
* a parallel sweep (``jobs=N``) produces records byte-identical to and in
  the same order as the serial sweep;
* the ``python -m repro`` CLI round-trips rows through JSON/CSV and manages
  the cache.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.sweep import SweepResult, parameter_sweep, sweep_grid
from repro.runner import service as service_module
from repro.runner.cache import CacheEntry, ResultCache, cache_key, run_provenance
from repro.runner.cli import main
from repro.runner.executor import parallel_sweep
from repro.runner.fingerprint import code_fingerprint, module_closure
from repro.runner.registry import ParamSpec, build_registry
from repro.runner.service import ExperimentRunner

#: Small fig4/table2 configs so cache tests stay fast.
FIG4_SMALL = {"input_length": 24, "taps": 5, "simd_widths": (8,)}
TABLE2_SMALL = {"input_length": 24, "taps": 5, "simd_widths": (8,)}


def _evaluate_pair(x, y):
    """Module-level so ProcessPoolExecutor can pickle it."""
    return {"product": x * y, "mean": (x + y) / 2}


@pytest.fixture()
def runner(tmp_path):
    return ExperimentRunner(cache=ResultCache(tmp_path / "cache"))


class TestRegistry:
    def test_every_experiment_registered(self):
        registry = build_registry()
        assert sorted(registry) == sorted(
            ["table1", "fig2", "fig3", "fig4", "table2", "fig6", "fig8", "table3"]
        )

    def test_canonicalization_is_deterministic(self):
        spec = build_registry()["fig4"]
        first = spec.canonical_config({"taps": 5, "input_length": 24})
        second = spec.canonical_config({"input_length": 24, "taps": 5})
        assert first == second
        assert spec.canonical_json(first) == spec.canonical_json(second)
        assert list(first) == sorted(first)  # sorted key order

    def test_list_coerced_to_tuple(self):
        spec = build_registry()["fig4"]
        config = spec.canonical_config({"simd_widths": [8, 64]})
        assert config["simd_widths"] == (8, 64)
        assert spec.canonical_json(config) == spec.canonical_json(
            spec.canonical_config({"simd_widths": (8, 64)})
        )

    def test_unknown_parameter_rejected(self):
        spec = build_registry()["table1"]
        with pytest.raises(KeyError, match="unknown/uncacheable"):
            spec.canonical_config({"bogus": 1})
        # Object parameters are uncacheable, so the canonical path rejects them too.
        with pytest.raises(KeyError):
            spec.canonical_config({"characterization": object()})

    def test_mistyped_value_rejected(self):
        spec = build_registry()["table1"]
        with pytest.raises(TypeError):
            spec.canonical_config({"samples": "many"})
        with pytest.raises(TypeError):
            spec.canonical_config({"samples": True})  # bool is not an int here

    def test_param_parsing(self):
        assert ParamSpec("n", int, 1).parse("42") == 42
        assert ParamSpec("f", float, 1.0).parse("2.5") == 2.5
        assert ParamSpec("b", bool, True).parse("false") is False
        assert ParamSpec("t", tuple, (8, 64)).parse("8,64") == (8, 64)
        with pytest.raises(ValueError):
            ParamSpec("b", bool, True).parse("maybe")


class TestFingerprint:
    def test_closure_tracks_static_imports(self, tmp_path, monkeypatch):
        package = tmp_path / "fakepkg"
        package.mkdir()
        (package / "__init__.py").write_text("")
        (package / "beta.py").write_text("VALUE = 1\n")
        (package / "alpha.py").write_text("from .beta import VALUE\n")
        (package / "gamma.py").write_text("OTHER = 2\n")
        monkeypatch.syspath_prepend(str(tmp_path))
        closure = module_closure("fakepkg.alpha", root="fakepkg")
        assert "fakepkg.beta" in closure
        assert "fakepkg.gamma" not in closure

    def test_fingerprint_changes_with_source(self, tmp_path, monkeypatch):
        package = tmp_path / "fppkg"
        package.mkdir()
        (package / "__init__.py").write_text("")
        (package / "dep.py").write_text("VALUE = 1\n")
        (package / "entry.py").write_text("from .dep import VALUE\n")
        monkeypatch.syspath_prepend(str(tmp_path))
        before = code_fingerprint("fppkg.entry", root="fppkg")
        assert before == code_fingerprint("fppkg.entry", root="fppkg")  # stable
        (package / "dep.py").write_text("VALUE = 2\n")
        assert code_fingerprint("fppkg.entry", root="fppkg") != before

    def test_only_exact_main_guard_excluded(self, tmp_path, monkeypatch):
        # ``if __name__ != "__main__"`` DOES run on import; its imports must
        # stay in the closure.  Only the exact equality guard is dead code.
        package = tmp_path / "guardpkg"
        package.mkdir()
        (package / "__init__.py").write_text("")
        (package / "dead.py").write_text("VALUE = 1\n")
        (package / "live.py").write_text("VALUE = 2\n")
        (package / "entry.py").write_text(
            'if __name__ == "__main__":\n'
            "    from .dead import VALUE as DEAD\n"
            'if __name__ != "__main__":\n'
            "    from .live import VALUE as LIVE\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        closure = module_closure("guardpkg.entry", root="guardpkg")
        assert "guardpkg.live" in closure
        assert "guardpkg.dead" not in closure

    def test_main_guard_imports_excluded(self):
        # The drivers' CLI shims live under ``if __name__ == "__main__"`` and
        # must not drag the runner into every experiment's fingerprint.
        for name in ("table1", "fig4", "table2"):
            closure = module_closure(f"repro.experiments.{name}")
            assert "repro.runner.cli" not in closure
            assert "repro.runner.cache" not in closure

    def test_experiment_closures_cover_their_models(self):
        assert "repro.simd.processor" in module_closure("repro.experiments.fig4")
        assert "repro.core.scaling" in module_closure("repro.experiments.table1")
        assert "repro.envision.chip" in module_closure("repro.experiments.fig8")


class TestSweepResultJson:
    def test_round_trip_bit_identical(self):
        result = SweepResult(
            records=[
                {"a": 1, "b": 0.1 + 0.2, "c": "text", "d": True, "e": None},
                {"a": 2, "b": 1e-17, "c": "", "d": False, "e": None},
            ]
        )
        replayed = SweepResult.from_json(result.to_json())
        assert replayed.records == result.records
        assert replayed.to_json() == result.to_json()

    def test_numpy_scalars_sanitized(self):
        numpy = pytest.importorskip("numpy")
        result = SweepResult(records=[{"i": numpy.int64(7), "f": numpy.float64(0.25)}])
        jsonable = result.to_jsonable()
        assert jsonable == [{"i": 7, "f": 0.25}]
        assert type(jsonable[0]["i"]) is int
        assert type(jsonable[0]["f"]) is float

    def test_numpy_arrays_become_lists(self):
        numpy = pytest.importorskip("numpy")
        result = SweepResult(records=[{"xs": numpy.array([1.0, 2.5]), "one": numpy.array([3])}])
        assert result.to_jsonable() == [{"xs": [1.0, 2.5], "one": [3]}]

    def test_unserializable_value_raises(self):
        with pytest.raises(TypeError, match="cannot serialise"):
            SweepResult(records=[{"x": object()}]).to_jsonable()


class TestParallelSweep:
    GRID = {"x": [1, 2, 3, 4], "y": [5, 6, 7]}

    def test_parallel_byte_identical_to_serial(self):
        serial = parameter_sweep(self.GRID, _evaluate_pair)
        parallel = parameter_sweep(self.GRID, _evaluate_pair, jobs=4)
        assert json.dumps(serial.records) == json.dumps(parallel.records)
        assert serial.to_json() == parallel.to_json()

    def test_grid_order_is_row_major(self):
        grid = sweep_grid(self.GRID)
        assert grid[0] == {"x": 1, "y": 5}
        assert grid[1] == {"x": 1, "y": 6}
        assert grid[-1] == {"x": 4, "y": 7}
        result = parallel_sweep(self.GRID, _evaluate_pair, jobs=3)
        assert [record["x"] for record in result] == [g["x"] for g in grid]
        assert [record["y"] for record in result] == [g["y"] for g in grid]

    def test_jobs_one_matches_classic_loop(self):
        assert (
            parallel_sweep(self.GRID, _evaluate_pair, jobs=1).records
            == parameter_sweep(self.GRID, _evaluate_pair).records
        )


class TestResultCache:
    def _entry(self, rows):
        return CacheEntry(
            experiment="table1",
            params={"samples": 10, "seed": 1},
            fingerprint="f" * 64,
            result=SweepResult(records=rows),
            elapsed_seconds=0.5,
            provenance=run_provenance(),
        )

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        rows = [{"precision": 16, "k0": 1.0}, {"precision": 8, "k0": 2.79}]
        key = cache_key("table1", '{"samples":10,"seed":1}', "f" * 64)
        cache.put(key, self._entry(rows))
        entry = cache.get("table1", key)
        assert entry is not None
        assert entry.rows == rows
        assert entry.fingerprint == "f" * 64
        assert entry.provenance["python"]

    def test_miss_and_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("table1", "0" * 64) is None
        key = cache_key("table1", "{}", "f" * 64)
        path = tmp_path / "table1" / f"{key}.json"
        quarantined = tmp_path / "corrupt" / "table1" / f"{key}.json"
        for corruption in (
            lambda: path.write_text("{not json"),
            lambda: path.write_bytes(b"\xff\xfe\x00garbage"),  # non-UTF-8 bytes
            lambda: path.write_text('{"schema": 1, "result": "not-an-object"}'),
        ):
            cache.put(key, self._entry([{"a": 1}]))
            quarantined.unlink(missing_ok=True)
            corruption()
            assert cache.get("table1", key) is None  # corrupt entry = miss
            assert not path.exists()  # ...and it was moved aside, not left in place
            assert quarantined.exists()
        assert cache.ls() == []  # quarantined entries are out of the listing
        drained = cache.drain_stats()
        assert drained["corrupt"] == 3 and drained["quarantined"] == 3
        assert all(count == 0 for count in cache.drain_stats().values())  # draining resets

    def test_ls_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("table1", "{}", "a" * 64)
        cache.put(key, self._entry([{"a": 1}]))
        listing = cache.ls()
        assert len(listing) == 1 and listing[0]["experiment"] == "table1"
        assert cache.clear() == 1
        assert cache.ls() == []

    def test_traversal_experiment_names_rejected(self, tmp_path):
        cache = ResultCache(tmp_path / "root")
        outside = tmp_path / "outside"
        outside.mkdir()
        (outside / "precious.json").write_text("{}")
        for bad in (str(outside), "../outside", "..", "a/b"):
            with pytest.raises(ValueError, match="invalid experiment name"):
                cache.clear(bad)
            with pytest.raises(ValueError):
                list(cache.entries(bad))
        assert (outside / "precious.json").exists()

    def test_key_depends_on_all_components(self):
        base = cache_key("table1", '{"s":1}', "a" * 64)
        assert cache_key("fig2", '{"s":1}', "a" * 64) != base
        assert cache_key("table1", '{"s":2}', "a" * 64) != base
        assert cache_key("table1", '{"s":1}', "b" * 64) != base


class TestExperimentRunner:
    def test_cache_hit_replays_bit_identical_fig4(self, runner):
        cold = runner.run("fig4", **FIG4_SMALL)
        warm = runner.run("fig4", **FIG4_SMALL)
        assert cold.cached is False and warm.cached is True
        assert json.dumps(cold.rows) == json.dumps(warm.rows)
        # elapsed_seconds is this run's wall time; compute_seconds the stored
        # cold cost -- the warm replay must not report the cold time as spent.
        assert warm.compute_seconds == pytest.approx(cold.compute_seconds)
        assert warm.elapsed_seconds < cold.elapsed_seconds
        assert cold.compute_seconds == cold.elapsed_seconds

    def test_cache_hit_replays_bit_identical_table2(self, runner):
        cold = runner.run("table2", **TABLE2_SMALL)
        warm = runner.run("table2", **TABLE2_SMALL)
        assert cold.cached is False and warm.cached is True
        assert json.dumps(cold.rows) == json.dumps(warm.rows)

    def test_params_change_invalidates(self, runner):
        runner.run("fig4", **FIG4_SMALL)
        changed = runner.run("fig4", **{**FIG4_SMALL, "taps": 7})
        assert changed.cached is False

    def test_fingerprint_change_invalidates(self, runner, monkeypatch):
        first = runner.run("fig4", **FIG4_SMALL)
        monkeypatch.setattr(
            service_module, "code_fingerprint", lambda name: "0" * 64
        )
        second = runner.run("fig4", **FIG4_SMALL)
        assert second.cached is False
        assert second.key != first.key
        # Same (synthetic) fingerprint again: now it hits.
        assert runner.run("fig4", **FIG4_SMALL).cached is True

    def test_no_cache_mode_never_stores(self, tmp_path):
        runner = ExperimentRunner(cache=ResultCache(tmp_path), use_cache=False)
        runner.run("table2", **TABLE2_SMALL)
        assert runner.run("table2", **TABLE2_SMALL).cached is False
        assert runner.cache.ls() == []

    def test_object_parameter_bypasses_cache(self, runner):
        from repro.core.scaling import characterize_multiplier

        characterization = characterize_multiplier(samples=40, seed=3)
        report = runner.run("table1", characterization=characterization)
        assert report.cached is False and report.key is None
        assert runner.cache.ls() == []

    def test_parallel_run_many_matches_serial(self, tmp_path):
        requests = [("fig4", dict(FIG4_SMALL)), ("table2", dict(TABLE2_SMALL))]
        serial = ExperimentRunner(cache=ResultCache(tmp_path / "a")).run_many(requests, jobs=1)
        parallel = ExperimentRunner(cache=ResultCache(tmp_path / "b")).run_many(requests, jobs=2)
        assert [report.name for report in serial] == [report.name for report in parallel]
        assert json.dumps([r.rows for r in serial]) == json.dumps([r.rows for r in parallel])

    def test_duplicate_cold_requests_computed_once(self, runner, monkeypatch):
        executed: list[int] = []
        real_execute = service_module.execute_requests

        def counting_execute(requests, *, jobs=None, artifacts_root=None, registry=None, **kwargs):
            executed.append(len(requests))
            return real_execute(
                requests, jobs=jobs, artifacts_root=artifacts_root, registry=registry, **kwargs
            )

        monkeypatch.setattr(service_module, "execute_requests", counting_execute)
        reports = runner.run_many(
            [("table2", dict(TABLE2_SMALL)), ("table2", dict(TABLE2_SMALL))], jobs=1
        )
        assert executed == [1]  # one execution serves both requests
        assert len(reports) == 2
        assert json.dumps(reports[0].rows) == json.dumps(reports[1].rows)
        assert reports[0].key == reports[1].key

    def test_render_from_cached_rows(self, runner):
        runner.run("table2", **TABLE2_SMALL)
        warm = runner.run("table2", **TABLE2_SMALL)
        text = runner.render(warm)
        assert "Table II" in text and "1x16b" in text

    def test_unknown_experiment(self, runner):
        with pytest.raises(KeyError, match="unknown experiment"):
            runner.run("fig99")


class TestCli:
    def _run(self, tmp_path, *argv):
        return main([*argv, "--cache-dir", str(tmp_path / "cache")])

    def test_run_json_and_warm_cache(self, tmp_path, capsys):
        argv = ["run", "table2", "--param", "input_length=24", "--param", "taps=5", "--json"]
        timing = tmp_path / "timing.json"
        assert self._run(tmp_path, *argv, "--timing-json", str(timing)) == 0
        cold_rows = json.loads(capsys.readouterr().out)["table2"]["rows"]
        assert json.loads(timing.read_text())["experiments"]["table2"]["cached"] is False
        assert self._run(tmp_path, *argv, "--timing-json", str(timing)) == 0
        warm_rows = json.loads(capsys.readouterr().out)["table2"]["rows"]
        assert json.loads(timing.read_text())["experiments"]["table2"]["cached"] is True
        assert json.dumps(cold_rows) == json.dumps(warm_rows)

    def test_run_csv_stdout(self, tmp_path, capsys):
        assert self._run(tmp_path, "run", "table1", "--param", "samples=40", "--csv") == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("precision,")
        assert len(lines) == 5  # header + 4 precisions

    def test_run_out_directory(self, tmp_path, capsys):
        out = tmp_path / "rows"
        assert self._run(tmp_path, "run", "table1", "--param", "samples=40", "--out", str(out)) == 0
        capsys.readouterr()
        document = json.loads((out / "table1.json").read_text())
        assert len(document["records"]) == 4

    def test_report_renders_tables(self, tmp_path, capsys):
        assert self._run(tmp_path, "report", "fig8") == 0
        out = capsys.readouterr().out
        assert "Fig. 8" in out and "DVAFS vs DAS at 4b" in out

    def test_sweep_grid(self, tmp_path, capsys):
        assert (
            self._run(
                tmp_path,
                "sweep", "table1",
                "--grid", "samples=30,60",
                "--param", "seed=3",
                "--jobs", "2",
                "--json",
            )
            == 0
        )
        records = json.loads(capsys.readouterr().out)["records"]
        assert len(records) == 8  # 2 grid cells x 4 precisions
        assert [record["samples"] for record in records] == [30] * 4 + [60] * 4

    def test_cache_ls_and_clear(self, tmp_path, capsys):
        self._run(tmp_path, "run", "table1", "--param", "samples=40")
        capsys.readouterr()
        assert self._run(tmp_path, "cache", "ls") == 0
        assert "table1" in capsys.readouterr().out
        assert self._run(tmp_path, "cache", "clear") == 0
        assert "removed 1" in capsys.readouterr().out

    def test_unknown_parameter_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            self._run(tmp_path, "run", "table1", "--param", "bogus=1")

    def test_malformed_values_exit_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="samples"):
            self._run(tmp_path, "run", "table1", "--param", "samples=many")
        with pytest.raises(SystemExit, match="samples"):
            self._run(tmp_path, "sweep", "table1", "--grid", "samples=10,abc")

    def test_param_requires_single_target(self, tmp_path):
        with pytest.raises(SystemExit):
            self._run(tmp_path, "run", "table1", "fig2", "--param", "samples=40")

    def test_unknown_experiment_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown experiment"):
            self._run(tmp_path, "run", "fig99")

    def test_csv_stdout_multi_target_rejected_before_running(self, tmp_path):
        # Must fail fast -- before any experiment computes (fig6 trains a CNN).
        with pytest.raises(SystemExit, match="--csv to stdout"):
            self._run(tmp_path, "run", "--csv")
        assert not (tmp_path / "cache").exists()  # nothing was executed/cached

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "samples=300" in out


class TestDriverModuleShims:
    def test_drivers_route_main_through_cli(self):
        # Every driver's __main__ block must defer to the unified CLI.
        import repro.experiments as experiments

        for name, module in experiments.EXPERIMENTS.items():
            source = open(module.__file__).read()
            guard = source[source.index('if __name__ == "__main__"'):]
            assert "runner.cli import main" in guard, name
            assert f'"{name}"' in guard, name

    def test_declared_params_match_run_signature(self):
        # build_registry() raises if a PARAMS default disagrees with run().
        build_registry()

    def test_report_equals_render_of_run(self):
        from repro.experiments import table3

        rows = table3.run()
        assert table3.report() == table3.render(rows)

    def test_fig6_rejects_unknown_kwargs(self):
        from repro.experiments import fig6

        with pytest.raises(TypeError, match="unexpected keyword"):
            fig6.run(train_sample=800)  # typo for train_samples
