"""Unit tests for the precision scheduler and Pareto utilities."""

import pytest

from repro.core.operating_point import OperatingPoint
from repro.core.pareto import (
    TradeoffPoint,
    dominated_fraction,
    dynamic_range,
    energy_at_accuracy,
    pareto_front,
)
from repro.core.scheduler import PrecisionRequirement, PrecisionScheduler


def _points():
    return [
        OperatingPoint(16, 1, 500.0, 1.1, 1.1, technique="DVAFS"),
        OperatingPoint(8, 2, 250.0, 0.87, 0.9, technique="DVAFS"),
        OperatingPoint(4, 4, 125.0, 0.73, 0.8, technique="DVAFS"),
    ]


def _energy_model(point: OperatingPoint) -> float:
    return {16: 2.6, 8: 0.55, 4: 0.12}[point.precision]


class TestPrecisionScheduler:
    def test_selects_cheapest_feasible_mode(self):
        scheduler = PrecisionScheduler(_points(), _energy_model)
        task = scheduler.select(PrecisionRequirement("layer", required_bits=5))
        assert task.operating_point.precision == 8

    def test_exact_fit(self):
        scheduler = PrecisionScheduler(_points(), _energy_model)
        task = scheduler.select(PrecisionRequirement("layer", required_bits=4))
        assert task.operating_point.precision == 4

    def test_infeasible_requirement_raises(self):
        scheduler = PrecisionScheduler(_points(), _energy_model)
        with pytest.raises(ValueError):
            scheduler.select(PrecisionRequirement("layer", required_bits=20))

    def test_per_layer_beats_uniform(self):
        """Per-layer scaling saves energy vs pinning to the worst-case precision."""
        scheduler = PrecisionScheduler(_points(), _energy_model)
        requirements = [
            PrecisionRequirement("l1", 4, operations=1e6),
            PrecisionRequirement("l2", 8, operations=1e6),
            PrecisionRequirement("l3", 16, operations=1e6),
        ]
        adaptive = scheduler.total_energy_pj(requirements)
        uniform = scheduler.uniform_precision_energy_pj(requirements)
        assert adaptive < uniform

    def test_task_energy_scales_with_operations(self):
        scheduler = PrecisionScheduler(_points(), _energy_model)
        small = scheduler.select(PrecisionRequirement("a", 4, operations=10))
        assert small.total_energy_pj == pytest.approx(10 * small.energy_per_operation_pj)

    def test_empty_operating_points_rejected(self):
        with pytest.raises(ValueError):
            PrecisionScheduler([], _energy_model)

    def test_invalid_requirement(self):
        with pytest.raises(ValueError):
            PrecisionRequirement("bad", 0)


class TestPareto:
    def test_dominance(self):
        a = TradeoffPoint(0.1, 0.5)
        b = TradeoffPoint(0.2, 0.6)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(a)

    def test_pareto_front_filters_dominated(self):
        points = [
            TradeoffPoint(0.1, 1.0, "a"),
            TradeoffPoint(0.2, 0.5, "b"),
            TradeoffPoint(0.3, 0.6, "c"),  # dominated by b
        ]
        front = pareto_front(points)
        assert [p.label for p in front] == ["a", "b"]

    def test_dominated_fraction(self):
        candidate = [TradeoffPoint(0.1, 0.1)]
        reference = [TradeoffPoint(0.2, 0.2), TradeoffPoint(0.05, 0.05)]
        assert dominated_fraction(candidate, reference) == pytest.approx(0.5)

    def test_energy_at_accuracy(self):
        points = [TradeoffPoint(1e-3, 0.5), TradeoffPoint(1e-5, 0.9)]
        assert energy_at_accuracy(points, 1e-4) == pytest.approx(0.9)
        assert energy_at_accuracy(points, 1e-7) is None

    def test_dynamic_range(self):
        points = [TradeoffPoint(0.1, 1.2), TradeoffPoint(0.2, 0.06)]
        assert dynamic_range(points) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            dynamic_range([])
