"""Contract suite for the public facade (``repro.api``) and the CLI exit codes.

Gated here:

* the error taxonomy: every failure is a :class:`ReproError` subclass with a
  stable ``code`` field, and the refinements keep subclassing the builtin
  exceptions (``KeyError``/``TypeError``/``ValueError``) that pre-facade
  callers caught;
* ``validate_params`` / ``validate_grid`` / ``parse_param`` are the single
  validation path: coercions and rejections match the registry's;
* ``run`` / ``run_all`` / ``sweep`` return reports whose ``to_jsonable``
  round-trips and whose rows match direct runner execution;
* the CLI maps the taxonomy onto stable exit codes: 2 usage, 3 validation,
  4 execution.
"""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.runner.cache import ResultCache
from repro.runner.cli import EXECUTION_EXIT, USAGE_EXIT, VALIDATION_EXIT, CliError, main
from repro.runner.service import ExperimentRunner, RunReport

FIG4_SMALL = {"input_length": 24, "taps": 5, "simd_widths": (8,)}


@pytest.fixture()
def runner(tmp_path):
    return ExperimentRunner(cache=ResultCache(tmp_path / "cache"))


class TestErrorTaxonomy:
    def test_every_error_is_a_repro_error_with_a_code(self):
        for exc in (
            api.ParamError,
            api.UnknownParamError,
            api.ParamTypeError,
            api.ParamValueError,
            api.UnknownExperimentError,
            api.ExecutionError,
        ):
            assert issubclass(exc, api.ReproError)
            assert isinstance(exc.code, str) and exc.code

    def test_refinements_keep_builtin_bases(self):
        # Pre-facade callers catch KeyError/TypeError/ValueError; the typed
        # taxonomy must not break them.
        assert issubclass(api.UnknownParamError, KeyError)
        assert issubclass(api.ParamTypeError, TypeError)
        assert issubclass(api.ParamValueError, ValueError)
        assert issubclass(api.UnknownExperimentError, KeyError)

    def test_str_is_the_message_not_keyerror_repr(self):
        error = api.UnknownParamError("no such parameter", param="bogus")
        assert str(error) == "no such parameter"  # KeyError would quote it
        assert error.param == "bogus"

    def test_codes_are_distinct_and_stable(self):
        assert api.UnknownParamError.code == "unknown_param"
        assert api.ParamTypeError.code == "invalid_type"
        assert api.ParamValueError.code == "invalid_value"
        assert api.UnknownExperimentError.code == "unknown_experiment"
        assert api.ExecutionError.code == "execution_error"


class TestValidation:
    def test_list_experiments_schemas(self):
        listing = api.list_experiments()
        names = [entry["name"] for entry in listing]
        assert names == ["table1", "fig2", "fig3", "fig4", "table2", "fig6", "fig8", "table3"]
        table1 = next(entry for entry in listing if entry["name"] == "table1")
        assert table1["params"]["samples"] == {"type": "int", "default": 300}
        assert table1["object_params"] == ["characterization"]

    def test_validate_params_canonicalises(self):
        config = api.validate_params("fig4", {"taps": 5, "input_length": 24})
        assert config["taps"] == 5 and config["input_length"] == 24
        assert list(config) == sorted(config)  # canonical key order

    def test_validate_params_unknown(self):
        with pytest.raises(api.UnknownParamError) as excinfo:
            api.validate_params("table1", {"bogus": 1})
        assert excinfo.value.code == "unknown_param"
        assert excinfo.value.param == "bogus"
        assert "samples" in (excinfo.value.expected or "")

    def test_validate_params_unknown_experiment(self):
        with pytest.raises(api.UnknownExperimentError, match="unknown experiment"):
            api.validate_params("fig99", {})

    def test_parse_param_types_text(self, runner):
        spec = runner.spec("table1")
        assert api.parse_param(spec, "samples", "40") == 40
        with pytest.raises(api.ParamValueError) as excinfo:
            api.parse_param(spec, "samples", "many")
        assert excinfo.value.code == "invalid_value" and excinfo.value.param == "samples"
        with pytest.raises(api.UnknownParamError):
            api.parse_param(spec, "bogus", "1")

    def test_validate_grid_coerces_and_rejects(self):
        grid = api.validate_grid("table1", {"samples": [20, 30]})
        assert grid == {"samples": [20, 30]}
        with pytest.raises(api.UnknownParamError):
            api.validate_grid("table1", {"bogus": [1]})
        with pytest.raises(api.ParamTypeError, match="grid-swept"):
            api.validate_grid("fig4", {"simd_widths": [[8], [64]]})
        with pytest.raises(api.ParamTypeError, match="list of values"):
            api.validate_grid("table1", {"samples": 20})
        with pytest.raises(api.ParamValueError, match="no values"):
            api.validate_grid("table1", {"samples": []})
        with pytest.raises(api.ParamTypeError):
            api.validate_grid("table1", {"samples": ["many"]})


class TestRunFacade:
    def test_run_matches_direct_runner(self, runner):
        report = api.run("fig8", runner=runner)
        direct = runner.lookup("fig8")  # the facade run must have cached it
        assert direct is not None
        assert json.dumps(report.rows) == json.dumps(direct.rows)

    def test_run_report_jsonable_round_trip(self, runner):
        report = api.run("table3", runner=runner)
        document = report.to_jsonable()
        assert set(document) >= {"experiment", "config", "rows", "cached", "key", "fingerprint"}
        restored = RunReport.from_jsonable(json.loads(json.dumps(document)))
        assert restored.name == report.name
        assert json.dumps(restored.rows) == json.dumps(report.rows)
        assert restored.key == report.key and restored.fingerprint == report.fingerprint

    def test_run_all_defaults_to_registry_order(self, runner):
        reports = api.run_all(["fig8", "table3"], runner=runner)
        assert [report.name for report in reports] == ["fig8", "table3"]

    def test_run_all_shared_params_need_single_target(self, runner):
        with pytest.raises(api.ParamError, match="exactly one experiment"):
            api.run_all(["fig8", "table3"], {"seed": 1}, runner=runner)

    def test_execution_failures_are_wrapped(self, runner, monkeypatch):
        import repro.experiments.fig8 as fig8

        def boom(**_kwargs):
            raise RuntimeError("driver exploded")

        monkeypatch.setattr(fig8, "run", boom)
        with pytest.raises(api.ExecutionError, match="driver exploded") as excinfo:
            api.run("fig8", runner=runner)
        assert excinfo.value.code == "execution_error"

    def test_sweep_records_tagged_with_assignments(self, runner):
        outcome = api.sweep("table1", {"samples": [20, 30]}, {"seed": 11}, runner=runner)
        assert outcome.experiment == "table1"
        assert len(outcome.assignments) == 2
        assert {record["samples"] for record in outcome.records} == {20, 30}
        document = outcome.to_jsonable()
        assert document["cells"] == 2 and len(document["records"]) == len(outcome.records)
        # Re-sweeping is fully warm.
        again = api.sweep("table1", {"samples": [20, 30]}, {"seed": 11}, runner=runner)
        assert again.cached_cells == 2
        assert json.dumps(again.records) == json.dumps(outcome.records)

    def test_sweep_rejects_grid_fixed_overlap(self, runner):
        with pytest.raises(api.ParamError, match="both the grid and the fixed"):
            api.sweep("table1", {"samples": [20]}, {"samples": 30}, runner=runner)


class TestCliExitCodes:
    def _run(self, tmp_path, *argv):
        return main([*argv, "--cache-dir", str(tmp_path / "cache")])

    def test_usage_errors_exit_2(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            self._run(tmp_path, "run", "table1", "fig2", "--param", "samples=40")
        assert excinfo.value.code == USAGE_EXIT
        with pytest.raises(SystemExit) as excinfo:
            self._run(tmp_path, "run", "--csv")
        assert excinfo.value.code == USAGE_EXIT
        with pytest.raises(SystemExit) as excinfo:  # argparse's own usage exit
            main(["bogus-command"])
        assert excinfo.value.code == USAGE_EXIT

    def test_validation_errors_exit_3(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown experiment") as excinfo:
            self._run(tmp_path, "run", "fig99")
        assert excinfo.value.code == VALIDATION_EXIT
        with pytest.raises(SystemExit, match="no parameter") as excinfo:
            self._run(tmp_path, "run", "table1", "--param", "bogus=1")
        assert excinfo.value.code == VALIDATION_EXIT
        with pytest.raises(SystemExit, match="cannot parse") as excinfo:
            self._run(tmp_path, "run", "table1", "--param", "samples=many")
        assert excinfo.value.code == VALIDATION_EXIT

    def test_execution_errors_exit_4(self, tmp_path, monkeypatch):
        import repro.experiments.fig8 as fig8

        def boom(**_kwargs):
            raise RuntimeError("driver exploded")

        monkeypatch.setattr(fig8, "run", boom)
        with pytest.raises(SystemExit, match="driver exploded") as excinfo:
            self._run(tmp_path, "run", "fig8")
        assert excinfo.value.code == EXECUTION_EXIT

    def test_cli_error_is_system_exit_with_message(self):
        error = CliError("error: something", code=VALIDATION_EXIT)
        assert isinstance(error, SystemExit)
        assert error.code == VALIDATION_EXIT
        assert str(error) == "error: something"
