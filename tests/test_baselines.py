"""Unit tests for the approximate-multiplier baselines of Fig. 3b."""

import pytest

from repro.arithmetic.baselines import (
    KulkarniUnderdesignedMultiplier,
    KyawErrorTolerantMultiplier,
    LiuPartialErrorRecoveryMultiplier,
    SolazTruncatedMultiplier,
    all_baseline_curves,
    measure_relative_rmse,
)


class TestKulkarni:
    def test_2x2_block_error(self):
        multiplier = KulkarniUnderdesignedMultiplier(2)
        assert multiplier.multiply(3, 3) == 7
        assert multiplier.multiply(2, 3) == 6

    def test_exact_when_no_3x3_patterns(self):
        multiplier = KulkarniUnderdesignedMultiplier(8)
        # Operands whose 2-bit chunks never form 3 x 3.
        assert multiplier.multiply(0b01010101, 0b00100010) == 0b01010101 * 0b00100010

    def test_error_is_always_underestimate(self):
        multiplier = KulkarniUnderdesignedMultiplier(8)
        for x in range(0, 128, 7):
            for y in range(0, 128, 11):
                assert multiplier.multiply(x, y) <= x * y

    def test_rmse_nonzero_but_small(self):
        rmse = measure_relative_rmse(KulkarniUnderdesignedMultiplier(16).multiply, 16, samples=400)
        assert 0 < rmse < 0.05


class TestKyaw:
    def test_msb_part_exact(self):
        multiplier = KyawErrorTolerantMultiplier(16, split=8)
        x, y = 0x4000, 0x2000  # no LSB content
        assert multiplier.multiply(x, y) == x * y

    def test_error_bounded_by_lsb_contribution(self):
        multiplier = KyawErrorTolerantMultiplier(16, split=8)
        x, y = 0x1234, 0x0F0F
        error = abs(multiplier.multiply(x, y) - x * y)
        assert error < (1 << 17)

    def test_larger_split_larger_error(self):
        small = measure_relative_rmse(KyawErrorTolerantMultiplier(16, 4).multiply, 16, samples=300)
        large = measure_relative_rmse(KyawErrorTolerantMultiplier(16, 12).multiply, 16, samples=300)
        assert large > small

    def test_energy_decreases_with_split(self):
        assert (
            KyawErrorTolerantMultiplier(16, 12).relative_energy()
            < KyawErrorTolerantMultiplier(16, 4).relative_energy()
        )

    def test_invalid_split(self):
        with pytest.raises(ValueError):
            KyawErrorTolerantMultiplier(16, 16)


class TestLiu:
    def test_full_recovery_is_exact(self):
        multiplier = LiuPartialErrorRecoveryMultiplier(16, recovery_columns=32)
        assert multiplier.multiply(12345, -321) == 12345 * -321

    def test_more_recovery_less_error(self):
        low = measure_relative_rmse(
            LiuPartialErrorRecoveryMultiplier(16, 8).multiply, 16, samples=300
        )
        high = measure_relative_rmse(
            LiuPartialErrorRecoveryMultiplier(16, 24).multiply, 16, samples=300
        )
        assert high < low

    def test_voltage_scaled_variant_cheaper(self):
        plain = LiuPartialErrorRecoveryMultiplier(16, 16)
        scaled = LiuPartialErrorRecoveryMultiplier(16, 16, voltage_scaled=True)
        assert scaled.relative_energy() < plain.relative_energy()


class TestSolaz:
    def test_no_truncation_is_exact(self):
        multiplier = SolazTruncatedMultiplier(16, truncation_column=0)
        assert multiplier.multiply(-1111, 2222) == -1111 * 2222

    def test_truncation_is_runtime_programmable(self):
        multiplier = SolazTruncatedMultiplier(16)
        multiplier.set_truncation(12)
        assert multiplier.truncation_column == 12

    def test_energy_has_a_floor(self):
        multiplier = SolazTruncatedMultiplier(16, truncation_column=30)
        assert multiplier.relative_energy() >= SolazTruncatedMultiplier.FIXED_FRACTION

    def test_error_grows_with_truncation(self):
        small = measure_relative_rmse(SolazTruncatedMultiplier(16, 6).multiply, 16, samples=300)
        large = measure_relative_rmse(SolazTruncatedMultiplier(16, 20).multiply, 16, samples=300)
        assert large > small


class TestBaselineCurves:
    def test_all_schemes_present(self):
        curves = all_baseline_curves(16)
        assert len(curves) == 5
        for points in curves.values():
            assert points
            for point in points:
                assert point.rmse >= 0
                assert 0 < point.relative_energy <= 1.05

    def test_runtime_adaptive_flags(self):
        curves = all_baseline_curves(16)
        truncation = curves[SolazTruncatedMultiplier.name]
        kulkarni = curves[KulkarniUnderdesignedMultiplier.name]
        assert all(p.runtime_adaptive for p in truncation)
        assert not any(p.runtime_adaptive for p in kulkarni)
