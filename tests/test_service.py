"""End-to-end suite for the HTTP service (``python -m repro serve``).

Everything runs against a real server: ``BackgroundServer`` binds an
ephemeral port on a daemon thread and ``http.client`` talks actual
HTTP/1.1 over the socket, so the wire format, keep-alive handling and
middleware (request IDs, rate limiting, error bodies) are all exercised
as a client would see them.

Fast tests use a tiny injected "toy" experiment (milliseconds per run);
the capstone bit-identity test runs the real registry and diffs warm
service responses against ``python -m repro run {name} --json`` for all
eight experiments.
"""

from __future__ import annotations

import http.client
import importlib
import json
import threading
import time
import uuid

import pytest

from repro.runner.cache import ResultCache
from repro.runner.cli import main
from repro.runner.registry import ExperimentSpec
from repro.runner.service import ExperimentRunner
from repro.service import BackgroundServer, build_app

TOY_SOURCE = '''\
"""Toy experiment driver for service tests (milliseconds per run)."""

PARAMS = {"x": 2, "boom": False}


def run(*, x=2, boom=False):
    if boom:
        raise RuntimeError("toy experiment exploded")
    return [{"x": x, "y": x * x}]


def render(rows):
    return "\\n".join(f"{row['x']} -> {row['y']}" for row in rows)
'''


def _toy_runner(tmp_path, monkeypatch):
    module_dir = tmp_path / "modules"
    module_dir.mkdir(exist_ok=True)
    module_name = f"toyexp_{uuid.uuid4().hex[:8]}"
    (module_dir / f"{module_name}.py").write_text(TOY_SOURCE)
    monkeypatch.syspath_prepend(str(module_dir))
    module = importlib.import_module(module_name)
    spec = ExperimentSpec.from_module("toy", module)
    return ExperimentRunner(cache=ResultCache(tmp_path / "cache"), registry={"toy": spec})


@pytest.fixture()
def toy_runner(tmp_path, monkeypatch):
    return _toy_runner(tmp_path, monkeypatch)


@pytest.fixture()
def server(toy_runner):
    with BackgroundServer(build_app(toy_runner)) as background:
        yield background


class Client:
    """Minimal JSON-over-HTTP helper around one keep-alive connection."""

    def __init__(self, port):
        self.conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)

    def request(self, method, path, body=None, headers=None):
        payload = json.dumps(body) if isinstance(body, (dict, list)) else body
        self.conn.request(method, path, body=payload, headers=headers or {})
        response = self.conn.getresponse()
        raw = response.read()
        return response, (json.loads(raw) if raw else None)

    def wait_for_job(self, job_id, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _response, document = self.request("GET", f"/v1/jobs/{job_id}")
            if document["state"] in ("done", "failed"):
                return document
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} did not finish within {timeout}s")


@pytest.fixture()
def client(server):
    return Client(server.port)


class TestBasics:
    def test_health_is_ok(self, client):
        response, document = client.request("GET", "/v1/health")
        assert response.status == 200
        assert document["status"] == "ok"

    def test_request_id_minted_and_echoed(self, client):
        response, document = client.request("GET", "/v1/health")
        minted = response.getheader("x-request-id")
        assert minted and minted.startswith("req-")
        assert document["request_id"] == minted
        response, document = client.request(
            "GET", "/v1/health", headers={"X-Request-Id": "my-trace.01"}
        )
        assert response.getheader("x-request-id") == "my-trace.01"
        assert document["request_id"] == "my-trace.01"
        # Ill-formed client IDs (spaces) are replaced, not echoed.
        response, _document = client.request(
            "GET", "/v1/health", headers={"X-Request-Id": "not a valid id"}
        )
        assert response.getheader("x-request-id").startswith("req-")

    def test_experiments_listing_serves_schemas(self, client):
        response, document = client.request("GET", "/v1/experiments")
        assert response.status == 200
        (entry,) = document["experiments"]
        assert entry["name"] == "toy"
        assert entry["params"]["x"] == {"type": "int", "default": 2}
        assert entry["params"]["boom"] == {"type": "bool", "default": False}

    def test_unknown_route_404_and_wrong_method_405(self, client):
        response, document = client.request("GET", "/v1/nope")
        assert response.status == 404
        assert document["error"]["code"] == "unknown_route"
        assert document["error"]["request_id"]
        response, document = client.request("DELETE", "/v1/jobs")
        assert response.status == 405
        assert document["error"]["code"] == "method_not_allowed"
        assert "GET, POST" in document["error"]["message"]


class TestHealthSplit:
    def test_liveness_is_ok_without_probing_anything(self, client):
        response, document = client.request("GET", "/v1/health/live")
        assert response.status == 200
        assert document["status"] == "ok"

    def test_readiness_with_a_local_backend_is_ready(self, client):
        response, document = client.request("GET", "/v1/health/ready")
        assert response.status == 200
        assert document["status"] == "ready"
        assert "store_backend" not in document  # nothing remote to probe

    def test_readiness_reports_degraded_when_the_store_is_gone(
        self, tmp_path, monkeypatch
    ):
        import socket as socketlib

        from repro.runner.netstore import make_store_backend

        probe = socketlib.socket()
        probe.bind(("127.0.0.1", 0))
        dead_url = f"tcp://127.0.0.1:{probe.getsockname()[1]}"
        probe.close()
        runner = _toy_runner(tmp_path, monkeypatch)
        runner.cache.backend = make_store_backend(
            tmp_path / "tiered", dead_url, timeout=0.2, retries=0
        )
        with BackgroundServer(build_app(runner)) as background:
            client = Client(background.port)
            response, document = client.request("GET", "/v1/health/ready")
            # Degraded, not dead: the endpoint stays 200 (the service can
            # serve from the local tier) but readiness reports the outage.
            assert response.status == 200
            assert document["status"] == "degraded"
            store = document["store_backend"]
            assert store["backend"] == "tiered" and store["reachable"] is False
            # Liveness is indifferent to the store.
            response, document = client.request("GET", "/v1/health/live")
            assert response.status == 200 and document["status"] == "ok"
            # Metrics expose the breaker gauges without probing.
            _response, metrics = client.request("GET", "/v1/metrics")
            assert metrics["store_backend"]["url"] == dead_url
            assert metrics["store_backend"]["remote_errors"] >= 1  # the failed probe
            assert metrics["store_backend"]["breaker_state"] in (
                "closed", "open", "half_open"
            )

    def test_health_probes_are_rate_limit_exempt(self, toy_runner):
        app = build_app(toy_runner, rate_limit=0.001, rate_burst=1)
        with BackgroundServer(app) as background:
            client = Client(background.port)
            client.request("GET", "/v1/experiments")  # burns the only token
            for path in ("/v1/health", "/v1/health/live", "/v1/health/ready"):
                statuses = [client.request("GET", path)[0].status for _ in range(3)]
                assert statuses == [200] * 3, path


class TestRunEndpoint:
    def test_warm_hit_is_bit_identical_to_runner(self, toy_runner, client):
        direct = toy_runner.run("toy", x=5)  # cold: populates the cache
        response, document = client.request(
            "POST", "/v1/experiments/toy/run", body={"params": {"x": 5}}
        )
        assert response.status == 200
        assert document["cached"] is True
        assert json.dumps(document["rows"]) == json.dumps(direct.rows)
        assert document["key"] == direct.key
        assert document["config"] == {"boom": False, "x": 5}

    def test_warm_hits_identical_under_concurrency(self, toy_runner, server):
        toy_runner.run("toy", x=7)
        results = []

        def hit():
            client = Client(server.port)
            _resp, document = client.request(
                "POST",
                "/v1/experiments/toy/run",
                body={"params": {"x": 7}},
                headers={"X-Request-Id": "concurrent-warm"},
            )
            document.pop("elapsed_seconds")  # per-request lookup time, nothing else varies
            results.append(json.dumps(document, sort_keys=True))

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(results)) == 1  # every response byte-identical

    def test_cold_run_becomes_job_then_warm(self, toy_runner, client):
        response, document = client.request(
            "POST", "/v1/experiments/toy/run", body={"params": {"x": 9}}
        )
        assert response.status == 202
        job = document["job"]
        assert response.getheader("location") == f"/v1/jobs/{job['id']}"
        finished = client.wait_for_job(job["id"])
        assert finished["state"] == "done"
        (report,) = finished["reports"]
        assert report["rows"] == [{"x": 9, "y": 81}]
        # The job populated the shared cache: the same POST is now warm.
        response, document = client.request(
            "POST", "/v1/experiments/toy/run", body={"params": {"x": 9}}
        )
        assert response.status == 200 and document["cached"] is True
        assert json.dumps(document["rows"]) == json.dumps(report["rows"])

    def test_validation_error_bodies(self, client):
        response, document = client.request(
            "POST", "/v1/experiments/toy/run", body={"params": {"bogus": 1}}
        )
        assert response.status == 400
        assert document["error"]["code"] == "unknown_param"
        assert document["error"]["param"] == "bogus"
        response, document = client.request(
            "POST", "/v1/experiments/toy/run", body={"params": {"x": "abc"}}
        )
        assert response.status == 400
        assert document["error"]["code"] == "invalid_type"
        assert document["error"]["expected"] == "int"
        response, document = client.request("POST", "/v1/experiments/nope/run", body={})
        assert response.status == 404
        assert document["error"]["code"] == "unknown_experiment"

    def test_malformed_bodies(self, client):
        response, document = client.request("POST", "/v1/experiments/toy/run", body="{not json")
        assert response.status == 400
        assert document["error"]["code"] == "invalid_json"
        response, document = client.request("POST", "/v1/experiments/toy/run", body=[1, 2])
        assert response.status == 400
        assert document["error"]["code"] == "invalid_body"
        response, document = client.request(
            "POST", "/v1/experiments/toy/run", body={"parms": {}}
        )
        assert response.status == 400
        assert document["error"]["code"] == "invalid_body"


class TestJobs:
    def test_job_lifecycle_and_listing(self, client):
        response, document = client.request(
            "POST", "/v1/jobs", body={"experiment": "toy", "params": {"x": 3}}
        )
        assert response.status == 202
        job = document["job"]
        assert job["state"] in ("queued", "running", "done")  # may race the worker
        finished = client.wait_for_job(job["id"])
        assert finished["state"] == "done"
        assert finished["progress"]["phase"] == "done"
        assert finished["started_unix"] >= finished["created_unix"] - 1e-3
        assert finished["finished_unix"] >= finished["started_unix"]
        (report,) = finished["reports"]
        assert report["rows"] == [{"x": 3, "y": 9}]
        _response, listing = client.request("GET", "/v1/jobs")
        assert [entry["id"] for entry in listing["jobs"]] == [job["id"]]

    def test_job_failure_reports_execution_error(self, client):
        _response, document = client.request(
            "POST", "/v1/jobs", body={"experiment": "toy", "params": {"boom": True}}
        )
        finished = client.wait_for_job(document["job"]["id"])
        assert finished["state"] == "failed"
        assert finished["error"]["code"] == "execution_error"
        assert "toy experiment exploded" in finished["error"]["message"]

    def test_job_validation_is_synchronous(self, client):
        response, document = client.request(
            "POST", "/v1/jobs", body={"experiment": "toy", "params": {"bogus": 1}}
        )
        assert response.status == 400
        assert document["error"]["code"] == "unknown_param"
        response, document = client.request("POST", "/v1/jobs", body={"params": {}})
        assert response.status == 400
        assert document["error"]["code"] == "invalid_body"
        response, document = client.request(
            "POST", "/v1/jobs", body={"experiment": "toy", "jobs": 0}
        )
        assert response.status == 400
        response, document = client.request("GET", "/v1/jobs/job-doesnotexist")
        assert response.status == 404
        assert document["error"]["code"] == "unknown_job"

    def test_sweep_job(self, client):
        _response, document = client.request(
            "POST", "/v1/jobs", body={"experiment": "toy", "grid": {"x": [1, 2, 3]}}
        )
        finished = client.wait_for_job(document["job"]["id"])
        assert finished["state"] == "done"
        sweep = finished["sweep"]
        assert sweep["cells"] == 3
        assert [record["y"] for record in sweep["records"]] == [1, 4, 9]

    def test_sweep_job_rejects_bad_grid(self, client):
        response, document = client.request(
            "POST", "/v1/jobs", body={"experiment": "toy", "grid": {"bogus": [1]}}
        )
        assert response.status == 400
        assert document["error"]["code"] == "unknown_param"
        response, document = client.request(
            "POST", "/v1/jobs", body={"experiment": "all", "grid": {"x": [1]}}
        )
        assert response.status == 400

    def test_idempotency_key_collapses_duplicates(self, client):
        submission = {"experiment": "toy", "params": {"x": 11}}
        headers = {"Idempotency-Key": "retry-abc"}
        response, first = client.request("POST", "/v1/jobs", body=submission, headers=headers)
        assert response.status == 202 and first["created"] is True
        response, second = client.request("POST", "/v1/jobs", body=submission, headers=headers)
        assert response.status == 200 and second["created"] is False
        assert second["job"]["id"] == first["job"]["id"]
        # Same key, different payload: conflict, never silent reuse.
        response, conflict = client.request(
            "POST", "/v1/jobs", body={"experiment": "toy", "params": {"x": 12}}, headers=headers
        )
        assert response.status == 409
        assert conflict["error"]["code"] == "idempotency_conflict"

    def test_run_endpoint_idempotency_for_cold_submissions(self, toy_runner, client):
        headers = {"Idempotency-Key": "cold-run-1"}
        _response, first = client.request(
            "POST", "/v1/experiments/toy/run", body={"params": {"x": 13}}, headers=headers
        )
        client.wait_for_job(first["job"]["id"])
        # Clear the cache so the retry is cold again and must collapse.
        toy_runner.cache.clear()
        _response, second = client.request(
            "POST", "/v1/experiments/toy/run", body={"params": {"x": 13}}, headers=headers
        )
        assert second["job"]["id"] == first["job"]["id"]


class TestRateLimit:
    def test_429_with_retry_after_and_health_exempt(self, toy_runner):
        app = build_app(toy_runner, rate_limit=0.001, rate_burst=2)
        with BackgroundServer(app) as server:
            client = Client(server.port)
            statuses = [client.request("GET", "/v1/experiments")[0].status for _ in range(4)]
            assert statuses[:2] == [200, 200]
            assert statuses[2] == statuses[3] == 429
            response, document = client.request("GET", "/v1/experiments")
            assert int(response.getheader("retry-after")) >= 1
            assert document["error"]["code"] == "rate_limited"
            # Health probes must never be limited.
            health = [client.request("GET", "/v1/health")[0].status for _ in range(5)]
            assert health == [200] * 5
            # Every non-health route is limited -- including metrics itself,
            # so read the snapshot in-process for the counter assertion.
            response, _document = client.request("GET", "/v1/metrics")
            assert response.status == 429
            assert app.metrics.snapshot()["requests"]["rate_limited"] == 4


class TestMetrics:
    def test_counters_are_consistent(self, toy_runner, client):
        toy_runner.run("toy", x=4)
        client.request("GET", "/v1/health")
        client.request("POST", "/v1/experiments/toy/run", body={"params": {"x": 4}})  # hit
        _response, submitted = client.request(
            "POST", "/v1/experiments/toy/run", body={"params": {"x": 21}}
        )  # miss -> job
        client.wait_for_job(submitted["job"]["id"])
        response, metrics = client.request("GET", "/v1/metrics")
        assert response.status == 200
        assert metrics["cache"] == {"hits": 1, "misses": 1, "warm_hits": 0}
        run_route = metrics["requests"]["by_route"]["POST /v1/experiments/{name}/run"]
        assert run_route == {"200": 1, "202": 1}
        assert metrics["jobs"]["done"] == 1 and metrics["jobs"]["in_flight"] == 0
        # Totals count every request handled before this snapshot.
        polls = metrics["requests"]["by_route"]["GET /v1/jobs/{id}"]
        expected_total = 1 + 2 + sum(polls.values())
        assert metrics["requests"]["total"] == expected_total
        histogram = metrics["latency"]["GET /v1/health"]
        assert histogram["count"] == 1
        assert histogram["p50_ms"] <= histogram["max_ms"] + 1e-9 or histogram["p50_ms"] <= 10000

    def test_uptime_advances(self, client):
        _response, first = client.request("GET", "/v1/metrics")
        time.sleep(0.02)
        _response, second = client.request("GET", "/v1/metrics")
        assert second["uptime_seconds"] >= first["uptime_seconds"]


class TestWarmL1:
    def test_repeat_probes_serve_from_memory_bit_identically(self, toy_runner, client):
        toy_runner.run("toy", x=6)  # cold: populates the disk store
        _resp, first = client.request(
            "POST", "/v1/experiments/toy/run", body={"params": {"x": 6}}
        )
        _resp, second = client.request(
            "POST", "/v1/experiments/toy/run", body={"params": {"x": 6}}
        )
        assert json.dumps(first["rows"]) == json.dumps(second["rows"])
        assert first["key"] == second["key"]
        _resp, metrics = client.request("GET", "/v1/metrics")
        # First probe hit the disk store (and populated the L1); the
        # second was served from memory without a disk read.
        assert metrics["cache"] == {"hits": 2, "misses": 0, "warm_hits": 1}

    def test_zero_budget_disables_the_memory_layer(self, toy_runner, monkeypatch):
        from repro.service.routes import build_app as build

        monkeypatch.setenv("REPRO_WARM_CACHE_BYTES", "0")
        app = build(toy_runner)
        try:
            assert app.warm_cache is None
        finally:
            app.close()

    def test_metrics_expose_persisted_store_counters(self, toy_runner, client):
        toy_runner.run("toy", x=11)  # one cold fill: a miss + a won claim
        _resp, metrics = client.request("GET", "/v1/metrics")
        stores = metrics["stores"]
        assert stores["root"] == str(toy_runner.cache.root)
        assert stores["result_misses"] == 1
        assert stores["result_claims"] == 1


#: Reduced-but-real workloads for the capstone diff (CLI vs HTTP) below.
ALL_EXPERIMENTS_SMALL = {
    "table1": {"samples": "40", "seed": "11"},
    "fig2": {"samples": "40", "seed": "11"},
    "fig3": {"samples": "40", "seed": "11", "rmse_samples": "50"},
    "fig4": {"input_length": "24", "taps": "5", "simd_widths": "8"},
    "table2": {"input_length": "24", "taps": "5", "simd_widths": "8"},
    "fig6": {
        "train_samples": "60",
        "test_samples": "20",
        "image_size": "16",
        "epochs": "1",
        "evaluation_samples": "8",
        "input_size": "63",
        "seed": "5",
    },
    "fig8": {},
    "table3": {},
}


class TestCliHttpBitIdentity:
    def test_warm_service_rows_match_cli_json_for_every_experiment(self, tmp_path, capsys):
        """The acceptance diff: one cache, CLI cold then CLI+HTTP warm, byte-equal."""
        cache_dir = tmp_path / "cache"
        cli_documents = {}
        for name, params in ALL_EXPERIMENTS_SMALL.items():
            argv = ["run", name, "--json", "--cache-dir", str(cache_dir)]
            for key, value in params.items():
                argv += ["--param", f"{key}={value}"]
            assert main(argv) == 0  # cold: computes and caches
            capsys.readouterr()
            assert main(argv) == 0  # warm: replays from the cache
            cli_documents[name] = json.loads(capsys.readouterr().out)[name]
        runner = ExperimentRunner(cache=ResultCache(cache_dir))
        with BackgroundServer(build_app(runner)) as server:
            client = Client(server.port)
            for name, params in ALL_EXPERIMENTS_SMALL.items():
                spec = runner.spec(name)
                typed = {key: spec.params[key].parse(value) for key, value in params.items()}
                body = {
                    "params": {
                        key: list(value) if isinstance(value, tuple) else value
                        for key, value in typed.items()
                    }
                }
                response, document = client.request(
                    "POST", f"/v1/experiments/{name}/run", body=body
                )
                assert response.status == 200, (name, document)
                assert document["cached"] is True
                assert json.dumps(document["rows"]) == json.dumps(cli_documents[name]["rows"]), name
                assert document["key"] == cli_documents[name]["key"], name
                assert document["config"] == cli_documents[name]["config"], name


class TestServeCommand:
    def test_cli_serve_wires_flags_into_the_app(self, tmp_path, monkeypatch):
        # `python -m repro serve` must hand a fully-configured app to the
        # blocking loop; the loop itself is swapped out so nothing binds.
        import repro.service as service

        captured = {}

        def fake_serve_forever(app, *, host, port):
            captured["app"], captured["host"], captured["port"] = app, host, port
            app.close()
            return 0

        monkeypatch.setattr(service, "serve_forever", fake_serve_forever)
        exit_code = main(
            [
                "serve",
                "--host", "127.0.0.2",
                "--port", "9999",
                "--jobs", "2",
                "--rate-limit", "5",
                "--rate-burst", "7",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert exit_code == 0
        assert (captured["host"], captured["port"]) == ("127.0.0.2", 9999)
        app = captured["app"]
        assert app.limiter is not None
        assert app.limiter.rate == 5.0 and app.limiter.burst == 7
        assert app.jobs.default_jobs == 2
        assert str(app.runner.cache.root).startswith(str(tmp_path))
