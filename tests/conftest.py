"""Shared fixtures for the test suite.

Expensive artefacts (multiplier characterisation, SIMD kernel execution,
trained LeNet) are built once per session and reused across test modules.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.scaling import characterize_multiplier  # noqa: E402
from repro.nn import Trainer, lenet5, synthetic_digits  # noqa: E402
from repro.simd import SimdProcessor, convolution_kernel, run_convolution  # noqa: E402


@pytest.fixture(scope="session")
def characterization():
    """Multiplier characterisation with a reduced sample count (fast)."""
    return characterize_multiplier(samples=150, seed=7)


@pytest.fixture(scope="session")
def simd_execution():
    """A convolution run on the SW=8 SIMD processor: (workload, outputs, result)."""
    processor = SimdProcessor(8)
    workload = convolution_kernel(8, input_length=32, taps=5, seed=11)
    outputs, result = run_convolution(processor, workload)
    return workload, outputs, result


@pytest.fixture(scope="session")
def digit_dataset():
    """Small synthetic digit dataset shared across NN tests."""
    return synthetic_digits(train_samples=360, test_samples=80, size=16, seed=5)


@pytest.fixture(scope="session")
def trained_lenet(digit_dataset):
    """A LeNet-5 (16x16 input) trained briefly on the synthetic digits."""
    network = lenet5(input_size=16, seed=5)
    trainer = Trainer(network, learning_rate=0.1)
    history = trainer.fit(digit_dataset, epochs=7, batch_size=24, seed=5)
    return network, history
