"""Unit tests for the circuit-level substrate (technology, delay, energy, domains)."""

import pytest

from repro.circuit import (
    ClockConfig,
    CriticalPath,
    PowerDomain,
    PowerDomainSet,
    TECH_28NM_FDSOI,
    TECH_40NM_LP_LVT,
    Technology,
    constant_throughput_frequency,
    delay_stretch,
    dynamic_power_mw,
    get_technology,
    leakage_power_uw,
    minimum_voltage_for_frequency,
    minimum_voltage_for_period,
    scale_voltage,
    toggle_energy_pj,
    voltage_energy_scale,
)


class TestTechnology:
    def test_registry(self):
        assert get_technology("40nm-LP-LVT") is TECH_40NM_LP_LVT
        assert get_technology("28nm-FDSOI") is TECH_28NM_FDSOI
        with pytest.raises(KeyError):
            get_technology("7nm")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Technology("bad", 0.5, 0.6, 0.7, 1.0, 1.4, 50.0, 1.0, 0.5)

    def test_clamp_voltage(self):
        assert TECH_40NM_LP_LVT.clamp_voltage(2.0) == TECH_40NM_LP_LVT.max_voltage
        assert TECH_40NM_LP_LVT.clamp_voltage(0.1) == TECH_40NM_LP_LVT.min_voltage

    def test_with_overrides(self):
        faster = TECH_40NM_LP_LVT.with_overrides(unit_delay_ps=50.0)
        assert faster.unit_delay_ps == 50.0
        assert faster.nominal_voltage == TECH_40NM_LP_LVT.nominal_voltage


class TestDelayModel:
    def test_stretch_is_one_at_nominal(self):
        assert delay_stretch(TECH_40NM_LP_LVT, 1.1) == pytest.approx(1.0)

    def test_stretch_monotonic_in_voltage(self):
        stretches = [delay_stretch(TECH_40NM_LP_LVT, v) for v in (1.1, 1.0, 0.9, 0.8, 0.75)]
        assert stretches == sorted(stretches)

    def test_calibrated_stretch_anchors(self):
        """The 40 nm corner roughly doubles delay at 0.9 V and ~8x at 0.75 V."""
        assert 1.7 <= delay_stretch(TECH_40NM_LP_LVT, 0.9) <= 2.5
        assert 5.0 <= delay_stretch(TECH_40NM_LP_LVT, 0.75) <= 11.0

    def test_below_threshold_rejected(self):
        with pytest.raises(ValueError):
            delay_stretch(TECH_40NM_LP_LVT, 0.5)

    def test_critical_path_slack(self):
        path = CriticalPath(logic_levels=10.0, technology=TECH_40NM_LP_LVT)
        slack = path.positive_slack_ns(1.1, 2.0)
        assert slack == pytest.approx(2.0 - path.delay_ns(1.1))
        assert path.meets_timing(1.1, 2.0) == (slack >= 0)


class TestEnergyModel:
    def test_voltage_scale_quadratic(self):
        assert voltage_energy_scale(TECH_40NM_LP_LVT, 0.55) == pytest.approx(0.25)

    def test_toggle_energy_linear_in_toggles(self):
        one = toggle_energy_pj(TECH_40NM_LP_LVT, 1.0, 1.1)
        thousand = toggle_energy_pj(TECH_40NM_LP_LVT, 1000.0, 1.1)
        assert thousand == pytest.approx(1000 * one)

    def test_leakage_increases_with_voltage(self):
        assert leakage_power_uw(TECH_40NM_LP_LVT, 1000, 1.1) > leakage_power_uw(
            TECH_40NM_LP_LVT, 1000, 0.8
        )

    def test_dynamic_power_units(self):
        # 1 pF at activity 1, 1000 MHz, 1 V -> 1 mW.
        assert dynamic_power_mw(1.0, 1.0, 1000.0, 1.0) == pytest.approx(1.0)


class TestVoltageScaling:
    def test_minimum_voltage_monotonic_in_period(self):
        tight = minimum_voltage_for_period(TECH_40NM_LP_LVT, 18.0, 2.0)
        loose = minimum_voltage_for_period(TECH_40NM_LP_LVT, 18.0, 8.0)
        assert loose < tight

    def test_frequency_and_period_agree(self):
        by_period = minimum_voltage_for_period(TECH_40NM_LP_LVT, 15.0, 4.0)
        by_frequency = minimum_voltage_for_frequency(TECH_40NM_LP_LVT, 15.0, 250.0)
        assert by_period == pytest.approx(by_frequency, abs=1e-3)

    def test_infeasible_period_rejected(self):
        with pytest.raises(ValueError):
            minimum_voltage_for_period(TECH_40NM_LP_LVT, 100.0, 0.5)

    def test_scale_voltage_result_consistent(self):
        path = CriticalPath(logic_levels=12.0, technology=TECH_40NM_LP_LVT)
        result = scale_voltage(path, 4.0)
        assert result.slack_ns >= -1e-6
        assert result.voltage <= TECH_40NM_LP_LVT.nominal_voltage
        assert result.slack_at_nominal_ns > result.slack_ns


class TestClock:
    def test_constant_throughput(self):
        assert constant_throughput_frequency(500.0, 4) == 125.0
        clock = ClockConfig(125.0, 4)
        assert clock.throughput_mops == pytest.approx(500.0)
        assert clock.period_ns == pytest.approx(8.0)

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            ClockConfig(0.0, 1)


class TestPowerDomains:
    def test_breakdown_fractions_sum_to_one(self):
        domains = PowerDomainSet(
            [
                PowerDomain("as", 0.8, 10.0, activity=0.5),
                PowerDomain("nas", 1.1, 20.0),
                PowerDomain("mem", 1.1, 15.0, scalable_voltage=False),
            ]
        )
        breakdown = domains.breakdown(100.0)
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)
        assert breakdown.total_mw > 0

    def test_fixed_domain_rejects_voltage_change(self):
        domain = PowerDomain("mem", 1.1, 1.0, scalable_voltage=False)
        with pytest.raises(ValueError):
            domain.set_voltage(0.9)

    def test_duplicate_domain_names_rejected(self):
        with pytest.raises(ValueError):
            PowerDomainSet([PowerDomain("as", 1.0, 1.0), PowerDomain("as", 1.0, 1.0)])

    def test_domain_power_quadratic_in_voltage(self):
        low = PowerDomain("as", 0.55, 10.0).power_mw(100.0)
        high = PowerDomain("as", 1.1, 10.0).power_mw(100.0)
        assert high == pytest.approx(4.0 * low)
