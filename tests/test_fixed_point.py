"""Unit tests for repro.arithmetic.fixed_point."""

import numpy as np
import pytest

from repro.arithmetic import fixed_point as fp


class TestSignedRange:
    def test_sixteen_bits(self):
        assert fp.signed_range(16) == (-32768, 32767)

    def test_one_bit(self):
        assert fp.signed_range(1) == (-1, 0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            fp.signed_range(0)


class TestTwosComplement:
    def test_roundtrip_all_8bit_values(self):
        for value in range(-128, 128):
            pattern = fp.to_twos_complement(value, 8)
            assert 0 <= pattern < 256
            assert fp.from_twos_complement(pattern, 8) == value

    def test_negative_encoding(self):
        assert fp.to_twos_complement(-1, 8) == 0xFF

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            fp.to_twos_complement(128, 8)

    def test_wrap_signed(self):
        assert fp.wrap_signed(128, 8) == -128
        assert fp.wrap_signed(-129, 8) == 127
        assert fp.wrap_signed(5, 8) == 5


class TestPrecisionGating:
    def test_truncate_keeps_msbs(self):
        value = 0b0110_1011_0101_0011  # positive 16-bit value
        truncated = fp.truncate_lsbs(value, 16, 4)
        assert truncated == value & ~0xFFF

    def test_truncate_full_precision_is_identity(self):
        assert fp.truncate_lsbs(12345, 16, 16) == 12345

    def test_truncate_negative_value(self):
        truncated = fp.truncate_lsbs(-12345, 16, 8)
        assert truncated % 256 == 0
        assert abs(truncated - (-12345)) < 256

    def test_round_is_no_farther_than_truncate(self):
        for value in (-20000, -5, 3, 127, 30000):
            rounded = fp.round_lsbs(value, 16, 6)
            truncated = fp.truncate_lsbs(value, 16, 6)
            assert abs(rounded - value) <= abs(truncated - value) + 2 ** 10

    def test_invalid_active_bits(self):
        with pytest.raises(ValueError):
            fp.truncate_lsbs(1, 16, 0)
        with pytest.raises(ValueError):
            fp.truncate_lsbs(1, 16, 17)


class TestFixedPointFormat:
    def test_q1_15_range(self):
        fmt = fp.FixedPointFormat(1, 15)
        assert fmt.total_bits == 16
        assert fmt.max_value == pytest.approx(1.0 - 2**-15)
        assert fmt.min_value == pytest.approx(-1.0)

    def test_quantize_dequantize(self):
        fmt = fp.FixedPointFormat(1, 7)
        code = fmt.quantize(0.5)
        assert fmt.dequantize(code) == pytest.approx(0.5, abs=fmt.scale)

    def test_quantize_saturates(self):
        fmt = fp.FixedPointFormat(1, 7)
        assert fmt.quantize(10.0) == 127

    def test_array_roundtrip_error_bound(self):
        fmt = fp.FixedPointFormat(2, 6)
        values = np.linspace(-1.5, 1.5, 101)
        error = fmt.quantization_error(values)
        assert np.max(np.abs(error)) <= fmt.scale / 2 + 1e-12

    def test_invalid_format(self):
        with pytest.raises(ValueError):
            fp.FixedPointFormat(0, 4)


class TestSubwordPacking:
    def test_pack_unpack_roundtrip(self):
        values = [3, -2, 7, -8]
        packed = fp.pack_subwords(values, 4)
        assert fp.unpack_subwords(packed, 4, 4) == values

    def test_pack_positions(self):
        packed = fp.pack_subwords([1, 0], 8)
        assert packed == 1
        packed = fp.pack_subwords([0, 1], 8)
        assert packed == 1 << 8

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError):
            fp.pack_subwords([8], 4)


class TestQuantizationRmse:
    def test_decreases_with_bits(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(-1, 1, 500)
        errors = [fp.quantization_rmse(bits, values) for bits in (4, 8, 12)]
        assert errors[0] > errors[1] > errors[2]

    def test_scales_with_precision_step(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(-1, 1, 2000)
        ratio = fp.quantization_rmse(4, values) / fp.quantization_rmse(8, values)
        assert 8 < ratio < 32  # roughly 2**4
