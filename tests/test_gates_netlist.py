"""Unit tests for the cell library, netlist framework and structural adders."""

import pytest

from repro.arithmetic.adder import CarryLookaheadModel, RippleCarryAdder
from repro.arithmetic.gates import (
    CELL_COSTS,
    Netlist,
    cell_cost,
    from_bits,
    hamming_distance,
    popcount,
    to_bits,
)


class TestBitUtilities:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_popcount_rejects_negative(self):
        with pytest.raises(ValueError):
            popcount(-1)

    def test_hamming_distance(self):
        assert hamming_distance(0b1100, 0b1010) == 2

    def test_to_bits_roundtrip(self):
        assert to_bits(0b1011, 4) == [1, 1, 0, 1]
        assert from_bits(to_bits(0b1011, 4)) == 0b1011
        assert to_bits(0, 0) == []

    def test_to_bits_rejects_pattern_wider_than_width(self):
        # Regression: wide patterns used to be silently truncated, which
        # would corrupt any toggle accounting built on the result.
        with pytest.raises(ValueError):
            to_bits(0b10000, 4)
        with pytest.raises(ValueError):
            to_bits(1, 0)

    def test_to_bits_rejects_negative_arguments(self):
        with pytest.raises(ValueError):
            to_bits(-1, 4)
        with pytest.raises(ValueError):
            to_bits(0, -1)


class TestCellCosts:
    def test_all_entries_positive(self):
        for cost in CELL_COSTS.values():
            assert cost.gate_equivalents > 0
            assert cost.logic_levels > 0

    def test_unknown_cell(self):
        with pytest.raises(KeyError):
            cell_cost("quantum_gate")

    def test_full_adder_bigger_than_half_adder(self):
        assert cell_cost("full_adder").gate_equivalents > cell_cost("half_adder").gate_equivalents


class TestNetlist:
    def _xor_netlist(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_cell("xor2", ["a", "b"], ["y"])
        netlist.add_output("y")
        return netlist

    def test_evaluate_function(self):
        netlist = self._xor_netlist()
        assert netlist.evaluate({"a": 0, "b": 0})["y"] == 0
        assert netlist.evaluate({"a": 1, "b": 0})["y"] == 1

    def test_toggle_counting(self):
        netlist = self._xor_netlist()
        netlist.evaluate({"a": 0, "b": 0})
        before = netlist.toggle_counter.weighted_toggles
        netlist.evaluate({"a": 1, "b": 0})  # output flips 0 -> 1
        assert netlist.toggle_counter.weighted_toggles > before

    def test_missing_input_rejected(self):
        netlist = self._xor_netlist()
        with pytest.raises(ValueError):
            netlist.evaluate({"a": 1})

    def test_duplicate_input_rejected(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(ValueError):
            netlist.add_input("a")


class TestRippleCarryAdder:
    def test_exhaustive_4bit(self):
        adder = RippleCarryAdder(4)
        for a in range(-8, 8):
            for b in range(-8, 8):
                total, _ = adder.add(a, b)
                expected = ((a + b + 8) % 16) - 8  # two's complement wrap
                assert total == expected

    def test_carry_out_unsigned_meaning(self):
        adder = RippleCarryAdder(4)
        _, carry = adder.add(-1, -1)  # 0xF + 0xF produces a carry
        assert carry == 1

    def test_activity_accumulates(self):
        adder = RippleCarryAdder(8)
        adder.add(1, 2)
        adder.add(100, -50)
        assert adder.weighted_toggles > 0
        adder.reset_activity()
        assert adder.weighted_toggles == 0

    def test_critical_path_scales_with_width(self):
        assert RippleCarryAdder(16).critical_path_levels > RippleCarryAdder(4).critical_path_levels


class TestCarryLookaheadModel:
    def test_logarithmic_depth(self):
        assert CarryLookaheadModel(32).critical_path_levels < RippleCarryAdder(32).critical_path_levels

    def test_depth_monotonic_in_width(self):
        depths = [CarryLookaheadModel(w).critical_path_levels for w in (8, 16, 32, 64)]
        assert depths == sorted(depths)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            CarryLookaheadModel(0)
